"""SSD — Sliding Spectrum Decomposition (Huang et al., KDD 2021).

Sequentially selects the item maximizing
``rel(v) + gamma * ||residual(v)||`` where the residual is the component of
``v``'s descriptor orthogonal to the span of the last ``window`` selected
items (computed by Gram-Schmidt).  The orthogonal-volume view of diversity
captures how much "new spectrum" each item adds within the user's browsing
window.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import RerankBatch
from .base import Reranker

__all__ = ["SSDReranker", "orthogonal_residual_norm"]


def orthogonal_residual_norm(vector: np.ndarray, basis: list[np.ndarray]) -> float:
    """Norm of ``vector``'s component orthogonal to an orthonormal basis."""
    residual = np.asarray(vector, dtype=np.float64).copy()
    for direction in basis:
        residual -= (residual @ direction) * direction
    return float(np.linalg.norm(residual))


class SSDReranker(Reranker):
    """Greedy relevance + sliding-window orthogonal-volume re-ranker."""

    name = "ssd"

    def __init__(self, gamma: float = 0.4, window: int = 5) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.gamma = gamma
        self.window = window

    def _rerank_row(
        self, relevance: np.ndarray, descriptors: np.ndarray
    ) -> np.ndarray:
        length = len(relevance)
        span = relevance.max() - relevance.min()
        rel = (relevance - relevance.min()) / span if span > 0 else np.zeros(length)
        norms = np.linalg.norm(descriptors, axis=1, keepdims=True)
        unit = descriptors / np.where(norms > 0, norms, 1.0)

        chosen: list[int] = []
        chosen_vectors: list[np.ndarray] = []
        remaining = list(range(length))
        while remaining:
            # Orthonormal basis of the sliding window (most recent picks).
            basis: list[np.ndarray] = []
            for vector in chosen_vectors[-self.window :]:
                residual = vector.copy()
                for direction in basis:
                    residual -= (residual @ direction) * direction
                norm = np.linalg.norm(residual)
                if norm > 1e-10:
                    basis.append(residual / norm)
            scores = [
                rel[i] + self.gamma * orthogonal_residual_norm(unit[i], basis)
                for i in remaining
            ]
            pick = remaining[int(np.argmax(scores))]
            chosen.append(pick)
            chosen_vectors.append(unit[pick])
            remaining.remove(pick)
        return np.asarray(chosen, dtype=np.int64)

    def rerank(self, batch: RerankBatch) -> np.ndarray:
        permutations = np.empty((batch.batch_size, batch.list_length), dtype=np.int64)
        for row in range(batch.batch_size):
            valid = np.flatnonzero(batch.mask[row])
            descriptors = np.concatenate(
                [batch.coverage[row, valid], batch.item_features[row, valid]], axis=1
            )
            order = self._rerank_row(batch.initial_scores[row, valid], descriptors)
            invalid = np.flatnonzero(~batch.mask[row])
            permutations[row] = np.concatenate([valid[order], invalid])
        return permutations
