"""PD-GAN — adversarial personalized diversity promotion (Wu et al., IJCAI 2019).

PD-GAN learns a *personalized* DPP kernel ``L_u = Diag(r_u) S Diag(r_u)``
whose quality vector ``r_u`` is produced by a generator network from user
and item features, trained adversarially: a discriminator learns to tell
the user's真实 clicked item sets from generated ones, and the generator is
updated by policy gradient to fool it.

Faithful simplifications (documented per DESIGN.md):

- the similarity matrix ``S`` (topic-coverage cosine) is fixed, only the
  personalized quality is learned — this is where PD-GAN's personalization
  lives;
- the generator's sequential selection distribution is a softmax over
  ``quality logit + diversity bonus`` where the bonus is the DPP marginal
  log-det gain under ``S``; REINFORCE flows gradients into the quality MLP.

As in the original, PD-GAN targets the *ranking* stage: it scores items
independently given the user (no listwise context), which is exactly the
limitation the paper's analysis calls out.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import nn
from ..data.batching import RerankBatch
from ..data.schema import Catalog, Population, RankingRequest
from ..nn import Tensor
from ..utils.rng import make_rng
from .base import Reranker
from .mmr import coverage_cosine

__all__ = ["PDGANReranker"]


def _marginal_logdet_gains(
    similarity: np.ndarray, selected: list[int], remaining: np.ndarray
) -> np.ndarray:
    """log-det gain of adding each remaining item to the selected set."""
    if not selected:
        return np.zeros(len(remaining))
    sub = similarity[np.ix_(selected, selected)] + 1e-6 * np.eye(len(selected))
    inv = np.linalg.inv(sub)
    cross = similarity[np.ix_(remaining, selected)]
    schur = np.maximum(
        similarity[remaining, remaining] - np.einsum("is,st,it->i", cross, inv, cross),
        1e-10,
    )
    return np.log(schur)


class PDGANReranker(Reranker):
    """Adversarially trained personalized-DPP re-ranker.

    Parameters
    ----------
    hidden:
        Width of the generator quality MLP and the discriminator.
    epochs, lr:
        Adversarial training schedule.
    diversity_weight:
        Scale of the DPP log-det bonus inside the selection softmax.
    top_k:
        Size of the generated/real sets compared by the discriminator.
    """

    name = "pdgan"
    requires_training = True

    def __init__(
        self,
        hidden: int = 16,
        epochs: int = 3,
        lr: float = 1e-2,
        diversity_weight: float = 1.0,
        top_k: int = 5,
        seed: int = 0,
    ) -> None:
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.diversity_weight = diversity_weight
        self.top_k = top_k
        self.seed = seed
        self.generator: nn.MLP | None = None
        self.discriminator: nn.MLP | None = None

    # ------------------------------------------------------------------
    def _quality_inputs(self, batch: RerankBatch) -> np.ndarray:
        user = np.repeat(batch.user_features[:, None, :], batch.list_length, axis=1)
        return np.concatenate([user, batch.item_features, batch.coverage], axis=2)

    def _set_descriptor(
        self, batch: RerankBatch, row: int, item_positions: np.ndarray
    ) -> np.ndarray:
        """Discriminator input: [x_u, mean item features, set coverage]."""
        if len(item_positions) == 0:
            items = np.zeros(batch.item_features.shape[2])
            coverage = np.zeros(batch.num_topics)
        else:
            items = batch.item_features[row, item_positions].mean(axis=0)
            coverage = 1.0 - np.prod(
                1.0 - batch.coverage[row, item_positions], axis=0
            )
        return np.concatenate([batch.user_features[row], items, coverage])

    def fit(
        self,
        requests: Sequence[RankingRequest],
        catalog: Catalog,
        population: Population,
        histories: list[np.ndarray],
    ) -> "PDGANReranker":
        rng = make_rng(self.seed)
        net_rng = np.random.default_rng(self.seed + 1)
        quality_dim = population.feature_dim + catalog.feature_dim + catalog.num_topics
        disc_dim = population.feature_dim + catalog.feature_dim + catalog.num_topics
        self.generator = nn.MLP([quality_dim, self.hidden, 1], rng=net_rng)
        self.discriminator = nn.MLP(
            [disc_dim, self.hidden, 1], output_activation="identity", rng=net_rng
        )
        gen_opt = nn.Adam(self.generator.parameters(), lr=self.lr)
        disc_opt = nn.Adam(self.discriminator.parameters(), lr=self.lr)

        from ..data.batching import build_batch

        for _ in range(self.epochs):
            order = rng.permutation(len(requests))
            for start in range(0, len(order), 32):
                chunk = [requests[i] for i in order[start : start + 32]]
                batch = build_batch(chunk, catalog, population, histories)
                quality_logits = self.generator(
                    Tensor(self._quality_inputs(batch))
                ).reshape(batch.batch_size, batch.list_length)

                fake_inputs, real_inputs = [], []
                log_probs: list[Tensor] = []
                rewards: list[float] = []
                for row in range(batch.batch_size):
                    valid = np.flatnonzero(batch.mask[row])
                    similarity = coverage_cosine(batch.coverage[row, valid])
                    chosen: list[int] = []
                    row_log_prob: Tensor | None = None
                    remaining = list(range(len(valid)))
                    for _ in range(min(self.top_k, len(valid))):
                        rem = np.asarray(remaining)
                        bonus = self.diversity_weight * _marginal_logdet_gains(
                            similarity, chosen, rem
                        )
                        logits = quality_logits[row][valid[rem]] + Tensor(bonus)
                        probs = logits.softmax(axis=-1)
                        pick_local = int(
                            rng.choice(len(rem), p=probs.numpy() / probs.numpy().sum())
                        )
                        log_p = probs[pick_local].clip(1e-12, 1.0).log()
                        row_log_prob = (
                            log_p if row_log_prob is None else row_log_prob + log_p
                        )
                        chosen.append(int(rem[pick_local]))
                        remaining.remove(int(rem[pick_local]))
                    fake_positions = valid[np.asarray(chosen, dtype=np.int64)]
                    fake_inputs.append(self._set_descriptor(batch, row, fake_positions))
                    clicked = np.flatnonzero(batch.clicks[row] > 0.5)
                    real_inputs.append(self._set_descriptor(batch, row, clicked))
                    log_probs.append(row_log_prob)

                # Discriminator step: real sets vs generated sets.
                disc_opt.zero_grad()
                disc_in = np.vstack([np.vstack(real_inputs), np.vstack(fake_inputs)])
                labels = np.concatenate(
                    [np.ones(len(real_inputs)), np.zeros(len(fake_inputs))]
                )
                disc_logits = self.discriminator(Tensor(disc_in)).reshape(len(labels))
                disc_loss = nn.functional.binary_cross_entropy_with_logits(
                    disc_logits, labels
                )
                disc_loss.backward()
                disc_opt.step()

                # Generator step: REINFORCE with discriminator realness reward.
                with nn.no_grad():
                    scores = self.discriminator(Tensor(np.vstack(fake_inputs)))
                rewards = 1.0 / (1.0 + np.exp(-scores.numpy().ravel()))
                baseline = float(np.mean(rewards))
                gen_opt.zero_grad()
                gen_loss = None
                for log_prob, reward in zip(log_probs, rewards):
                    term = log_prob * (-(reward - baseline))
                    gen_loss = term if gen_loss is None else gen_loss + term
                gen_loss = gen_loss * (1.0 / len(log_probs))
                gen_loss.backward()
                gen_opt.step()
        return self

    # ------------------------------------------------------------------
    def rerank(self, batch: RerankBatch) -> np.ndarray:
        if self.generator is None:
            raise RuntimeError("fit PD-GAN before reranking")
        with nn.no_grad():
            quality = self.generator(Tensor(self._quality_inputs(batch))).numpy()
        quality = quality.reshape(batch.batch_size, batch.list_length)
        permutations = np.empty((batch.batch_size, batch.list_length), dtype=np.int64)
        for row in range(batch.batch_size):
            valid = np.flatnonzero(batch.mask[row])
            similarity = coverage_cosine(batch.coverage[row, valid])
            chosen: list[int] = []
            remaining = list(range(len(valid)))
            while remaining:
                rem = np.asarray(remaining)
                bonus = self.diversity_weight * _marginal_logdet_gains(
                    similarity, chosen, rem
                )
                scores = quality[row][valid[rem]] + bonus
                pick = int(rem[int(np.argmax(scores))])
                chosen.append(pick)
                remaining.remove(pick)
            invalid = np.flatnonzero(~batch.mask[row])
            permutations[row] = np.concatenate([valid[chosen], invalid])
        return permutations
