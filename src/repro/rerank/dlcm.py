"""DLCM — Deep Listwise Context Model (Ai et al., SIGIR 2018).

A GRU encodes the top-ranked items in initial order; the final state is the
*local context* of the query.  Each item is scored by a bilinear interaction
between its GRU output and the local context, and the model is trained with
DLCM's attention rank loss (softmax cross entropy against the click
distribution).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.batching import RerankBatch
from ..data.schema import Catalog, Population
from ..nn import Tensor
from .neural import NeuralReranker, list_input_features

__all__ = ["DLCMReranker"]


class _DLCMNetwork(nn.Module):
    def __init__(self, input_dim: int, hidden: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.gru = nn.GRU(input_dim, hidden, rng=rng)
        # Bilinear scoring phi(o_i, s_n) = o_i^T W s_n + w^T o_i.
        self.bilinear = nn.Linear(hidden, hidden, bias=False, rng=rng)
        self.direct = nn.Linear(hidden, 1, rng=rng)

    def forward(self, batch: RerankBatch) -> Tensor:
        inputs = Tensor(list_input_features(batch))
        outputs, final = self.gru(inputs, mask=batch.mask)
        b, length, hidden = outputs.shape
        # o_i^T W s_n for every position as one batched matmul:
        # (B, L, h) @ (B, h, 1) instead of a broadcast-mul + reduction pair.
        context = self.bilinear(final).reshape(b, hidden, 1)
        interaction = (outputs @ context).reshape(b, length)
        direct = self.direct(outputs).reshape(b, length)
        return interaction + direct


class DLCMReranker(NeuralReranker):
    """GRU local-context re-ranker with attention rank loss."""

    name = "dlcm"
    loss = "listwise"

    def build_network(self, catalog: Catalog, population: Population) -> nn.Module:
        input_dim = (
            population.feature_dim + catalog.feature_dim + catalog.num_topics + 1
        )
        return _DLCMNetwork(input_dim, self.hidden, np.random.default_rng(self.seed))
