"""MMR — Maximal Marginal Relevance (Carbonell & Goldstein, SIGIR 1998).

Greedy list construction:
``argmax_v  lambda * rel(v) - (1 - lambda) * max_{s in S} sim(v, s)``,
with relevance taken from the initial ranker (min-max normalized per list)
and similarity the cosine of the items' topic-coverage vectors.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import RerankBatch
from .base import Reranker

__all__ = ["MMRReranker", "greedy_mmr", "coverage_cosine"]


def coverage_cosine(coverage: np.ndarray) -> np.ndarray:
    """(L, L) cosine similarity between item topic-coverage vectors."""
    coverage = np.asarray(coverage, dtype=np.float64)
    norms = np.linalg.norm(coverage, axis=1, keepdims=True)
    safe = np.where(norms > 0, norms, 1.0)
    unit = coverage / safe
    return unit @ unit.T


def greedy_mmr(
    relevance: np.ndarray,
    similarity: np.ndarray,
    tradeoff: float,
    valid: np.ndarray | None = None,
) -> np.ndarray:
    """Greedy MMR permutation of one list.

    Parameters
    ----------
    relevance:
        (L,) relevance scores (any scale; min-max normalized internally).
    similarity:
        (L, L) pairwise similarity in [0, 1].
    tradeoff:
        MMR lambda in [0, 1]; 1 = pure relevance.
    valid:
        Boolean mask of selectable positions; invalid ones go last.
    """
    if not 0.0 <= tradeoff <= 1.0:
        raise ValueError("tradeoff must be in [0, 1]")
    relevance = np.asarray(relevance, dtype=np.float64)
    length = len(relevance)
    valid = np.ones(length, dtype=bool) if valid is None else np.asarray(valid)
    span = relevance[valid].max() - relevance[valid].min() if valid.any() else 0.0
    if span > 0:
        rel = (relevance - relevance[valid].min()) / span
    else:
        rel = np.zeros(length)

    chosen: list[int] = []
    remaining = [i for i in range(length) if valid[i]]
    while remaining:
        if chosen:
            max_sim = similarity[np.ix_(remaining, chosen)].max(axis=1)
        else:
            max_sim = np.zeros(len(remaining))
        scores = tradeoff * rel[remaining] - (1.0 - tradeoff) * max_sim
        pick = remaining[int(np.argmax(scores))]
        chosen.append(pick)
        remaining.remove(pick)
    chosen.extend(i for i in range(length) if not valid[i])
    return np.asarray(chosen, dtype=np.int64)


class MMRReranker(Reranker):
    """Classic MMR with a global relevance-diversity tradeoff."""

    name = "mmr"

    def __init__(self, tradeoff: float = 0.8) -> None:
        if not 0.0 <= tradeoff <= 1.0:
            raise ValueError("tradeoff must be in [0, 1]")
        self.tradeoff = tradeoff

    def rerank(self, batch: RerankBatch) -> np.ndarray:
        permutations = np.empty((batch.batch_size, batch.list_length), dtype=np.int64)
        for row in range(batch.batch_size):
            similarity = coverage_cosine(batch.coverage[row])
            permutations[row] = greedy_mmr(
                batch.initial_scores[row],
                similarity,
                self.tradeoff,
                valid=batch.mask[row],
            )
        return permutations
