"""DPP re-ranking with fast greedy MAP inference (Chen et al., NeurIPS 2018).

The kernel is the standard quality/similarity decomposition
``L = Diag(q) S Diag(q)`` with quality ``q_i = exp(theta * rel_i)`` from the
initial-ranker scores and ``S`` the cosine similarity of item descriptors
(topic coverage concatenated with features).  Greedy MAP incrementally
selects the item with the largest marginal log-determinant gain using the
Cholesky-style update of Chen et al., which is O(L^2) per full permutation.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import RerankBatch
from .base import Reranker

__all__ = ["DPPReranker", "fast_greedy_map", "build_dpp_kernel"]


def build_dpp_kernel(
    relevance: np.ndarray,
    descriptors: np.ndarray,
    quality_weight: float = 2.0,
) -> np.ndarray:
    """Quality-similarity DPP kernel ``L = Diag(q) S Diag(q)``.

    Relevance is min-max normalized per list before exponentiation so the
    quality scale is comparable across lists.
    """
    relevance = np.asarray(relevance, dtype=np.float64)
    span = relevance.max() - relevance.min()
    rel = (relevance - relevance.min()) / span if span > 0 else np.zeros_like(relevance)
    quality = np.exp(quality_weight * rel)
    descriptors = np.asarray(descriptors, dtype=np.float64)
    norms = np.linalg.norm(descriptors, axis=1, keepdims=True)
    unit = descriptors / np.where(norms > 0, norms, 1.0)
    similarity = unit @ unit.T
    return quality[:, None] * similarity * quality[None, :]


def fast_greedy_map(
    kernel: np.ndarray,
    max_items: int | None = None,
    epsilon: float = 1e-10,
) -> np.ndarray:
    """Greedy MAP inference for a DPP (Chen et al., 2018, Algorithm 1).

    Maintains for every candidate the marginal gain ``d_i`` of adding it to
    the selected set, updated incrementally through the Cholesky factor of
    the selected submatrix.  Returns selected indices in selection order;
    stops early when no candidate has positive marginal gain.
    """
    kernel = np.asarray(kernel, dtype=np.float64)
    length = len(kernel)
    max_items = length if max_items is None else min(max_items, length)
    cis = np.zeros((max_items, length))
    di2 = np.copy(np.diag(kernel))
    selected: list[int] = []
    candidate = int(np.argmax(di2))
    while len(selected) < max_items and di2[candidate] > epsilon:
        selected.append(candidate)
        k = len(selected) - 1
        eis = (kernel[candidate] - cis[:k].T @ cis[:k, candidate]) / np.sqrt(
            di2[candidate]
        )
        cis[k] = eis
        di2 = di2 - eis**2
        di2[candidate] = -np.inf
        candidate = int(np.argmax(di2))
    return np.asarray(selected, dtype=np.int64)


class DPPReranker(Reranker):
    """Determinantal point process re-ranker (diversity-heavy baseline)."""

    name = "dpp"

    def __init__(self, quality_weight: float = 0.4) -> None:
        self.quality_weight = quality_weight

    def rerank(self, batch: RerankBatch) -> np.ndarray:
        permutations = np.empty((batch.batch_size, batch.list_length), dtype=np.int64)
        for row in range(batch.batch_size):
            valid = np.flatnonzero(batch.mask[row])
            descriptors = np.concatenate(
                [batch.coverage[row, valid], batch.item_features[row, valid]], axis=1
            )
            kernel = build_dpp_kernel(
                batch.initial_scores[row, valid],
                descriptors,
                quality_weight=self.quality_weight,
            )
            order = fast_greedy_map(kernel)
            # Early-stopped items (non-positive gain) are appended by
            # descending initial score, then padded positions.
            rest = np.setdiff1d(np.arange(len(valid)), order, assume_unique=False)
            rest = rest[np.argsort(-batch.initial_scores[row, valid][rest])]
            full = valid[np.concatenate([order, rest]).astype(np.int64)]
            invalid = np.flatnonzero(~batch.mask[row])
            permutations[row] = np.concatenate([full, invalid])
        return permutations
