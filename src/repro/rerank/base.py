"""Re-ranker interface shared by RAPID and all baselines.

A re-ranker consumes a :class:`~repro.data.batching.RerankBatch` (user and
item features, coverage, initial scores, history views) and produces a
permutation of each list.  Score-based models implement
:meth:`Reranker.score_batch`; greedy/sequential models (MMR, DPP, SSD,
PD-GAN) override :meth:`Reranker.rerank` directly.
"""

from __future__ import annotations

import functools
import importlib
import threading
import time
from typing import Sequence

import numpy as np

from ..data.batching import RerankBatch
from ..data.schema import Catalog, Population, RankingRequest
from ..nn import inference as _nn_inference
from ..obs import get_registry
from ..obs import windows as _windows

# The module object itself, not the re-exported ``chaos()`` context manager
# that shadows it on the package namespace.
_chaos = importlib.import_module(".resilience.chaos", __package__.rsplit(".", 1)[0])

__all__ = ["Reranker", "identity_permutation"]


def identity_permutation(batch: RerankBatch) -> np.ndarray:
    """(B, L) permutation that keeps the initial order."""
    return np.tile(np.arange(batch.list_length), (batch.batch_size, 1))


_timing_state = threading.local()


def _timed_rerank(fn):
    """Record ``rerank`` wall time into ``rerank.latency_ms{reranker=...}``.

    Applied to the base implementation and, via ``__init_subclass__``, to
    every override — so all baselines are measured uniformly regardless of
    whether they score-and-sort or build lists greedily.  A per-thread
    depth guard keeps overrides that delegate to ``super().rerank`` from
    double-counting: only the outermost call is observed.

    The same uniform wrapper is the serving-path chaos hook: when a fault
    plan is armed, every ``rerank`` entry visits the
    ``rerank.score.<name>`` fault point (all depths, so a
    ``ResilientReranker``'s inner primary stage can be targeted without
    faulting the resilient wrapper itself).  Disarmed cost is a single
    module-attribute ``None`` check, gated by
    ``benchmarks/bench_resilience_overhead.py``.
    """

    @functools.wraps(fn)
    def wrapper(self, batch: RerankBatch) -> np.ndarray:
        if _chaos._ACTIVE is not None:
            name = getattr(self, "name", None) or type(self).__name__
            _chaos.faultpoint(f"rerank.score.{name}")
        depth = getattr(_timing_state, "depth", 0)
        _timing_state.depth = depth + 1
        start = time.perf_counter()
        try:
            return fn(self, batch)
        finally:
            elapsed_ms = 1000.0 * (time.perf_counter() - start)
            _timing_state.depth = depth
            if depth == 0:
                name = getattr(self, "name", None) or type(self).__name__
                get_registry().histogram(
                    "rerank.latency_ms", reranker=name
                ).observe(elapsed_ms)
                mode = "infer" if _nn_inference.infer_enabled() else "tape"
                get_registry().counter(
                    "rerank.dispatch", mode=mode, reranker=name
                ).inc()
                # Windowed twin (recent p50/p95/p99) + request-rate meter;
                # both no-ops unless windowed metrics are enabled.
                _windows.observe("rerank.latency_ms", elapsed_ms, reranker=name)
                _windows.mark("rerank.requests", reranker=name)

    wrapper._obs_timed = True
    return wrapper


class Reranker:
    """Base class; subclasses set ``name`` and implement scoring/reranking."""

    name = "base"
    requires_training = False

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        override = cls.__dict__.get("rerank")
        if override is not None and not getattr(override, "_obs_timed", False):
            cls.rerank = _timed_rerank(override)

    def fit(
        self,
        requests: Sequence[RankingRequest],
        catalog: Catalog,
        population: Population,
        histories: list[np.ndarray],
    ) -> "Reranker":
        """Train on click-labeled requests.  No-op for heuristic models."""
        return self

    def score_batch(self, batch: RerankBatch) -> np.ndarray:
        """Per-item ranking scores (B, L); higher ranks earlier."""
        raise NotImplementedError(
            f"{type(self).__name__} does not produce per-item scores"
        )

    def rerank(self, batch: RerankBatch) -> np.ndarray:
        """(B, L) permutation indices into each list (best first).

        Padded positions are always pushed to the back.
        """
        scores = np.array(self.score_batch(batch), dtype=np.float64, copy=True)
        scores[~batch.mask] = -np.inf
        return np.argsort(-scores, axis=1, kind="stable")


Reranker.rerank = _timed_rerank(Reranker.rerank)
