"""Re-ranker interface shared by RAPID and all baselines.

A re-ranker consumes a :class:`~repro.data.batching.RerankBatch` (user and
item features, coverage, initial scores, history views) and produces a
permutation of each list.  Score-based models implement
:meth:`Reranker.score_batch`; greedy/sequential models (MMR, DPP, SSD,
PD-GAN) override :meth:`Reranker.rerank` directly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.batching import RerankBatch
from ..data.schema import Catalog, Population, RankingRequest

__all__ = ["Reranker", "identity_permutation"]


def identity_permutation(batch: RerankBatch) -> np.ndarray:
    """(B, L) permutation that keeps the initial order."""
    return np.tile(np.arange(batch.list_length), (batch.batch_size, 1))


class Reranker:
    """Base class; subclasses set ``name`` and implement scoring/reranking."""

    name = "base"
    requires_training = False

    def fit(
        self,
        requests: Sequence[RankingRequest],
        catalog: Catalog,
        population: Population,
        histories: list[np.ndarray],
    ) -> "Reranker":
        """Train on click-labeled requests.  No-op for heuristic models."""
        return self

    def score_batch(self, batch: RerankBatch) -> np.ndarray:
        """Per-item ranking scores (B, L); higher ranks earlier."""
        raise NotImplementedError(
            f"{type(self).__name__} does not produce per-item scores"
        )

    def rerank(self, batch: RerankBatch) -> np.ndarray:
        """(B, L) permutation indices into each list (best first).

        Padded positions are always pushed to the back.
        """
        scores = np.array(self.score_batch(batch), dtype=np.float64, copy=True)
        scores[~batch.mask] = -np.inf
        return np.argsort(-scores, axis=1, kind="stable")
