"""SRGA — Scope-aware Re-ranking with Gated Attention (Qian et al., WSDM 2022).

Refines the self-attention structure with (i) a unidirectional branch
modeling top-down browsing and (ii) a local branch restricted to a window of
neighboring items, fused by a learned gate.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.batching import RerankBatch
from ..data.schema import Catalog, Population
from ..nn import Tensor
from .neural import NeuralReranker, list_input_features

__all__ = ["SRGAReranker"]


class _SRGANetwork(nn.Module):
    def __init__(
        self,
        input_dim: int,
        hidden: int,
        num_blocks: int,
        num_heads: int,
        window: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        model_dim = 2 * hidden
        self.input_proj = nn.Linear(input_dim, model_dim, rng=rng)
        self.positions = nn.Embedding(256, model_dim, rng=rng)
        self.blocks = nn.ModuleList(
            [
                nn.GatedLocalAttention(model_dim, num_heads, window=window, rng=rng)
                for _ in range(num_blocks)
            ]
        )
        self.head = nn.MLP([model_dim, hidden, 1], activation="relu", rng=rng)

    def forward(self, batch: RerankBatch) -> Tensor:
        x = self.input_proj(Tensor(list_input_features(batch)))
        position_ids = np.tile(np.arange(batch.list_length), (batch.batch_size, 1))
        x = x + self.positions(position_ids)
        for block in self.blocks:
            x = block(x)
        b, length, _ = x.shape
        return self.head(x).reshape(b, length)


class SRGAReranker(NeuralReranker):
    """Gated unidirectional + local attention re-ranker (pointwise loss)."""

    name = "srga"
    loss = "pointwise"

    def __init__(
        self, num_blocks: int = 1, num_heads: int = 2, window: int = 2, **kwargs
    ) -> None:
        super().__init__(**kwargs)
        self.num_blocks = num_blocks
        self.num_heads = num_heads
        self.window = window

    def build_network(self, catalog: Catalog, population: Population) -> nn.Module:
        input_dim = (
            population.feature_dim + catalog.feature_dim + catalog.num_topics + 1
        )
        return _SRGANetwork(
            input_dim,
            self.hidden,
            self.num_blocks,
            self.num_heads,
            self.window,
            np.random.default_rng(self.seed),
        )
