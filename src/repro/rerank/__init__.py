"""Baseline re-rankers of the paper's evaluation (Tables II-IV).

Relevance-oriented: DLCM, PRM, SetRank, SRGA.
Diversity-aware: MMR, DPP, DESA, SSD.
Personalized diversity: adpMMR, PD-GAN.
"""

from .adp_mmr import AdaptiveMMRReranker, diversity_propensity
from .base import Reranker, identity_permutation
from .desa import DESAReranker
from .dlcm import DLCMReranker
from .dpp import DPPReranker, build_dpp_kernel, fast_greedy_map
from .mmr import MMRReranker, coverage_cosine, greedy_mmr
from .neural import NeuralReranker, list_input_features
from .pd_gan import PDGANReranker
from .prm import PRMReranker
from .seq2slate import Seq2SlateReranker
from .setrank import SetRankReranker
from .srga import SRGAReranker
from .ssd import SSDReranker, orthogonal_residual_norm

__all__ = [
    "AdaptiveMMRReranker",
    "DESAReranker",
    "DLCMReranker",
    "DPPReranker",
    "MMRReranker",
    "NeuralReranker",
    "PDGANReranker",
    "PRMReranker",
    "Reranker",
    "SRGAReranker",
    "SSDReranker",
    "Seq2SlateReranker",
    "SetRankReranker",
    "build_dpp_kernel",
    "coverage_cosine",
    "diversity_propensity",
    "fast_greedy_map",
    "greedy_mmr",
    "identity_permutation",
    "list_input_features",
    "orthogonal_residual_norm",
]
