"""DESA — Diversifying search results with self-attention (Qin et al., CIKM 2020).

Jointly estimates relevance and (non-personalized) diversity with two
self-attention branches: the relevance branch encodes item features, the
diversity branch encodes the items' topic-coverage vectors so attention
reflects topical dissimilarity.  Branch outputs are fused by an MLP and the
model is trained with a pairwise loss, following the original paper.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.batching import RerankBatch
from ..data.schema import Catalog, Population
from ..nn import Tensor
from .neural import NeuralReranker, list_input_features

__all__ = ["DESAReranker"]


class _DESANetwork(nn.Module):
    def __init__(
        self,
        input_dim: int,
        num_topics: int,
        hidden: int,
        num_heads: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        model_dim = 2 * hidden
        self.relevance_proj = nn.Linear(input_dim, model_dim, rng=rng)
        self.relevance_attn = nn.TransformerEncoderLayer(model_dim, num_heads, rng=rng)
        self.diversity_proj = nn.Linear(num_topics, model_dim, rng=rng)
        self.diversity_attn = nn.TransformerEncoderLayer(model_dim, num_heads, rng=rng)
        self.fusion = nn.MLP([2 * model_dim, hidden, 1], activation="relu", rng=rng)

    def forward(self, batch: RerankBatch) -> Tensor:
        relevance = self.relevance_attn(
            self.relevance_proj(Tensor(list_input_features(batch))), mask=batch.mask
        )
        diversity = self.diversity_attn(
            self.diversity_proj(Tensor(batch.coverage)), mask=batch.mask
        )
        fused = Tensor.concatenate([relevance, diversity], axis=2)
        b, length, _ = fused.shape
        return self.fusion(fused).reshape(b, length)


class DESAReranker(NeuralReranker):
    """Dual self-attention relevance + diversity re-ranker (pairwise loss)."""

    name = "desa"
    loss = "pairwise"

    def __init__(self, num_heads: int = 2, **kwargs) -> None:
        super().__init__(**kwargs)
        self.num_heads = num_heads

    def build_network(self, catalog: Catalog, population: Population) -> nn.Module:
        input_dim = (
            population.feature_dim + catalog.feature_dim + catalog.num_topics + 1
        )
        return _DESANetwork(
            input_dim,
            catalog.num_topics,
            self.hidden,
            self.num_heads,
            np.random.default_rng(self.seed),
        )
