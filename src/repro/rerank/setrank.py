"""SetRank — permutation-invariant re-ranking (Pang et al., SIGIR 2020).

A stack of induced multi-head self-attention blocks (IMSAB) encodes the
candidate *set* without position embeddings, so the learned scoring function
is permutation-equivariant.  The initial-ranker score is still available as
an item feature (SetRank's "ordinal" variant folds rank information into
features rather than the architecture).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.batching import RerankBatch
from ..data.schema import Catalog, Population
from ..nn import Tensor
from .neural import NeuralReranker, list_input_features

__all__ = ["SetRankReranker"]


class _SetRankNetwork(nn.Module):
    def __init__(
        self,
        input_dim: int,
        hidden: int,
        num_blocks: int,
        num_heads: int,
        num_inducing: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        model_dim = 2 * hidden
        self.input_proj = nn.Linear(input_dim, model_dim, rng=rng)
        self.blocks = nn.ModuleList(
            [
                nn.InducedSetAttention(
                    model_dim, num_heads, num_inducing=num_inducing, rng=rng
                )
                for _ in range(num_blocks)
            ]
        )
        self.head = nn.MLP([model_dim, hidden, 1], activation="relu", rng=rng)

    def forward(self, batch: RerankBatch) -> Tensor:
        x = self.input_proj(Tensor(list_input_features(batch)))
        for block in self.blocks:
            x = block(x, mask=batch.mask)
        b, length, _ = x.shape
        return self.head(x).reshape(b, length)


class SetRankReranker(NeuralReranker):
    """Induced set-attention re-ranker (listwise loss, no positions)."""

    name = "setrank"
    loss = "listwise"

    def __init__(
        self,
        num_blocks: int = 2,
        num_heads: int = 2,
        num_inducing: int = 4,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.num_blocks = num_blocks
        self.num_heads = num_heads
        self.num_inducing = num_inducing

    def build_network(self, catalog: Catalog, population: Population) -> nn.Module:
        input_dim = (
            population.feature_dim + catalog.feature_dim + catalog.num_topics + 1
        )
        return _SetRankNetwork(
            input_dim,
            self.hidden,
            self.num_blocks,
            self.num_heads,
            self.num_inducing,
            np.random.default_rng(self.seed),
        )
