"""PRM — Personalized Re-ranking Model (Pei et al., RecSys 2019).

Items (with their initial-ranker scores as the personalized prior) plus
learned position embeddings pass through transformer encoder blocks; an MLP
head emits scores trained with the listwise softmax cross entropy.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.batching import RerankBatch
from ..data.schema import Catalog, Population
from ..nn import Tensor
from .neural import NeuralReranker, list_input_features

__all__ = ["PRMReranker"]


class _PRMNetwork(nn.Module):
    def __init__(
        self,
        input_dim: int,
        hidden: int,
        num_blocks: int,
        num_heads: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        model_dim = 2 * hidden
        self.input_proj = nn.Linear(input_dim, model_dim, rng=rng)
        self.positions = nn.Embedding(256, model_dim, rng=rng)
        self.blocks = nn.ModuleList(
            [
                nn.TransformerEncoderLayer(model_dim, num_heads, rng=rng)
                for _ in range(num_blocks)
            ]
        )
        self.head = nn.MLP([model_dim, hidden, 1], activation="relu", rng=rng)

    def forward(self, batch: RerankBatch) -> Tensor:
        x = self.input_proj(Tensor(list_input_features(batch)))
        position_ids = np.tile(
            np.arange(batch.list_length), (batch.batch_size, 1)
        )
        x = x + self.positions(position_ids)
        for block in self.blocks:
            x = block(x, mask=batch.mask)
        b, length, _ = x.shape
        return self.head(x).reshape(b, length)


class PRMReranker(NeuralReranker):
    """Transformer re-ranker with position embeddings (listwise loss)."""

    name = "prm"
    loss = "listwise"

    def __init__(self, num_blocks: int = 2, num_heads: int = 2, **kwargs) -> None:
        super().__init__(**kwargs)
        self.num_blocks = num_blocks
        self.num_heads = num_heads

    def build_network(self, catalog: Catalog, population: Population) -> nn.Module:
        input_dim = (
            population.feature_dim + catalog.feature_dim + catalog.num_topics + 1
        )
        return _PRMNetwork(
            input_dim,
            self.hidden,
            self.num_blocks,
            self.num_heads,
            np.random.default_rng(self.seed),
        )
