"""Shared training machinery for the neural baseline re-rankers.

DLCM / PRM / SetRank / SRGA / DESA all follow the same recipe: a network
maps a :class:`RerankBatch` to per-item scores, trained on click labels with
a model-specific loss.  :class:`NeuralReranker` centralizes batching, the
Adam loop, gradient clipping, and inference so each baseline only defines
its architecture and loss.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .. import nn
from ..data.batching import RerankBatch, iterate_batches, normalized_initial_scores
from ..data.schema import Catalog, Population, RankingRequest
from ..nn import Tensor
from ..utils.timer import Timings
from .base import Reranker

__all__ = ["NeuralReranker", "list_input_features", "normalized_initial_scores"]

LossFn = Callable[[Tensor, np.ndarray, np.ndarray], Tensor]

_LOSSES: dict[str, LossFn] = {
    "pointwise": lambda s, y, m: nn.losses.pointwise_bce_with_logits(s, y, mask=m),
    "listwise": lambda s, y, m: nn.losses.listwise_softmax_ce(s, y, mask=m),
    "pairwise": lambda s, y, m: nn.losses.pairwise_bpr(s, y, mask=m),
    "hinge": lambda s, y, m: nn.losses.pairwise_hinge(s, y, mask=m),
}


def list_input_features(batch: RerankBatch) -> np.ndarray:
    """Default per-item inputs: ``[x_u, x_v, tau_v, initial_score]`` (B, L, d)."""
    user = np.repeat(batch.user_features[:, None, :], batch.list_length, axis=1)
    return np.concatenate(
        [
            user,
            batch.item_features,
            batch.coverage,
            normalized_initial_scores(batch)[:, :, None],
        ],
        axis=2,
    )


class NeuralReranker(Reranker):
    """Base class for trainable re-rankers.

    Subclasses implement :meth:`build_network` (returning a module that maps
    a batch to (B, L) score logits) and set ``loss``/``name``.

    Parameters
    ----------
    hidden:
        Hidden width passed to the network builder.
    epochs, batch_size, lr, grad_clip:
        Optimization settings.
    loss:
        One of ``pointwise``, ``listwise``, ``pairwise``, ``hinge``.
    """

    requires_training = True
    loss = "pointwise"

    def __init__(
        self,
        hidden: int = 16,
        epochs: int = 5,
        batch_size: int = 64,
        lr: float = 1e-2,
        grad_clip: float = 5.0,
        weight_decay: float = 1e-4,
        seed: int = 0,
        topic_history_length: int = 5,
        flat_history_length: int = 20,
    ) -> None:
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.grad_clip = grad_clip
        self.weight_decay = weight_decay
        self.seed = seed
        self.topic_history_length = topic_history_length
        self.flat_history_length = flat_history_length
        self.network: nn.Module | None = None
        self.training_losses: list[float] = []

    # ------------------------------------------------------------------
    def build_network(
        self, catalog: Catalog, population: Population
    ) -> nn.Module:
        """Construct the scoring network for the given feature dimensions."""
        raise NotImplementedError

    def _score_tensor(self, batch: RerankBatch) -> Tensor:
        assert self.network is not None
        return self.network(batch)

    # ------------------------------------------------------------------
    def fit(
        self,
        requests: Sequence[RankingRequest],
        catalog: Catalog,
        population: Population,
        histories: list[np.ndarray],
        timings: Timings | None = None,
    ) -> "NeuralReranker":
        if self.loss not in _LOSSES:
            raise ValueError(f"unknown loss {self.loss!r}")
        if self.network is None:
            self.network = self.build_network(catalog, population)
        loss_fn = _LOSSES[self.loss]
        optimizer = nn.Adam(
            self.network.parameters(), lr=self.lr, weight_decay=self.weight_decay
        )
        self.network.train()
        self.training_losses = []
        for epoch in range(self.epochs):
            epoch_losses = []
            for batch in iterate_batches(
                requests,
                catalog,
                population,
                histories,
                batch_size=self.batch_size,
                shuffle=True,
                seed=self.seed + epoch,
                topic_history_length=self.topic_history_length,
                flat_history_length=self.flat_history_length,
            ):
                import time as _time

                start = _time.perf_counter()
                optimizer.zero_grad()
                scores = self._score_tensor(batch)
                loss = loss_fn(scores, batch.clicks, batch.training_mask)
                loss.backward()
                nn.clip_grad_norm(self.network.parameters(), self.grad_clip)
                optimizer.step()
                if timings is not None:
                    timings.add(_time.perf_counter() - start)
                epoch_losses.append(loss.item())
            self.training_losses.append(float(np.mean(epoch_losses)))
        return self

    def score_batch(self, batch: RerankBatch) -> np.ndarray:
        if self.network is None:
            raise RuntimeError(f"fit {self.name} before scoring")
        was_training = self.network.training
        self.network.eval()
        try:
            if nn.inference.infer_enabled():
                # Tape-free dispatch.  Baselines without a hand-written
                # ndarray path fall back to Module.infer (forward under
                # no_grad, float64) — bitwise identical scores, no tape.
                scores = self.network.infer(batch)
                return np.asarray(scores, dtype=np.float64)
            with nn.no_grad():
                scores = self._score_tensor(batch)
        finally:
            self.network.train(was_training)
        return scores.numpy()
