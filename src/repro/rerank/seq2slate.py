"""Seq2Slate — pointer-network re-ranking (Bello et al., 2019; extension).

Cited as reference [1] in the paper's related work: an encoder-decoder
sequence model that *generates* the re-ranked list item by item, pointing
at the next candidate with an attention distribution over the not-yet-
placed items.  We implement the one-step-decoder variant trained with the
cross-entropy "teacher forcing on clicks" objective: at each decoding step
the pointer distribution is pushed toward the clicked items remaining in
the candidate set.

Seq2Slate is an extra baseline beyond the paper's Table II zoo; it is
relevance-oriented (no explicit diversity term), so the expected behavior
matches DLCM/PRM: utility above Init, diversity near the relevance group.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.batching import RerankBatch
from ..data.schema import Catalog, Population
from ..nn import Tensor
from .neural import NeuralReranker, list_input_features

__all__ = ["Seq2SlateReranker"]


class _PointerNetwork(nn.Module):
    """GRU encoder + attention pointer decoder."""

    def __init__(self, input_dim: int, hidden: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.encoder = nn.GRU(input_dim, hidden, rng=rng)
        self.decoder_cell = nn.GRUCell(hidden, hidden, rng=rng)
        self.pointer_query = nn.Linear(hidden, hidden, rng=rng)
        self.pointer_key = nn.Linear(hidden, hidden, rng=rng)
        self.hidden = hidden

    def encode(self, batch: RerankBatch) -> tuple[Tensor, Tensor]:
        inputs = Tensor(list_input_features(batch))
        outputs, final = self.encoder(inputs, mask=batch.mask)
        return outputs, final

    def pointer_logits(self, decoder_state: Tensor, memory: Tensor) -> Tensor:
        """(B, L) attention scores of the current step over the memory."""
        query = self.pointer_query(decoder_state)  # (B, h)
        keys = self.pointer_key(memory)  # (B, L, h)
        batch, hidden = query.shape
        return (keys * query.reshape(batch, 1, hidden)).sum(axis=2) * (
            1.0 / np.sqrt(self.hidden)
        )

    def forward(self, batch: RerankBatch) -> Tensor:
        """One-step decoding: a single pointer pass scores every item.

        Training uses the richer multi-step loss in the reranker; at
        inference the one-step pointer scores already define the order
        (higher = earlier), matching Seq2Slate's fast inference mode.
        """
        memory, final = self.encode(batch)
        state = self.decoder_cell(final)
        return self.pointer_logits(state, memory)


class Seq2SlateReranker(NeuralReranker):
    """Pointer-network re-ranker trained with stepwise click pointing.

    Parameters mirror :class:`NeuralReranker`; ``decode_steps`` is how many
    teacher-forced pointer steps contribute to each list's training loss.
    """

    name = "seq2slate"
    loss = "listwise"  # fallback; the custom fit below is the real loss

    def __init__(self, decode_steps: int = 5, **kwargs) -> None:
        super().__init__(**kwargs)
        self.decode_steps = decode_steps

    def build_network(self, catalog: Catalog, population: Population) -> nn.Module:
        input_dim = (
            population.feature_dim + catalog.feature_dim + catalog.num_topics + 1
        )
        return _PointerNetwork(
            input_dim, self.hidden, np.random.default_rng(self.seed)
        )

    # ------------------------------------------------------------------
    def _stepwise_loss(self, batch: RerankBatch) -> Tensor:
        """Teacher-forced pointer cross entropy over ``decode_steps`` steps.

        At each step the pointer should place one of the *remaining
        clicked* items; pointed-at positions are removed from the
        candidate mask for subsequent steps (teacher forcing follows the
        clicked-first oracle order).
        """
        network: _PointerNetwork = self.network  # type: ignore[assignment]
        memory, final = network.encode(batch)
        state = final
        available = batch.mask.copy()
        remaining_clicks = (batch.clicks > 0.5) & batch.training_mask
        total: Tensor | None = None
        steps = 0
        for _ in range(min(self.decode_steps, batch.list_length)):
            active_rows = (remaining_clicks & available).any(axis=1)
            if not active_rows.any():
                break
            logits = network.pointer_logits(state, memory)
            log_probs = nn.functional.masked_softmax(
                logits, available
            ).clip(1e-12, 1.0).log()
            # Target: uniform over the remaining clicked items of each row.
            target = (remaining_clicks & available).astype(np.float64)
            row_totals = target.sum(axis=1, keepdims=True)
            target = np.divide(
                target, row_totals, out=np.zeros_like(target), where=row_totals > 0
            )
            step_loss = -(Tensor(target) * log_probs).sum(axis=1)
            step_loss = (step_loss * Tensor(active_rows.astype(np.float64))).sum() * (
                1.0 / max(float(active_rows.sum()), 1.0)
            )
            total = step_loss if total is None else total + step_loss
            steps += 1
            # Teacher forcing: consume the highest-probability clicked item.
            probs = np.where(
                remaining_clicks & available, log_probs.numpy(), -np.inf
            )
            chosen = probs.argmax(axis=1)
            rows = np.flatnonzero(active_rows)
            available[rows, chosen[rows]] = False
            remaining_clicks[rows, chosen[rows]] = False
            # Advance the decoder with the pooled memory of chosen items.
            chosen_repr = memory[np.arange(batch.batch_size), chosen, :]
            state = network.decoder_cell(chosen_repr, state)
        if total is None:
            return Tensor(np.zeros(()))
        return total * (1.0 / steps)

    def rerank(self, batch: RerankBatch) -> np.ndarray:
        """Sequential pointer decoding (Seq2Slate's generation mode).

        At each position the decoder points at the best remaining item,
        consumes its encoder representation, and advances the state —
        matching how the training loss was computed.
        """
        if self.network is None:
            raise RuntimeError("fit seq2slate before reranking")
        network: _PointerNetwork = self.network  # type: ignore[assignment]
        was_training = network.training
        network.eval()
        try:
            with nn.no_grad():
                memory, final = network.encode(batch)
                state = network.decoder_cell(final)
                available = batch.mask.copy()
                order = np.full(
                    (batch.batch_size, batch.list_length), -1, dtype=np.int64
                )
                for position in range(batch.list_length):
                    if not available.any():
                        break
                    logits = network.pointer_logits(state, memory).numpy()
                    logits = np.where(available, logits, -np.inf)
                    rows_active = available.any(axis=1)
                    chosen = logits.argmax(axis=1)
                    rows = np.flatnonzero(rows_active)
                    order[rows, position] = chosen[rows]
                    available[rows, chosen[rows]] = False
                    chosen_repr = memory[
                        np.arange(batch.batch_size), chosen, :
                    ]
                    state = network.decoder_cell(chosen_repr, state)
        finally:
            network.train(was_training)
        # Fill any unassigned slots (padded positions) in index order.
        for row in range(batch.batch_size):
            used = set(order[row][order[row] >= 0].tolist())
            rest = [i for i in range(batch.list_length) if i not in used]
            order[row][order[row] < 0] = np.asarray(rest, dtype=np.int64)
        return order

    def fit(self, requests, catalog, population, histories, timings=None):
        from ..data.batching import iterate_batches

        if self.network is None:
            self.network = self.build_network(catalog, population)
        optimizer = nn.Adam(
            self.network.parameters(), lr=self.lr, weight_decay=self.weight_decay
        )
        self.network.train()
        self.training_losses = []
        for epoch in range(self.epochs):
            epoch_losses = []
            for batch in iterate_batches(
                requests,
                catalog,
                population,
                histories,
                batch_size=self.batch_size,
                shuffle=True,
                seed=self.seed + epoch,
                topic_history_length=self.topic_history_length,
                flat_history_length=self.flat_history_length,
            ):
                import time as _time

                start = _time.perf_counter()
                optimizer.zero_grad()
                loss = self._stepwise_loss(batch)
                loss.backward()
                nn.clip_grad_norm(self.network.parameters(), self.grad_clip)
                optimizer.step()
                if timings is not None:
                    timings.add(_time.perf_counter() - start)
                epoch_losses.append(loss.item())
            self.training_losses.append(float(np.mean(epoch_losses)))
        return self
