"""adpMMR — MMR with a rule-based personalized tradeoff (Di Noia et al., 2014).

The user's propensity toward diversity is computed from observable
statistics of her behavior history — the normalized entropy of the topic
distribution and the profile length — and plugged in as the per-user MMR
lambda.  Rule-based and non-learnable, it is the paper's "personalized
diversity without learning" reference point.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import RerankBatch
from ..data.schema import Catalog
from .base import Reranker
from .mmr import coverage_cosine, greedy_mmr

__all__ = ["AdaptiveMMRReranker", "diversity_propensity"]


def diversity_propensity(
    history: np.ndarray,
    coverage: np.ndarray,
    num_topics: int,
    full_profile_length: int = 30,
) -> float:
    """Propensity in [0, 1]: entropy of history topics x profile saturation."""
    history = np.asarray(history, dtype=np.int64)
    if history.size == 0:
        return 0.0
    topic_mass = coverage[history].sum(axis=0)
    total = topic_mass.sum()
    if total <= 0:
        return 0.0
    distribution = topic_mass / total
    entropy = -(distribution * np.log(distribution + 1e-12)).sum()
    normalized_entropy = float(entropy / np.log(num_topics)) if num_topics > 1 else 0.0
    saturation = min(1.0, len(history) / full_profile_length)
    return normalized_entropy * saturation


class AdaptiveMMRReranker(Reranker):
    """MMR whose lambda adapts per user to the history diversity propensity.

    Users with high propensity get a lower lambda (more diversification);
    focused users get near-pure relevance ranking.
    """

    name = "adpmmr"

    def __init__(
        self,
        catalog: Catalog,
        histories: list[np.ndarray],
        min_tradeoff: float = 0.5,
        max_tradeoff: float = 1.0,
    ) -> None:
        if not 0.0 <= min_tradeoff <= max_tradeoff <= 1.0:
            raise ValueError("require 0 <= min_tradeoff <= max_tradeoff <= 1")
        self.catalog = catalog
        self.histories = histories
        self.min_tradeoff = min_tradeoff
        self.max_tradeoff = max_tradeoff

    def _tradeoff_for(self, user_id: int) -> float:
        propensity = diversity_propensity(
            self.histories[user_id], self.catalog.coverage, self.catalog.num_topics
        )
        return self.max_tradeoff - propensity * (self.max_tradeoff - self.min_tradeoff)

    def rerank(self, batch: RerankBatch) -> np.ndarray:
        permutations = np.empty((batch.batch_size, batch.list_length), dtype=np.int64)
        for row in range(batch.batch_size):
            similarity = coverage_cosine(batch.coverage[row])
            permutations[row] = greedy_mmr(
                batch.initial_scores[row],
                similarity,
                self._tradeoff_for(int(batch.user_ids[row])),
                valid=batch.mask[row],
            )
        return permutations
