"""Hyper-parameter grid search (the paper's Sec. IV-C protocol).

The paper selects the learning rate from {1e-5..1e-2}, the batch size from
{256, 512, 1024} and the hidden size from {8, 16, 32, 64} by grid search.
:func:`grid_search` runs that protocol for any re-ranker buildable by
:func:`~repro.eval.experiment.make_reranker`, splitting the training
requests into train/validation and selecting by a validation metric.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Sequence

from ..data.splits import train_test_split
from .experiment import ExperimentBundle, evaluate_reranker, make_reranker

__all__ = ["GridSearchResult", "grid_search"]


@dataclass
class GridSearchResult:
    """Outcome of a grid search: the winning setting and the full trace."""

    best_params: dict
    best_score: float
    metric: str
    trace: list[tuple[dict, float]] = field(default_factory=list)


def _apply_params(bundle: ExperimentBundle, params: dict) -> ExperimentBundle:
    """Return a shallow copy of the bundle with config overrides applied."""
    config = bundle.config
    train_overrides = {
        key: value
        for key, value in params.items()
        if key in ("lr", "batch_size", "epochs", "topic_history_length")
    }
    config_overrides = {
        key: value for key, value in params.items() if key in ("hidden",)
    }
    new_config = dataclasses.replace(
        config,
        train=dataclasses.replace(config.train, **train_overrides),
        **config_overrides,
    )
    clone = dataclasses.replace(bundle) if dataclasses.is_dataclass(bundle) else bundle
    clone.config = new_config
    return clone


def grid_search(
    model_name: str,
    bundle: ExperimentBundle,
    param_grid: dict[str, Sequence],
    metric: str = "click@5",
    validation_fraction: float = 0.25,
    seed: int = 0,
) -> GridSearchResult:
    """Exhaustive grid search over ``param_grid`` for one re-ranker.

    Parameters
    ----------
    model_name:
        Any name accepted by :func:`make_reranker` (e.g. ``rapid-pro``).
    bundle:
        A prepared experiment bundle; its training requests are split into
        fit/validation portions (test requests are never touched).
    param_grid:
        Mapping from parameter name to candidate values.  Supported keys:
        ``lr``, ``batch_size``, ``epochs``, ``hidden``,
        ``topic_history_length``.
    metric:
        Validation metric to maximize.

    Returns
    -------
    :class:`GridSearchResult` with the winner and the (params, score) trace.
    """
    if not param_grid:
        raise ValueError("param_grid must contain at least one parameter")
    unknown = set(param_grid) - {
        "lr",
        "batch_size",
        "epochs",
        "hidden",
        "topic_history_length",
    }
    if unknown:
        raise ValueError(f"unsupported grid parameters: {sorted(unknown)}")

    fit_requests, validation_requests = train_test_split(
        bundle.train_requests, test_fraction=validation_fraction, seed=seed
    )
    # Validation bundle: evaluate on the held-out training slice.
    validation_bundle = dataclasses.replace(bundle, test_requests=validation_requests)

    names = list(param_grid)
    trace: list[tuple[dict, float]] = []
    best_params: dict | None = None
    best_score = -float("inf")
    for combo in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, combo))
        candidate_bundle = _apply_params(validation_bundle, params)
        reranker = make_reranker(model_name, candidate_bundle)
        if reranker is not None and reranker.requires_training:
            reranker.fit(
                fit_requests,
                bundle.world.catalog,
                bundle.world.population,
                bundle.histories,
            )
        score = evaluate_reranker(reranker, candidate_bundle)[metric]
        trace.append((params, float(score)))
        if score > best_score:
            best_score = float(score)
            best_params = params
    assert best_params is not None
    return GridSearchResult(
        best_params=best_params, best_score=best_score, metric=metric, trace=trace
    )
