"""Plain-text table formatting for the benchmark harness output."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    results: Mapping[str, Mapping[str, float]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a {row: {column: value}} mapping as an aligned text table."""
    rows = list(results)
    if columns is None:
        seen: list[str] = []
        for metrics in results.values():
            for key in metrics:
                if key not in seen:
                    seen.append(key)
        columns = seen
    name_width = max([len(r) for r in rows] + [5])
    col_width = max([len(c) for c in columns] + [precision + 4])
    lines = []
    if title:
        lines.append(title)
    header = " " * (name_width + 2) + "  ".join(c.rjust(col_width) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = []
        for column in columns:
            value = results[row].get(column)
            cells.append(
                ("-" if value is None else f"{value:.{precision}f}").rjust(col_width)
            )
        lines.append(row.ljust(name_width + 2) + "  ".join(cells))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_label: str,
    x_values: Sequence,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render {series: values-over-x} (figures reported as text series)."""
    lines = []
    if title:
        lines.append(title)
    width = max([len(str(x)) for x in x_values] + [precision + 4, len(x_label)])
    header = x_label.ljust(12) + "  ".join(str(x).rjust(width) for x in x_values)
    lines.append(header)
    lines.append("-" * len(header))
    for name, values in series.items():
        cells = "  ".join(f"{v:.{precision}f}".rjust(width) for v in values)
        lines.append(name.ljust(12) + cells)
    return "\n".join(lines)
