"""Collect benchmark artifacts into a single markdown report.

``python -m repro.eval.report [results_dir] [output.md]`` gathers every
table written by the benchmark harness (``benchmarks/results/*.txt``) into
one reviewable document, grouped by experiment family and wrapped in code
fences so the aligned text tables render verbatim.
"""

from __future__ import annotations

import sys
from pathlib import Path

__all__ = ["collect_results", "write_report"]

_SECTIONS: tuple[tuple[str, str], ...] = (
    ("table2_", "Table II — overall performance (public datasets)"),
    ("table3_", "Table III — App Store"),
    ("table4_", "Table IV — alternative initial rankers"),
    ("fig3_", "Figure 3 — ablation"),
    ("fig4_", "Figure 4 — hidden size"),
    ("table5_", "Table V — history length"),
    ("table6_", "Table VI — efficiency"),
    ("fig5_", "Figure 5 — case study"),
    ("theorem", "Theorem 5.1 — regret"),
    ("ablation_", "Design-choice ablations (this reproduction)"),
    ("click_model_", "Click-model robustness (extension)"),
    ("extension_", "Other extensions"),
    ("rq5_", "RQ5 breadth decomposition (extension)"),
)


def collect_results(results_dir: str | Path) -> dict[str, list[tuple[str, str]]]:
    """Read every artifact, grouped by section title, sorted by name."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no results directory at {results_dir}")
    grouped: dict[str, list[tuple[str, str]]] = {}
    for path in sorted(results_dir.glob("*.txt")):
        for prefix, title in _SECTIONS:
            if path.name.startswith(prefix):
                grouped.setdefault(title, []).append(
                    (path.stem, path.read_text().rstrip())
                )
                break
        else:
            grouped.setdefault("Other", []).append(
                (path.stem, path.read_text().rstrip())
            )
    return grouped


def write_report(
    results_dir: str | Path, output: str | Path | None = None
) -> str:
    """Render the markdown report; optionally write it to ``output``."""
    grouped = collect_results(results_dir)
    lines = [
        "# Benchmark report",
        "",
        "Generated from the artifacts in "
        f"`{Path(results_dir)}` by `python -m repro.eval.report`.",
        "",
    ]
    # Preserve the canonical section order, then any leftovers.
    ordered_titles = [title for _, title in _SECTIONS if title in grouped]
    if "Other" in grouped:
        ordered_titles.append("Other")
    for title in ordered_titles:
        lines.append(f"## {title}")
        lines.append("")
        for name, content in grouped[title]:
            lines.append(f"### {name}")
            lines.append("")
            lines.append("```")
            lines.append(content)
            lines.append("```")
            lines.append("")
    text = "\n".join(lines)
    if output is not None:
        Path(output).write_text(text)
    return text


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    results_dir = Path(argv[0]) if argv else Path("benchmarks/results")
    output = Path(argv[1]) if len(argv) > 1 else results_dir / "REPORT.md"
    write_report(results_dir, output)
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
