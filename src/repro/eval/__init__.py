"""Experiment harness: configs, the end-to-end pipeline, table formatting."""

from .analysis import (
    breadth_buckets,
    diversity_by_breadth,
    preference_recovery,
    utility_by_breadth,
)
from .experiment import (
    EvaluationResult,
    ExperimentBundle,
    evaluate_reranker,
    make_reranker,
    prepare_bundle,
    run_experiment,
)
from .protocol import DEFAULT_MODELS, ExperimentConfig
from .sweeps import GridSearchResult, grid_search
from .tables import format_series, format_table

__all__ = [
    "DEFAULT_MODELS",
    "breadth_buckets",
    "diversity_by_breadth",
    "preference_recovery",
    "utility_by_breadth",
    "EvaluationResult",
    "ExperimentBundle",
    "ExperimentConfig",
    "evaluate_reranker",
    "format_series",
    "format_table",
    "GridSearchResult",
    "grid_search",
    "make_reranker",
    "prepare_bundle",
    "run_experiment",
]
