"""Result post-processing: significance markers and improvement rows.

The paper annotates winning cells with ``*`` for statistically significant
improvement (paired t-test, p < 0.05) over all baselines (Table II) or over
the strongest baseline (Table III), and reports an ``impv%`` row.  These
helpers reproduce that presentation layer on top of
:class:`~repro.eval.experiment.EvaluationResult`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..metrics import paired_t_test
from .experiment import EvaluationResult

__all__ = ["significance_markers", "improvement_row", "annotate_results"]


def significance_markers(
    results: Mapping[str, EvaluationResult],
    candidate: str,
    baselines: Sequence[str] | None = None,
    alpha: float = 0.05,
) -> dict[int, bool]:
    """Is ``candidate`` significantly better than *every* baseline at k?

    Returns {k: bool} per evaluation cutoff, using the per-request click
    samples stored by the evaluator.
    """
    if candidate not in results:
        raise KeyError(f"unknown candidate {candidate!r}")
    baselines = [
        name for name in (baselines or results) if name != candidate
    ]
    markers: dict[int, bool] = {}
    candidate_samples = results[candidate].per_request_clicks
    for k, samples in candidate_samples.items():
        significant = True
        for name in baselines:
            other = results[name].per_request_clicks.get(k)
            if other is None:
                continue
            t_stat, p_value = paired_t_test(samples, other)
            if not (t_stat > 0 and p_value < alpha):
                significant = False
                break
        markers[k] = significant
    return markers


def improvement_row(
    results: Mapping[str, EvaluationResult],
    candidate: str,
    reference: str,
) -> dict[str, float]:
    """Percent improvement of ``candidate`` over ``reference`` per metric
    (the paper's ``impv%`` row of Table III)."""
    if candidate not in results or reference not in results:
        raise KeyError("candidate and reference must both be in results")
    row: dict[str, float] = {}
    for metric, value in results[candidate].metrics.items():
        base = results[reference].metrics.get(metric)
        if base:
            row[metric] = 100.0 * (value / base - 1.0)
    return row


def annotate_results(
    results: Mapping[str, EvaluationResult],
    candidate: str = "rapid-pro",
    alpha: float = 0.05,
) -> dict[str, dict[str, float]]:
    """Metrics table plus a significance row for the candidate.

    Adds a ``{candidate} sig@k`` pseudo-row with 1.0 where the candidate's
    click@k improvement over all other models is significant.
    """
    table = {name: dict(result.metrics) for name, result in results.items()}
    if candidate in results:
        markers = significance_markers(results, candidate, alpha=alpha)
        table[f"{candidate} sig"] = {
            f"click@{k}": float(flag) for k, flag in markers.items()
        }
    return table


def strongest_baseline(
    results: Mapping[str, EvaluationResult],
    metric: str,
    exclude: Sequence[str] = ("rapid-det", "rapid-pro", "init"),
) -> str:
    """Name of the baseline with the highest value of ``metric``."""
    candidates = {
        name: result.metrics[metric]
        for name, result in results.items()
        if name not in exclude and metric in result.metrics
    }
    if not candidates:
        raise ValueError("no baselines to compare against")
    return max(candidates, key=candidates.get)
