"""Experiment configuration (the paper's protocol, Sec. IV-A/B/C)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.trainer import TrainConfig

__all__ = ["ExperimentConfig", "DEFAULT_MODELS"]

DEFAULT_MODELS: tuple[str, ...] = (
    "init",
    "dlcm",
    "prm",
    "setrank",
    "srga",
    "mmr",
    "dpp",
    "desa",
    "ssd",
    "adpmmr",
    "pdgan",
    "rapid-det",
    "rapid-pro",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to reproduce one experimental cell.

    Attributes
    ----------
    dataset:
        ``taobao`` / ``movielens`` / ``appstore``.
    scale:
        Generator scale preset (``tiny`` for tests, ``small`` for benches,
        ``full`` for thorough runs).
    tradeoff:
        The DCM lambda of Table II (0.5 / 0.9 / 1.0).  Ignored by the
        App Store dataset whose clicks come from its own logged model.
    initial_ranker:
        ``din`` (default, Table II) / ``svmrank`` / ``lambdamart`` (Table IV).
    list_length:
        L, the initial list length (paper: 20).
    eval_ks:
        Cutoffs reported (paper: 5 and 10).
    num_train_requests / num_test_requests / ranker_interactions:
        Data volumes for the re-ranking train/test splits and the initial
        ranker's training set.
    eval_mode:
        ``expected`` — deterministic DCM expectations (low-variance, used
        for the public datasets); ``logged`` — replay the logged clicks
        (App Store).
    """

    dataset: str = "taobao"
    scale: str = "small"
    tradeoff: float = 0.5
    initial_ranker: str = "din"
    list_length: int = 20
    eval_ks: tuple[int, ...] = (5, 10)
    num_train_requests: int = 600
    num_test_requests: int = 150
    ranker_interactions: int = 2000
    eval_mode: str = "expected"
    hidden: int = 16
    train: TrainConfig = field(default_factory=TrainConfig)
    seed: int = 0

    def tags(self) -> dict[str, object]:
        """Flat scalar summary for run-log events and experiment tracking."""
        return {
            "dataset": self.dataset,
            "scale": self.scale,
            "tradeoff": self.tradeoff,
            "initial_ranker": self.initial_ranker,
            "list_length": self.list_length,
            "eval_mode": self.eval_mode,
            "num_train_requests": self.num_train_requests,
            "num_test_requests": self.num_test_requests,
            "epochs": self.train.epochs,
            "seed": self.seed,
        }

    def __post_init__(self) -> None:
        if self.dataset not in ("taobao", "movielens", "appstore"):
            raise ValueError(f"unknown dataset {self.dataset!r}")
        if self.initial_ranker not in ("din", "svmrank", "lambdamart"):
            raise ValueError(f"unknown initial ranker {self.initial_ranker!r}")
        if self.eval_mode not in ("expected", "logged"):
            raise ValueError(f"unknown eval mode {self.eval_mode!r}")
        if not 0.0 <= self.tradeoff <= 1.0:
            raise ValueError("tradeoff must be in [0, 1]")
