"""End-to-end experiment pipeline (the paper's semi-synthetic protocol).

Pipeline per :class:`~repro.eval.protocol.ExperimentConfig`:

1. build the synthetic world for the dataset (Taobao / MovieLens / App
   Store) and sample user behavior histories;
2. train the configured initial ranker on its own interaction split;
3. sample candidate sets, rank them with the initial ranker to obtain the
   initial lists ``R``, and simulate clicks with the DCM (``lambda`` blend
   of relevance and personalized diversity) — or, for the App Store, with
   its hidden logged-click model;
4. fit each re-ranker on the click-labeled training requests;
5. evaluate on the test requests: click@k, ndcg@k, div@k, satis@k (public)
   or rev@k (App Store).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..click.dcm import (
    DependentClickModel,
    expected_clicks_curve,
)
from ..core import RapidConfig, RapidReranker
from ..data import (
    RankingRequest,
    SyntheticWorld,
    build_batch,
    make_appstore_world,
    make_movielens_world,
    make_taobao_world,
)
from ..metrics import clicks_at_k, div_at_k, ndcg_at_k, revenue_at_k, satis_at_k
from ..obs import get_registry, get_run_logger, trace
from ..obs import windows as _windows
from ..rankers import DINRanker, InitialRanker, LambdaMARTRanker, SVMRankRanker
from ..rerank import (
    AdaptiveMMRReranker,
    DESAReranker,
    DLCMReranker,
    DPPReranker,
    MMRReranker,
    PDGANReranker,
    PRMReranker,
    Reranker,
    SRGAReranker,
    SSDReranker,
    SetRankReranker,
    identity_permutation,
)
from ..resilience.chaos import faultpoint
from ..utils.rng import make_rng
from .protocol import ExperimentConfig

__all__ = [
    "ExperimentBundle",
    "EvaluationResult",
    "prepare_bundle",
    "make_reranker",
    "evaluate_reranker",
    "run_experiment",
]

_WORLD_BUILDERS = {
    "taobao": make_taobao_world,
    "movielens": make_movielens_world,
    "appstore": make_appstore_world,
}

_RANKER_BUILDERS = {
    "din": lambda seed: DINRanker(seed=seed),
    "svmrank": lambda seed: SVMRankRanker(seed=seed),
    "lambdamart": lambda seed: LambdaMARTRanker(num_trees=15),
}


@dataclass
class ExperimentBundle:
    """Everything produced by the data/simulation stages of the pipeline."""

    config: ExperimentConfig
    world: SyntheticWorld
    histories: list[np.ndarray]
    initial_ranker: InitialRanker
    click_model: DependentClickModel
    train_requests: list[RankingRequest]
    test_requests: list[RankingRequest]


@dataclass
class EvaluationResult:
    """Aggregate metrics plus per-request utility samples for t-tests."""

    metrics: dict[str, float]
    per_request_clicks: dict[int, np.ndarray] = field(default_factory=dict)

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]


@trace("eval.prepare_bundle")
def prepare_bundle(config: ExperimentConfig) -> ExperimentBundle:
    """Run stages 1-3: world, initial ranker, click-labeled requests."""
    get_run_logger().log("experiment.prepare", **config.tags())
    with trace("eval.build_world"):
        world = _WORLD_BUILDERS[config.dataset](
            scale=config.scale, seed=config.seed
        )
        histories = world.sample_histories()
    ranker = _RANKER_BUILDERS[config.initial_ranker](config.seed)
    interactions = world.sample_ranker_training(config.ranker_interactions)
    with trace("eval.fit_initial_ranker"):
        ranker.fit(
            interactions, world.catalog, world.population, histories=histories
        )

    # The App Store's logged clicks always come from its production-like
    # model (a fixed-lambda DCM here); the public datasets use the
    # configurable lambda of Table II.
    tradeoff = 0.5 if config.dataset == "appstore" else config.tradeoff
    click_model = DependentClickModel(world, tradeoff=tradeoff)
    rng = make_rng(config.seed + 7)

    def build_requests(count: int, full_information: bool) -> list[RankingRequest]:
        users, candidates = world.sample_candidate_sets(count, config.list_length)
        items, scores = ranker.rank(
            users, candidates, world.catalog, world.population, histories=histories
        )
        return [
            RankingRequest(
                user_id=int(user),
                items=row_items,
                initial_scores=row_scores,
                clicks=click_model.simulate(
                    int(user), row_items, rng, full_information=full_information
                ),
                fully_observed=full_information,
            )
            for user, row_items, row_scores in zip(users, items, scores)
        ]

    # Training labels are simulator-logged attraction outcomes for every
    # position (no examination censoring; see DESIGN.md).  Test-request
    # clicks are only consumed by `logged` replay evaluation; replaying
    # *censored* sessions would systematically reward the logging policy
    # (the initial ranking), so logged mode also replays per-impression
    # attraction outcomes.
    full_test = config.eval_mode == "logged"
    return ExperimentBundle(
        config=config,
        world=world,
        histories=histories,
        initial_ranker=ranker,
        click_model=click_model,
        train_requests=build_requests(config.num_train_requests, True),
        test_requests=build_requests(config.num_test_requests, full_test),
    )


def make_reranker(name: str, bundle: ExperimentBundle) -> Reranker | None:
    """Factory for every model of the paper's comparison (None = Init)."""
    config = bundle.config
    catalog = bundle.world.catalog
    population = bundle.world.population
    key = name.lower()
    if key == "init":
        return None
    neural_kwargs = dict(
        hidden=config.hidden,
        epochs=config.train.epochs,
        batch_size=config.train.batch_size,
        lr=config.train.lr,
        seed=config.seed,
    )
    if key == "dlcm":
        return DLCMReranker(**neural_kwargs)
    if key == "prm":
        return PRMReranker(**neural_kwargs)
    if key == "setrank":
        return SetRankReranker(**neural_kwargs)
    if key == "srga":
        return SRGAReranker(**neural_kwargs)
    if key == "desa":
        return DESAReranker(**neural_kwargs)
    if key == "seq2slate":
        from ..rerank import Seq2SlateReranker

        return Seq2SlateReranker(**neural_kwargs)
    if key == "mmr":
        return MMRReranker()
    if key == "dpp":
        return DPPReranker()
    if key == "ssd":
        return SSDReranker()
    if key == "adpmmr":
        return AdaptiveMMRReranker(catalog, bundle.histories)
    if key == "pdgan":
        return PDGANReranker(
            hidden=config.hidden, epochs=max(1, config.train.epochs // 2),
            seed=config.seed,
        )
    if key.startswith("rapid"):
        inference = "sort"
        if key.endswith("-greedy"):
            key = key[: -len("-greedy")]
            inference = "greedy"
        rapid_config = RapidConfig(
            user_dim=population.feature_dim,
            item_dim=catalog.feature_dim,
            num_topics=catalog.num_topics,
            hidden=config.hidden,
            seed=config.seed,
        )
        return RapidReranker(
            rapid_config,
            variant=key,
            train_config=config.train,
            inference=inference,
        )
    raise ValueError(f"unknown model {name!r}")


def evaluate_reranker(
    reranker: Reranker | None,
    bundle: ExperimentBundle,
    ks: Sequence[int] | None = None,
    eval_batch_size: int = 256,
) -> EvaluationResult:
    """Evaluate a re-ranker (or the initial ranking when ``None``).

    ``expected`` mode scores each re-ranked list with the DCM's closed-form
    expected clicks / satisfaction (deterministic, unbiased); ``logged``
    mode replays the clicks logged on the initial list (the App Store
    protocol) — a clicked item counts wherever the re-ranker places it.

    Telemetry: re-ranking runs inside an ``eval.rerank`` span (with a
    child span per batch pass — ``rerank()`` itself also feeds the
    ``rerank.latency_ms`` histogram), metric computation inside an
    ``eval.metrics`` span, and every aggregate metric is published as an
    ``eval.<metric>{model=...}`` gauge plus a per-list latency gauge
    ``eval.rerank_ms_per_list{model=...}``.
    """
    config = bundle.config
    model_name = getattr(reranker, "name", None) or "init"
    ks = tuple(ks) if ks is not None else config.eval_ks
    catalog = bundle.world.catalog
    requests = bundle.test_requests

    faultpoint("eval.rerank")
    with trace("eval.rerank"):
        permutations: list[np.ndarray] = []
        rerank_seconds = 0.0
        for start in range(0, len(requests), eval_batch_size):
            chunk = requests[start : start + eval_batch_size]
            batch = build_batch(
                chunk,
                catalog,
                bundle.world.population,
                bundle.histories,
                topic_history_length=config.train.topic_history_length,
                flat_history_length=config.train.flat_history_length,
            )
            with trace("eval.rerank_batch") as span:
                perm = (
                    identity_permutation(batch)
                    if reranker is None
                    else reranker.rerank(batch)
                )
            rerank_seconds += span.duration_s
            _windows.observe(
                "eval.rerank_batch_ms", span.duration_ms, model=model_name
            )
            _windows.mark("eval.lists", len(chunk), model=model_name)
            permutations.extend(perm[row] for row in range(len(chunk)))

    faultpoint("eval.metrics")
    with trace("eval.metrics"):
        click_rows: list[np.ndarray] = []
        coverage_rows: list[np.ndarray] = []
        attraction_rows: list[np.ndarray] = []
        bid_rows: list[np.ndarray] = []
        for request, perm in zip(requests, permutations):
            order = perm[: request.list_length]
            items = request.items[order]
            coverage_rows.append(catalog.coverage[items])
            if catalog.bids is not None:
                bid_rows.append(catalog.bids[items])
            phi = bundle.click_model.attraction_probabilities(
                request.user_id, items
            )
            eps = bundle.click_model.termination_probabilities(len(items))
            attraction_rows.append(phi)
            if config.eval_mode == "expected":
                examine = np.concatenate(
                    [[1.0], np.cumprod(1.0 - phi * eps)[:-1]]
                )
                click_rows.append(examine * phi)
            else:
                click_rows.append(request.clicks[order])

        # NDCG relevance labels: attraction probabilities in expected mode
        # (position-unconfounded), realized clicks in logged mode.
        ndcg_rows = (
            attraction_rows if config.eval_mode == "expected" else click_rows
        )
        metrics: dict[str, float] = {}
        termination = bundle.click_model.termination_probabilities(
            config.list_length
        )
        for k in ks:
            metrics[f"click@{k}"] = clicks_at_k(click_rows, k)
            metrics[f"ndcg@{k}"] = ndcg_at_k(ndcg_rows, k)
            metrics[f"div@{k}"] = div_at_k(coverage_rows, k)
            metrics[f"satis@{k}"] = satis_at_k(attraction_rows, termination, k)
            if bid_rows:
                metrics[f"rev@{k}"] = revenue_at_k(click_rows, bid_rows, k)

        per_request = {
            k: np.asarray([row[:k].sum() for row in click_rows]) for k in ks
        }

    registry = get_registry()
    rerank_ms_per_list = (
        1000.0 * rerank_seconds / len(requests) if requests else 0.0
    )
    registry.gauge("eval.rerank_ms_per_list", model=model_name).set(
        rerank_ms_per_list
    )
    for metric_name, value in metrics.items():
        registry.gauge(f"eval.{metric_name}", model=model_name).set(value)
    get_run_logger().log(
        "eval.result",
        model=model_name,
        rerank_ms_per_list=rerank_ms_per_list,
        **metrics,
    )
    return EvaluationResult(metrics=metrics, per_request_clicks=per_request)


def run_experiment(
    config: ExperimentConfig,
    models: Sequence[str],
    bundle: ExperimentBundle | None = None,
) -> dict[str, EvaluationResult]:
    """Fit and evaluate each named model; returns name -> result.

    Each model runs under an ``experiment.model`` span with ``fit`` /
    ``evaluate`` children, and the run logger receives ``experiment.start``
    and per-model ``eval.result`` events (silent unless a sink is
    installed; see ``repro.obs``).
    """
    logger = get_run_logger()
    logger.log("experiment.start", models=list(models), **config.tags())
    bundle = bundle if bundle is not None else prepare_bundle(config)
    results: dict[str, EvaluationResult] = {}
    for name in models:
        with trace(f"experiment.model:{name}"):
            reranker = make_reranker(name, bundle)
            if reranker is not None and reranker.requires_training:
                with trace("fit"):
                    reranker.fit(
                        bundle.train_requests,
                        bundle.world.catalog,
                        bundle.world.population,
                        bundle.histories,
                    )
            with trace("evaluate"):
                results[name] = evaluate_reranker(reranker, bundle)
    return results
