"""Command-line experiment runner.

Run one experimental cell of the paper from the shell:

    python -m repro.eval --dataset taobao --tradeoff 0.5 \
        --models init prm dpp rapid-pro --epochs 8

Prints the resulting metric table (click@k / ndcg@k / div@k / satis@k, plus
rev@k on the App Store dataset).
"""

from __future__ import annotations

import argparse

from ..core.trainer import TrainConfig
from .experiment import prepare_bundle, run_experiment
from .protocol import DEFAULT_MODELS, ExperimentConfig
from .tables import format_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Run a RAPID reproduction experiment cell.",
    )
    parser.add_argument(
        "--dataset",
        choices=["taobao", "movielens", "appstore"],
        default="taobao",
    )
    parser.add_argument("--scale", choices=["tiny", "small", "full"], default="small")
    parser.add_argument(
        "--tradeoff",
        type=float,
        default=0.5,
        help="DCM lambda: 1.0 = clicks driven purely by relevance",
    )
    parser.add_argument(
        "--initial-ranker",
        choices=["din", "svmrank", "lambdamart"],
        default="din",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=list(DEFAULT_MODELS),
        help=f"subset of: {', '.join(DEFAULT_MODELS)}",
    )
    parser.add_argument("--list-length", type=int, default=15)
    parser.add_argument("--train-requests", type=int, default=1000)
    parser.add_argument("--test-requests", type=int, default=150)
    parser.add_argument("--ranker-interactions", type=int, default=2000)
    parser.add_argument("--hidden", type=int, default=16)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--lr", type=float, default=1e-2)
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = ExperimentConfig(
        dataset=args.dataset,
        scale=args.scale,
        tradeoff=args.tradeoff,
        initial_ranker=args.initial_ranker,
        list_length=args.list_length,
        num_train_requests=args.train_requests,
        num_test_requests=args.test_requests,
        ranker_interactions=args.ranker_interactions,
        hidden=args.hidden,
        eval_mode="logged" if args.dataset == "appstore" else "expected",
        train=TrainConfig(
            epochs=args.epochs,
            batch_size=args.batch_size,
            lr=args.lr,
            seed=args.seed,
        ),
        seed=args.seed,
    )
    print(
        f"dataset={config.dataset} scale={config.scale} "
        f"lambda={config.tradeoff} initial_ranker={config.initial_ranker}"
    )
    print("preparing data (world -> initial ranker -> simulated clicks)...")
    bundle = prepare_bundle(config)
    results = {}
    for name in args.models:
        print(f"running {name}...")
        outcome = run_experiment(config, [name], bundle=bundle)
        results[name] = outcome[name].metrics
    print()
    print(format_table(results, title="Results"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
