"""Post-hoc analyses of re-ranking behavior (RQ5 tooling).

Beyond aggregate metrics, the paper's RQ5 asks *whether the model actually
personalizes*.  These helpers decompose evaluation outcomes along user
characteristics:

- :func:`utility_by_breadth` — per-request utility bucketed by the user's
  taste breadth; personalized diversification should help broad-taste
  users the most.
- :func:`diversity_by_breadth` — top-k diversity per breadth bucket; a
  personalizing re-ranker shows a *steeper* diversity-vs-breadth slope
  than a uniform one.
- :func:`preference_recovery` — correlation between theta_hat and the
  hidden theta* per user.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.batching import build_batch
from ..metrics import topic_coverage
from ..rerank.base import Reranker, identity_permutation
from .experiment import ExperimentBundle

__all__ = [
    "breadth_buckets",
    "utility_by_breadth",
    "diversity_by_breadth",
    "preference_recovery",
]


def breadth_buckets(
    bundle: ExperimentBundle, num_buckets: int = 3
) -> tuple[np.ndarray, np.ndarray]:
    """Bucket test requests by the requesting user's observable breadth.

    Breadth = normalized entropy of the topic distribution of the user's
    behavior history.  Returns ``(bucket index per request, bucket edges)``.
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    coverage = bundle.world.catalog.coverage
    entropies = []
    for request in bundle.test_requests:
        history = bundle.histories[request.user_id]
        mass = coverage[history].sum(axis=0)
        total = mass.sum()
        if total <= 0:
            entropies.append(0.0)
            continue
        dist = mass / total
        entropies.append(float(-(dist * np.log(dist + 1e-12)).sum()))
    entropies = np.asarray(entropies)
    edges = np.quantile(entropies, np.linspace(0, 1, num_buckets + 1))
    buckets = np.clip(
        np.searchsorted(edges[1:-1], entropies, side="right"), 0, num_buckets - 1
    )
    return buckets, edges


def _permutations(
    reranker: Reranker | None, bundle: ExperimentBundle
) -> np.ndarray:
    batch = build_batch(
        bundle.test_requests,
        bundle.world.catalog,
        bundle.world.population,
        bundle.histories,
    )
    if reranker is None:
        return identity_permutation(batch)
    return reranker.rerank(batch)


def utility_by_breadth(
    reranker: Reranker | None,
    bundle: ExperimentBundle,
    k: int = 5,
    num_buckets: int = 3,
) -> dict[str, float]:
    """Mean expected clicks@k per breadth bucket (focused -> diverse)."""
    buckets, _ = breadth_buckets(bundle, num_buckets)
    permutations = _permutations(reranker, bundle)
    utilities = np.asarray(
        [
            bundle.click_model.expected_clicks(
                request.user_id,
                request.items[permutations[i][: len(request.items)]],
                k,
            )
            for i, request in enumerate(bundle.test_requests)
        ]
    )
    return {
        f"bucket{b}": float(utilities[buckets == b].mean())
        for b in range(num_buckets)
        if (buckets == b).any()
    }


def diversity_by_breadth(
    reranker: Reranker | None,
    bundle: ExperimentBundle,
    k: int = 5,
    num_buckets: int = 3,
) -> dict[str, float]:
    """Mean covered topics in the top-k per breadth bucket."""
    buckets, _ = breadth_buckets(bundle, num_buckets)
    permutations = _permutations(reranker, bundle)
    coverage = bundle.world.catalog.coverage
    diversities = np.asarray(
        [
            float(
                topic_coverage(
                    coverage[
                        request.items[permutations[i][: len(request.items)]][:k]
                    ]
                ).sum()
            )
            for i, request in enumerate(bundle.test_requests)
        ]
    )
    return {
        f"bucket{b}": float(diversities[buckets == b].mean())
        for b in range(num_buckets)
        if (buckets == b).any()
    }


def preference_recovery(
    rapid_reranker, bundle: ExperimentBundle
) -> dict[str, float]:
    """How well theta_hat matches the hidden theta* (mean/median corr)."""
    batch = build_batch(
        bundle.test_requests,
        bundle.world.catalog,
        bundle.world.population,
        bundle.histories,
    )
    theta_hat = rapid_reranker.model.preference_distribution(batch)
    theta_star = bundle.world.population.topic_preference[batch.user_ids]
    correlations = [
        float(np.corrcoef(theta_hat[i], theta_star[i])[0, 1])
        for i in range(len(theta_hat))
        if theta_star[i].std() > 0 and theta_hat[i].std() > 0
    ]
    correlations = np.asarray(correlations)
    return {
        "mean_corr": float(np.nanmean(correlations)),
        "median_corr": float(np.nanmedian(correlations)),
        "frac_positive": float(np.nanmean(correlations > 0)),
    }
