"""Theoretical analysis substrate: linear RAPID bandit and regret (Sec. V)."""

from .explorers import EpsilonGreedyLinearRapid, ThompsonLinearRapid
from .linear_rapid import GreedyOraclePolicy, LinearDCMEnvironment, LinearRapidUCB
from .regret import (
    RegretResult,
    compare_explorers,
    run_regret_experiment,
    theoretical_bound,
)
from .submodular import approximation_gamma, dcm_satisfaction, greedy_maximize

__all__ = [
    "EpsilonGreedyLinearRapid",
    "GreedyOraclePolicy",
    "LinearDCMEnvironment",
    "LinearRapidUCB",
    "RegretResult",
    "ThompsonLinearRapid",
    "approximation_gamma",
    "compare_explorers",
    "dcm_satisfaction",
    "greedy_maximize",
    "run_regret_experiment",
    "theoretical_bound",
]
