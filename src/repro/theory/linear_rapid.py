"""Linear RAPID — the bandit abstraction analyzed in Sec. V-A.

Replacing the deep estimators with their linear forms, the re-ranking score
becomes ``phi_R = omega^T eta`` with ``omega = [beta, theta]`` and
``eta(v | prefix) = [x_{u,v}, d(v | prefix)]`` — relevance features
concatenated with the item's marginal topic-coverage gain given the items
already placed above it.  :class:`LinearRapidUCB` is the LinUCB-style
learner whose regret Theorem 5.1 bounds: ridge regression on observed
(eta, click) pairs, greedy list construction by upper confidence bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import make_rng

__all__ = ["LinearDCMEnvironment", "LinearRapidUCB", "GreedyOraclePolicy"]


def _incremental_gain(coverage: np.ndarray, prefix_cover: np.ndarray) -> np.ndarray:
    """d(v | prefix) = tau_v * prod_{s in prefix} (1 - tau_s), elementwise."""
    return coverage * prefix_cover


@dataclass
class LinearDCMEnvironment:
    """A linear dependent-click-model world for the regret experiment.

    Attributes
    ----------
    omega_star:
        (q0,) true parameter ``[beta*, theta*]`` with ``||omega*|| <= 1``.
    feature_dim:
        Relevance feature dimension (q_u + q_v in the paper's notation).
    num_topics:
        m; the diversity block of ``eta`` has this dimension.
    termination:
        (K,) non-increasing position termination probabilities.
    """

    omega_star: np.ndarray
    feature_dim: int
    num_topics: int
    termination: np.ndarray

    @classmethod
    def create(
        cls,
        feature_dim: int = 6,
        num_topics: int = 4,
        k: int = 5,
        base_termination: float = 0.6,
        termination_decay: float = 0.9,
        seed: int | np.random.Generator | None = 0,
    ) -> "LinearDCMEnvironment":
        rng = make_rng(seed)
        q0 = feature_dim + num_topics
        omega = np.abs(rng.normal(size=q0))
        # ||omega*|| = 0.7 (<= 1 as Theorem 5.1 requires) keeps attraction
        # probabilities strictly inside (0, 1): the clipped-linear model
        # stays truly linear, so ridge regression is consistent.
        omega = 0.7 * omega / np.linalg.norm(omega)
        termination = base_termination * termination_decay ** np.arange(k)
        return cls(
            omega_star=omega,
            feature_dim=feature_dim,
            num_topics=num_topics,
            termination=termination,
        )

    @property
    def q0(self) -> int:
        return self.feature_dim + self.num_topics

    @property
    def k(self) -> int:
        return len(self.termination)

    def sample_candidates(
        self, num_candidates: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Random candidate pool: (features (n, q_f), coverage (n, m))."""
        features = rng.random((num_candidates, self.feature_dim)) / np.sqrt(
            self.feature_dim
        )
        coverage = rng.random((num_candidates, self.num_topics))
        coverage = coverage * (rng.random((num_candidates, self.num_topics)) < 0.4)
        return features, coverage

    def eta(
        self,
        features: np.ndarray,
        coverage: np.ndarray,
        prefix_cover: np.ndarray,
    ) -> np.ndarray:
        """Bandit context for each candidate given the current prefix."""
        gains = _incremental_gain(coverage, prefix_cover)
        return np.concatenate([features, gains], axis=-1)

    def attraction(self, eta: np.ndarray) -> np.ndarray:
        return np.clip(eta @ self.omega_star, 0.0, 1.0)

    # ------------------------------------------------------------------
    def list_utility(self, phi: np.ndarray) -> float:
        """DCM satisfaction of a ranked list with attractions ``phi``."""
        eps = self.termination[: len(phi)]
        return float(1.0 - np.prod(1.0 - eps * np.clip(phi, 0.0, 1.0)))

    def simulate_session(
        self, phi: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample a DCM session; returns (clicks, examined mask)."""
        clicks = np.zeros(len(phi))
        examined = np.zeros(len(phi), dtype=bool)
        for position in range(len(phi)):
            examined[position] = True
            if rng.random() < phi[position]:
                clicks[position] = 1.0
                if rng.random() < self.termination[position]:
                    break
        return clicks, examined


class GreedyOraclePolicy:
    """Greedy list construction with the *true* parameters (the comparator
    ``S*`` in the gamma-scaled regret of Eq. 12)."""

    def __init__(self, env: LinearDCMEnvironment) -> None:
        self.env = env

    def select(self, features: np.ndarray, coverage: np.ndarray) -> np.ndarray:
        env = self.env
        remaining = list(range(len(features)))
        prefix_cover = np.ones(env.num_topics)
        chosen: list[int] = []
        phi_chosen: list[float] = []
        while remaining and len(chosen) < env.k:
            etas = env.eta(features[remaining], coverage[remaining], prefix_cover)
            phi = env.attraction(etas)
            eps = env.termination[len(chosen)]
            base = np.prod(
                1.0 - env.termination[: len(chosen)] * np.asarray(phi_chosen)
            )
            marginal = base * eps * phi
            pick_local = int(np.argmax(marginal))
            pick = remaining.pop(pick_local)
            chosen.append(pick)
            phi_chosen.append(float(phi[pick_local]))
            prefix_cover = prefix_cover * (1.0 - coverage[pick])
        return np.asarray(chosen, dtype=np.int64)


class LinearRapidUCB:
    """The LinUCB-style learner of Sec. V-A.

    Ridge regression ``omega_hat = M^{-1} y`` over observed (eta, click)
    pairs; lists are built greedily by the projected upper confidence bound
    ``Proj_[0,1](omega_hat^T eta + s sqrt(eta^T M^{-1} eta))``.

    Parameters
    ----------
    env:
        The environment supplying feature geometry (not its parameters).
    exploration:
        The confidence width ``s``; Theorem 5.1 prescribes
        ``s ~ sqrt(q0 log(1 + nK/q0 sigma^2) + 2 log n) + ||omega*||``.
    ridge:
        The regularizer ``sigma^2`` (identity prior on M).
    """

    def __init__(
        self,
        env: LinearDCMEnvironment,
        exploration: float = 1.0,
        ridge: float = 1.0,
    ) -> None:
        if exploration < 0:
            raise ValueError("exploration must be >= 0")
        self.env = env
        self.exploration = exploration
        self.m_matrix = ridge * np.eye(env.q0)
        self._m_inverse = np.linalg.inv(self.m_matrix)
        self.y_vector = np.zeros(env.q0)

    @property
    def omega_hat(self) -> np.ndarray:
        return self._m_inverse @ self.y_vector

    def _ucb(self, etas: np.ndarray) -> np.ndarray:
        mean = etas @ self.omega_hat
        width = np.sqrt(np.einsum("ij,jk,ik->i", etas, self._m_inverse, etas))
        return np.clip(mean + self.exploration * width, 0.0, 1.0)

    def select(self, features: np.ndarray, coverage: np.ndarray) -> np.ndarray:
        """Greedy UCB list construction (Sec. III-D2 in linear form)."""
        env = self.env
        remaining = list(range(len(features)))
        prefix_cover = np.ones(env.num_topics)
        chosen: list[int] = []
        ucb_chosen: list[float] = []
        while remaining and len(chosen) < env.k:
            etas = env.eta(features[remaining], coverage[remaining], prefix_cover)
            ucb = self._ucb(etas)
            eps = env.termination[len(chosen)]
            base = np.prod(
                1.0 - env.termination[: len(chosen)] * np.asarray(ucb_chosen)
            )
            marginal = base * eps * ucb
            pick_local = int(np.argmax(marginal))
            pick = remaining.pop(pick_local)
            chosen.append(pick)
            ucb_chosen.append(float(ucb[pick_local]))
            prefix_cover = prefix_cover * (1.0 - coverage[pick])
        return np.asarray(chosen, dtype=np.int64)

    def update(self, etas: np.ndarray, clicks: np.ndarray) -> None:
        """Rank-one updates of M and y with Sherman-Morrison inversion."""
        for eta, click in zip(etas, clicks):
            self.m_matrix += np.outer(eta, eta)
            mv = self._m_inverse @ eta
            self._m_inverse -= np.outer(mv, mv) / (1.0 + eta @ mv)
            self.y_vector += eta * click
