"""Submodular utilities for the theoretical analysis (paper Sec. V-A).

Provides the generic greedy maximizer used as the list-construction oracle,
the DCM satisfaction function ``f(S, eps, phi)``, and the approximation
ratio ``gamma`` of the greedy method from Hiranandani et al. (2020) that
scales the regret definition in Eq. 12.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

__all__ = [
    "greedy_maximize",
    "dcm_satisfaction",
    "approximation_gamma",
]

T = TypeVar("T")


def greedy_maximize(
    gain: Callable[[list[T], T], float],
    candidates: Sequence[T],
    k: int,
) -> list[T]:
    """Generic greedy selection: repeatedly add the argmax-gain candidate.

    ``gain(selected, candidate)`` must return the marginal value of
    appending ``candidate`` to the current ``selected`` prefix.  For
    monotone submodular objectives this achieves the classical ``1 - 1/e``
    guarantee; for the DCM utility it achieves the ``gamma`` of
    :func:`approximation_gamma`.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    selected: list[T] = []
    remaining = list(candidates)
    while remaining and len(selected) < k:
        values = [gain(selected, candidate) for candidate in remaining]
        best = int(np.argmax(values))
        selected.append(remaining.pop(best))
    return selected


def dcm_satisfaction(phi: np.ndarray, eps: np.ndarray) -> float:
    """DCM utility ``f(S, eps, phi) = 1 - prod_k (1 - eps_k phi_k)``."""
    phi = np.clip(np.asarray(phi, dtype=np.float64), 0.0, 1.0)
    eps = np.asarray(eps, dtype=np.float64)[: len(phi)]
    return float(1.0 - np.prod(1.0 - eps * phi))


def approximation_gamma(k: int, phi_max: float) -> float:
    """Greedy approximation ratio for the DCM objective (Sec. V-A).

    ``gamma = (1 - 1/e) * max(1/K, 1 - 2 phi_max / (K - 1))`` from
    Hiranandani et al. (2020); ``phi_max`` is the maximum attraction
    probability over lists.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not 0.0 <= phi_max <= 1.0:
        raise ValueError("phi_max must be in [0, 1]")
    base = 1.0 - 1.0 / np.e
    if k == 1:
        return base
    return float(base * max(1.0 / k, 1.0 - 2.0 * phi_max / (k - 1)))
