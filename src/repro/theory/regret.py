"""Regret experiment for Theorem 5.1.

Runs :class:`LinearRapidUCB` against the linear DCM environment and records
the gamma-scaled cumulative regret of Eq. 12:

    G_gamma(n) = sum_u [ f(S*_u, eps, phi*) - f(S_u, eps, phi*) / gamma ]

together with the theorem's ``O~(q0 sqrt(n))`` bound.  The reproduction
checks (i) the regret curve is sublinear (regret/n -> 0), and (ii) it stays
below the theoretical bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..utils.rng import make_rng
from .linear_rapid import GreedyOraclePolicy, LinearDCMEnvironment, LinearRapidUCB
from .submodular import approximation_gamma

__all__ = [
    "RegretResult",
    "theoretical_bound",
    "run_regret_experiment",
    "compare_explorers",
]


@dataclass
class RegretResult:
    """Cumulative regret trajectory and diagnostic quantities."""

    cumulative_regret: np.ndarray  # gamma-scaled (Eq. 12), bounded by Thm 5.1
    raw_regret: np.ndarray  # un-scaled oracle - learner (diagnostic)
    bound: np.ndarray
    gamma: float
    exploration: float
    per_round_oracle: np.ndarray = field(default_factory=lambda: np.empty(0))
    per_round_learner: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def horizon(self) -> int:
        return len(self.cumulative_regret)

    def sublinearity_ratio(self) -> float:
        """raw_regret(n)/n over raw_regret(n/2)/(n/2); < 1 means sublinear."""
        n = self.horizon
        half = max(n // 2, 1)
        early = self.raw_regret[half - 1] / half
        late = self.raw_regret[n - 1] / n
        if early <= 0:
            return 0.0
        return float(late / early)


def theoretical_bound(
    n: int,
    q0: int,
    k: int,
    gamma: float,
    p_v: float,
    exploration: float,
    ridge: float = 1.0,
) -> np.ndarray:
    """Theorem 5.1 upper bound evaluated for horizons 1..n."""
    steps = np.arange(1, n + 1, dtype=np.float64)
    log_term = np.log(1.0 + steps * k / (q0 * ridge))
    numerator = q0 * steps * log_term
    denominator = np.log(1.0 + 1.0 / ridge)
    return (
        2.0 * p_v * exploration * k**2 / gamma * np.sqrt(numerator / denominator)
        + 1.0
    )


def run_regret_experiment(
    horizon: int = 2000,
    num_candidates: int = 20,
    feature_dim: int = 6,
    num_topics: int = 4,
    k: int = 5,
    exploration: float | None = None,
    seed: int = 0,
    learner: "LinearRapidUCB | None" = None,
    env: LinearDCMEnvironment | None = None,
) -> RegretResult:
    """Simulate a linear RAPID learner for ``horizon`` rounds.

    Returns the gamma-scaled cumulative regret and the Theorem 5.1 bound.
    ``exploration=None`` uses the theorem's prescription for ``s``.  A
    custom ``learner`` (e.g. epsilon-greedy or Thompson sampling from
    :mod:`repro.theory.explorers`) may be supplied to compare policies in
    the same environment.
    """
    if env is None:
        env = LinearDCMEnvironment.create(
            feature_dim=feature_dim, num_topics=num_topics, k=k, seed=seed
        )
    rng = make_rng(seed + 1)
    if exploration is None:
        q0 = env.q0
        exploration = float(
            np.sqrt(q0 * np.log(1.0 + horizon * k / q0) + 2.0 * np.log(max(horizon, 2)))
            + 1.0
        )
    if learner is None:
        learner = LinearRapidUCB(env, exploration=exploration)
    else:
        exploration = max(learner.exploration, 1e-6)
    oracle = GreedyOraclePolicy(env)

    eps = env.termination
    p_v = float(
        np.max(np.diff(np.concatenate([eps, [0.0]])) * -1.0)
    )  # max eps_k - eps_{k+1}

    oracle_utils = np.empty(horizon)
    learner_utils = np.empty(horizon)
    phi_max = 0.0
    for t in range(horizon):
        features, coverage = env.sample_candidates(num_candidates, rng)

        oracle_list = oracle.select(features, coverage)
        phi_oracle = _list_attractions(env, features, coverage, oracle_list)
        oracle_utils[t] = env.list_utility(phi_oracle)

        learner_list = learner.select(features, coverage)
        phi_learner = _list_attractions(env, features, coverage, learner_list)
        learner_utils[t] = env.list_utility(phi_learner)
        phi_max = max(phi_max, float(phi_learner.max(initial=0.0)))

        clicks, examined = env.simulate_session(phi_learner, rng)
        etas = _list_etas(env, features, coverage, learner_list)
        learner.update(etas[examined], clicks[examined])

    gamma = approximation_gamma(k, phi_max)
    regret_steps = oracle_utils - learner_utils / gamma
    cumulative = np.cumsum(regret_steps)
    raw = np.cumsum(oracle_utils - learner_utils)
    bound = theoretical_bound(horizon, env.q0, k, gamma, p_v, exploration)
    return RegretResult(
        cumulative_regret=cumulative,
        raw_regret=raw,
        bound=bound,
        gamma=gamma,
        exploration=exploration,
        per_round_oracle=oracle_utils,
        per_round_learner=learner_utils,
    )


def compare_explorers(
    horizon: int = 1500,
    seed: int = 0,
    exploration: float = 0.5,
    epsilon: float = 0.1,
    posterior_scale: float = 0.5,
) -> dict[str, RegretResult]:
    """Run UCB, epsilon-greedy, and Thompson sampling in the same world.

    All learners share the environment (same ``omega*``, same termination
    schedule) but see their own candidate/click randomness.
    """
    from .explorers import EpsilonGreedyLinearRapid, ThompsonLinearRapid
    from .linear_rapid import LinearRapidUCB

    env = LinearDCMEnvironment.create(seed=seed)
    learners = {
        "ucb": LinearRapidUCB(env, exploration=exploration),
        "epsilon-greedy": EpsilonGreedyLinearRapid(env, epsilon=epsilon, seed=seed),
        "thompson": ThompsonLinearRapid(
            env, posterior_scale=posterior_scale, seed=seed
        ),
    }
    return {
        name: run_regret_experiment(
            horizon=horizon, seed=seed, learner=learner, env=env
        )
        for name, learner in learners.items()
    }


def _list_etas(
    env: LinearDCMEnvironment,
    features: np.ndarray,
    coverage: np.ndarray,
    order: np.ndarray,
) -> np.ndarray:
    prefix_cover = np.ones(env.num_topics)
    etas = []
    for item in order:
        etas.append(
            env.eta(features[item], coverage[item], prefix_cover)
        )
        prefix_cover = prefix_cover * (1.0 - coverage[item])
    return np.asarray(etas)


def _list_attractions(
    env: LinearDCMEnvironment,
    features: np.ndarray,
    coverage: np.ndarray,
    order: np.ndarray,
) -> np.ndarray:
    return env.attraction(_list_etas(env, features, coverage, order))
