"""Alternative exploration policies for the linear RAPID environment.

Comparators for the regret study: the UCB learner of Theorem 5.1 is the
analyzed algorithm; epsilon-greedy and Thompson sampling are the classical
alternatives a practitioner would reach for.  All share the greedy
sequential list construction, differing only in how candidate scores blend
estimation and exploration.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import make_rng
from .linear_rapid import LinearDCMEnvironment, LinearRapidUCB

__all__ = ["EpsilonGreedyLinearRapid", "ThompsonLinearRapid"]


class EpsilonGreedyLinearRapid(LinearRapidUCB):
    """Greedy exploitation with epsilon-probability random lists.

    With probability ``epsilon`` the whole list is a random permutation of
    the candidates (exploration round); otherwise the greedy construction
    runs on the point estimate (no confidence bonus).
    """

    def __init__(
        self,
        env: LinearDCMEnvironment,
        epsilon: float = 0.1,
        ridge: float = 1.0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(env, exploration=0.0, ridge=ridge)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self._rng = make_rng(seed)

    def select(self, features: np.ndarray, coverage: np.ndarray) -> np.ndarray:
        if self._rng.random() < self.epsilon:
            order = self._rng.permutation(len(features))[: self.env.k]
            return order.astype(np.int64)
        return super().select(features, coverage)


class ThompsonLinearRapid(LinearRapidUCB):
    """Linear Thompson sampling: score with a posterior parameter draw.

    Draws ``omega ~ N(omega_hat, v^2 M^{-1})`` once per round and runs the
    greedy construction with the sampled parameter (no extra bonus).
    """

    def __init__(
        self,
        env: LinearDCMEnvironment,
        posterior_scale: float = 0.5,
        ridge: float = 1.0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(env, exploration=0.0, ridge=ridge)
        if posterior_scale < 0:
            raise ValueError("posterior_scale must be >= 0")
        self.posterior_scale = posterior_scale
        self._rng = make_rng(seed)
        self._sampled_omega: np.ndarray | None = None

    def select(self, features: np.ndarray, coverage: np.ndarray) -> np.ndarray:
        mean = self.omega_hat
        # Sample from the ridge posterior via the Cholesky of M^{-1}.
        chol = np.linalg.cholesky(
            self._m_inverse + 1e-12 * np.eye(self.env.q0)
        )
        noise = self._rng.standard_normal(self.env.q0)
        self._sampled_omega = mean + self.posterior_scale * chol @ noise
        try:
            return super().select(features, coverage)
        finally:
            self._sampled_omega = None

    def _ucb(self, etas: np.ndarray) -> np.ndarray:
        omega = (
            self._sampled_omega if self._sampled_omega is not None else self.omega_hat
        )
        return np.clip(etas @ omega, 0.0, 1.0)
