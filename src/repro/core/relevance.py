"""Listwise relevance estimator (paper Sec. III-B).

Each candidate ``R(i)`` is embedded as ``e_i = [x_u, x_{R(i)}, tau_{R(i)}]``
(optionally plus the initial-ranker score) and encoded bidirectionally so
the representation ``h_i`` captures cross-item interactions with items
ranked both before and after position ``i``.  The Bi-LSTM can be swapped for
a transformer encoder (the RAPID-trans ablation of Sec. IV-E2).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.batching import RerankBatch, normalized_initial_scores
from ..nn import Tensor, inference

__all__ = ["ListwiseRelevanceEstimator"]


class ListwiseRelevanceEstimator(nn.Module):
    """Encodes the initial list into contextual relevance representations.

    Parameters
    ----------
    user_dim, item_dim, num_topics:
        Feature dimensions of the batch arrays.
    hidden:
        Recurrent hidden size ``q_h``; the output is ``2 * q_h`` per item.
    encoder:
        ``"bilstm"`` (paper default) or ``"transformer"`` (ablation).
    use_initial_scores:
        Whether to append the initial-ranker score to each item embedding.
    """

    def __init__(
        self,
        user_dim: int,
        item_dim: int,
        num_topics: int,
        hidden: int = 16,
        encoder: str = "bilstm",
        use_initial_scores: bool = True,
        num_heads: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if encoder not in ("bilstm", "transformer"):
            raise ValueError("encoder must be 'bilstm' or 'transformer'")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.encoder_kind = encoder
        self.use_initial_scores = use_initial_scores
        input_dim = user_dim + item_dim + num_topics + int(use_initial_scores)
        self.output_dim = 2 * hidden
        if encoder == "bilstm":
            self.encoder = nn.BiLSTM(input_dim, hidden, rng=rng)
        else:
            self.input_proj = nn.Linear(input_dim, 2 * hidden, rng=rng)
            self.encoder = nn.TransformerEncoderLayer(
                2 * hidden, num_heads, rng=rng
            )
            # Learned position embeddings (transformers need explicit order).
            self.position_table = nn.Embedding(256, 2 * hidden, rng=rng)

    def forward(self, batch: RerankBatch) -> Tensor:
        """Return (B, L, 2*hidden) listwise relevance representations."""
        items = Tensor(self._assemble(batch))
        if self.encoder_kind == "bilstm":
            return self.encoder(items, mask=batch.mask)
        positions = np.tile(np.arange(batch.list_length), (batch.batch_size, 1))
        projected = self.input_proj(items) + self.position_table(positions)
        return self.encoder(projected, mask=batch.mask)

    def _assemble(self, batch: RerankBatch) -> np.ndarray:
        """The per-item embedding matrix ``e_i`` as one raw array."""
        user = np.broadcast_to(
            batch.user_features[:, None, :],
            (batch.batch_size, batch.list_length, batch.user_features.shape[-1]),
        )
        parts = [user, batch.item_features, batch.coverage]
        if self.use_initial_scores:
            parts.append(normalized_initial_scores(batch)[:, :, None])
        return np.concatenate(parts, axis=2)

    def infer(self, batch: RerankBatch) -> np.ndarray:
        """Tape-free forward in the inference dtype; same numerics as forward."""
        items = self._assemble(batch).astype(inference.infer_dtype(), copy=False)
        if self.encoder_kind == "bilstm":
            return self.encoder.infer(items, mask=batch.mask)
        positions = np.tile(np.arange(batch.list_length), (batch.batch_size, 1))
        projected = self.input_proj.infer(items) + self.position_table.infer(
            positions
        )
        return self.encoder.infer(projected, mask=batch.mask)
