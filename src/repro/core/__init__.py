"""The paper's primary contribution: the RAPID model and its trainer."""

from .coverage import (
    incremental_coverage,
    incremental_gain,
    log_coverage,
    marginal_diversity,
    probabilistic_coverage,
    saturating_coverage,
)
from .diversity import PersonalizedDiversityEstimator
from .heads import DeterministicHead, ProbabilisticHead
from .rapid import RAPID_VARIANTS, RapidConfig, RapidModel, make_rapid_variant
from .relevance import ListwiseRelevanceEstimator
from .trainer import RapidReranker, TrainConfig, train_rapid

__all__ = [
    "DeterministicHead",
    "ListwiseRelevanceEstimator",
    "PersonalizedDiversityEstimator",
    "ProbabilisticHead",
    "RAPID_VARIANTS",
    "RapidConfig",
    "RapidModel",
    "RapidReranker",
    "TrainConfig",
    "incremental_coverage",
    "incremental_gain",
    "log_coverage",
    "make_rapid_variant",
    "marginal_diversity",
    "probabilistic_coverage",
    "saturating_coverage",
    "train_rapid",
]
