"""Training loop and re-ranker wrapper for RAPID (paper Sec. III-E).

RAPID is optimized end-to-end with the pointwise cross-entropy of Eq. 11 on
the click labels of the initial lists, using Adam.  :class:`RapidReranker`
adapts a trained :class:`RapidModel` to the shared
:class:`~repro.rerank.base.Reranker` interface used by the evaluation
harness and the baselines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .. import nn
from ..data.batching import RerankBatch, iterate_batches
from ..data.schema import Catalog, Population, RankingRequest
from ..obs import RunLogger, get_registry, get_run_logger, trace
from ..obs import windows as _windows
from ..rerank.base import Reranker
from ..resilience.chaos import faultpoint
from ..resilience.checkpoint import CheckpointConfig, CheckpointManager
from ..utils.rng import make_rng
from ..utils.timer import Timings
from .rapid import RapidConfig, RapidModel, make_rapid_variant

__all__ = [
    "TrainConfig",
    "backward_batch",
    "apply_step",
    "train_rapid",
    "RapidReranker",
]


@dataclass(frozen=True)
class TrainConfig:
    """Optimization hyper-parameters (paper Sec. IV-C grid)."""

    epochs: int = 5
    batch_size: int = 64
    lr: float = 1e-2
    grad_clip: float = 5.0
    weight_decay: float = 1e-4
    topic_history_length: int = 5  # D, best value per Table V
    flat_history_length: int = 20
    seed: int = 0


def backward_batch(
    model: RapidModel,
    optimizer: nn.Adam,
    batch: RerankBatch,
    rng: np.random.Generator,
):
    """Zero grads, forward, masked BCE, backward — no parameter update.

    Returns ``(loss, count)`` where ``count`` is the number of observed
    training positions (the BCE weight sum).  This is the half of a train
    step that depends only on local data; the data-parallel trainer
    (:mod:`repro.dist.train`) runs it per worker and averages the
    resulting gradients weighted by ``count``, which reproduces the
    single-process loss exactly: single-process BCE divides by the batch's
    weight sum, so ``sum_w(grad_w * count_w) / sum_w(count_w)`` equals the
    gradient of the concatenated batch.
    """
    optimizer.zero_grad()
    probs = model(batch, rng=rng)
    loss = nn.losses.pointwise_bce(probs, batch.clicks, mask=batch.training_mask)
    loss.backward()
    return loss, int(batch.training_mask.sum())


def apply_step(
    model: RapidModel,
    optimizer: nn.Adam,
    grad_clip: float,
    grads: "list[np.ndarray] | None" = None,
) -> float:
    """Clip + Adam update; optionally install externally averaged ``grads``.

    With ``grads`` given (one array per ``model.parameters()`` entry, in
    order), each parameter's ``.grad`` is overwritten first — the
    data-parallel path, where every replica applies the same averaged
    gradient and therefore stays bit-identical.  Returns the pre-clip
    global gradient norm.
    """
    params = list(model.parameters())
    if grads is not None:
        if len(grads) != len(params):
            raise ValueError(
                f"got {len(grads)} gradient arrays for {len(params)} parameters"
            )
        for param, grad in zip(params, grads):
            # Autograd accumulates gradients in float64 (tensor.backward);
            # installed averages must match or replicas drift bitwise.
            param.grad = np.asarray(grad, dtype=np.float64)
    grad_norm = nn.clip_grad_norm(params, grad_clip)
    optimizer.step()
    return float(grad_norm)


def train_rapid(
    model: RapidModel,
    requests: Sequence[RankingRequest],
    catalog: Catalog,
    population: Population,
    histories: list[np.ndarray],
    config: TrainConfig = TrainConfig(),
    on_epoch_end: Callable[[int, float], object] | None = None,
    timings: Timings | None = None,
    run_logger: RunLogger | None = None,
    checkpoint: CheckpointConfig | None = None,
) -> list[float]:
    """Train ``model`` in place; returns the per-epoch mean losses.

    ``on_epoch_end(epoch, mean_loss)`` is invoked after every epoch;
    returning a truthy value stops training early (the losses recorded so
    far are returned).  Telemetry goes to ``run_logger`` (the global run
    logger when omitted — silent by default) and to the process-global
    metrics registry/tracer: per-batch ``train.batch`` events and spans,
    per-epoch ``train.epoch`` events with loss, grad norm, learning rate
    and throughput, and a ``train.batch_ms`` latency histogram.

    With ``checkpoint`` set, the run saves a durable checkpoint (model +
    optimizer slots + noise-RNG state + loss history; see
    :mod:`repro.resilience.checkpoint`) every
    ``checkpoint.every_epochs`` epochs, and **resumes** from the newest
    intact checkpoint in ``checkpoint.directory`` when one exists.
    Because batch shuffling is seeded by ``config.seed + epoch`` (pure
    function of the epoch) and the only stateful randomness is
    ``noise_rng`` (captured in the checkpoint), a killed-and-resumed run
    reproduces the uninterrupted loss curve bit-identically.
    """
    if not requests:
        raise ValueError("no training requests provided")
    logger = run_logger if run_logger is not None else get_run_logger()
    batch_hist = get_registry().histogram("train.batch_ms")
    optimizer = nn.Adam(
        model.parameters(), lr=config.lr, weight_decay=config.weight_decay
    )
    noise_rng = make_rng(config.seed + 1)
    losses: list[float] = []
    start_epoch = 0
    manager = CheckpointManager(checkpoint) if checkpoint is not None else None
    if manager is not None:
        restored = manager.restore(model=model, optimizer=optimizer, rng=noise_rng)
        if restored is not None:
            start_epoch = restored.epoch + 1
            losses = list(restored.losses)
            logger.log(
                "train.resume",
                epoch=restored.epoch,
                epochs_done=len(losses),
                directory=str(checkpoint.directory),
            )
    model.train()
    with trace("train.run"):
        logger.log(
            "train.start",
            model=type(model).__name__,
            epochs=config.epochs,
            batch_size=config.batch_size,
            lr=config.lr,
            num_requests=len(requests),
        )
        for epoch in range(start_epoch, config.epochs):
            faultpoint("train.epoch")
            epoch_losses: list[float] = []
            grad_norms: list[float] = []
            lists_seen = 0
            epoch_start = time.perf_counter()
            with trace("train.epoch"):
                for batch_index, batch in enumerate(
                    iterate_batches(
                        requests,
                        catalog,
                        population,
                        histories,
                        batch_size=config.batch_size,
                        shuffle=True,
                        seed=config.seed + epoch,
                        topic_history_length=config.topic_history_length,
                        flat_history_length=config.flat_history_length,
                    )
                ):
                    faultpoint("train.batch")
                    with trace("train.batch"):
                        start = time.perf_counter()
                        loss, _ = backward_batch(model, optimizer, batch, noise_rng)
                        grad_norm = apply_step(model, optimizer, config.grad_clip)
                        batch_seconds = time.perf_counter() - start
                    batch_hist.observe(1000.0 * batch_seconds)
                    # Windowed twin + throughput meter (no-ops when windowed
                    # metrics are off): recent batch latency percentiles and
                    # a lists/s EWMA for long training runs.
                    _windows.observe("train.batch_ms", 1000.0 * batch_seconds)
                    _windows.mark("train.lists", batch.batch_size)
                    if timings is not None:
                        timings.add(batch_seconds)
                    epoch_losses.append(loss.item())
                    grad_norms.append(float(grad_norm))
                    lists_seen += batch.batch_size
                    logger.log(
                        "train.batch",
                        epoch=epoch,
                        batch=batch_index,
                        loss=epoch_losses[-1],
                        grad_norm=grad_norms[-1],
                        batch_ms=1000.0 * batch_seconds,
                    )
            epoch_seconds = time.perf_counter() - epoch_start
            mean_loss = float(np.mean(epoch_losses))
            losses.append(mean_loss)
            get_registry().gauge("train.loss").set(mean_loss)
            logger.log(
                "train.epoch",
                epoch=epoch,
                loss=mean_loss,
                grad_norm=float(np.mean(grad_norms)) if grad_norms else 0.0,
                lr=config.lr,
                lists_per_sec=lists_seen / epoch_seconds if epoch_seconds else 0.0,
                epoch_s=epoch_seconds,
            )
            if manager is not None and manager.should_save(epoch):
                manager.save(
                    model=model,
                    optimizer=optimizer,
                    epoch=epoch,
                    losses=losses,
                    rng=noise_rng,
                )
            if on_epoch_end is not None and on_epoch_end(epoch, mean_loss):
                logger.log("train.early_stop", epoch=epoch, loss=mean_loss)
                break
        if losses:
            logger.log("train.end", epochs_run=len(losses), final_loss=losses[-1])
    return losses


class RapidReranker(Reranker):
    """RAPID exposed through the shared re-ranker interface.

    Parameters
    ----------
    rapid_config:
        Architecture; build a named variant with ``variant``.
    variant:
        One of ``rapid-pro`` (default), ``rapid-det``, ``rapid-rnn``,
        ``rapid-mean``, ``rapid-trans``.
    train_config:
        Optimization settings used by :meth:`fit`.
    inference:
        ``"sort"`` (paper default: one forward pass, sort by score) or
        ``"greedy"`` — greedy sequential construction that recomputes each
        candidate's personalized diversity gain against the already-chosen
        prefix, mirroring the theory section's list constructor.
    """

    requires_training = True

    def __init__(
        self,
        rapid_config: RapidConfig,
        variant: str = "rapid-pro",
        train_config: TrainConfig = TrainConfig(),
        inference: str = "sort",
    ) -> None:
        if inference not in ("sort", "greedy"):
            raise ValueError("inference must be 'sort' or 'greedy'")
        self.name = variant if inference == "sort" else f"{variant}-greedy"
        self.variant = variant
        self.train_config = train_config
        self.inference = inference
        self.model = make_rapid_variant(variant, rapid_config)
        self.training_losses: list[float] = []

    def fit(
        self,
        requests: Sequence[RankingRequest],
        catalog: Catalog,
        population: Population,
        histories: list[np.ndarray],
    ) -> "RapidReranker":
        self.training_losses = train_rapid(
            self.model,
            requests,
            catalog,
            population,
            histories,
            config=self.train_config,
        )
        return self

    def score_batch(self, batch: RerankBatch) -> np.ndarray:
        return self.model.inference_scores(batch)

    def rerank(self, batch: RerankBatch) -> np.ndarray:
        if self.inference == "greedy":
            return self.model.greedy_rerank(batch)
        return super().rerank(batch)
