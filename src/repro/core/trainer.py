"""Training loop and re-ranker wrapper for RAPID (paper Sec. III-E).

RAPID is optimized end-to-end with the pointwise cross-entropy of Eq. 11 on
the click labels of the initial lists, using Adam.  :class:`RapidReranker`
adapts a trained :class:`RapidModel` to the shared
:class:`~repro.rerank.base.Reranker` interface used by the evaluation
harness and the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .. import nn
from ..data.batching import RerankBatch, iterate_batches
from ..data.schema import Catalog, Population, RankingRequest
from ..rerank.base import Reranker
from ..utils.rng import make_rng
from ..utils.timer import Timings
from .rapid import RapidConfig, RapidModel, make_rapid_variant

__all__ = ["TrainConfig", "train_rapid", "RapidReranker"]


@dataclass(frozen=True)
class TrainConfig:
    """Optimization hyper-parameters (paper Sec. IV-C grid)."""

    epochs: int = 5
    batch_size: int = 64
    lr: float = 1e-2
    grad_clip: float = 5.0
    weight_decay: float = 1e-4
    topic_history_length: int = 5  # D, best value per Table V
    flat_history_length: int = 20
    seed: int = 0


def train_rapid(
    model: RapidModel,
    requests: Sequence[RankingRequest],
    catalog: Catalog,
    population: Population,
    histories: list[np.ndarray],
    config: TrainConfig = TrainConfig(),
    on_epoch_end: Callable[[int, float], None] | None = None,
    timings: Timings | None = None,
) -> list[float]:
    """Train ``model`` in place; returns the per-epoch mean losses."""
    if not requests:
        raise ValueError("no training requests provided")
    optimizer = nn.Adam(
        model.parameters(), lr=config.lr, weight_decay=config.weight_decay
    )
    noise_rng = make_rng(config.seed + 1)
    losses: list[float] = []
    model.train()
    for epoch in range(config.epochs):
        epoch_losses: list[float] = []
        for batch in iterate_batches(
            requests,
            catalog,
            population,
            histories,
            batch_size=config.batch_size,
            shuffle=True,
            seed=config.seed + epoch,
            topic_history_length=config.topic_history_length,
            flat_history_length=config.flat_history_length,
        ):
            import time as _time

            start = _time.perf_counter()
            optimizer.zero_grad()
            probs = model(batch, rng=noise_rng)
            loss = nn.losses.pointwise_bce(
                probs, batch.clicks, mask=batch.training_mask
            )
            loss.backward()
            nn.clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            if timings is not None:
                timings.add(_time.perf_counter() - start)
            epoch_losses.append(loss.item())
        mean_loss = float(np.mean(epoch_losses))
        losses.append(mean_loss)
        if on_epoch_end is not None:
            on_epoch_end(epoch, mean_loss)
    return losses


class RapidReranker(Reranker):
    """RAPID exposed through the shared re-ranker interface.

    Parameters
    ----------
    rapid_config:
        Architecture; build a named variant with ``variant``.
    variant:
        One of ``rapid-pro`` (default), ``rapid-det``, ``rapid-rnn``,
        ``rapid-mean``, ``rapid-trans``.
    train_config:
        Optimization settings used by :meth:`fit`.
    inference:
        ``"sort"`` (paper default: one forward pass, sort by score) or
        ``"greedy"`` — greedy sequential construction that recomputes each
        candidate's personalized diversity gain against the already-chosen
        prefix, mirroring the theory section's list constructor.
    """

    requires_training = True

    def __init__(
        self,
        rapid_config: RapidConfig,
        variant: str = "rapid-pro",
        train_config: TrainConfig = TrainConfig(),
        inference: str = "sort",
    ) -> None:
        if inference not in ("sort", "greedy"):
            raise ValueError("inference must be 'sort' or 'greedy'")
        self.name = variant if inference == "sort" else f"{variant}-greedy"
        self.variant = variant
        self.train_config = train_config
        self.inference = inference
        self.model = make_rapid_variant(variant, rapid_config)
        self.training_losses: list[float] = []

    def fit(
        self,
        requests: Sequence[RankingRequest],
        catalog: Catalog,
        population: Population,
        histories: list[np.ndarray],
    ) -> "RapidReranker":
        self.training_losses = train_rapid(
            self.model,
            requests,
            catalog,
            population,
            histories,
            config=self.train_config,
        )
        return self

    def score_batch(self, batch: RerankBatch) -> np.ndarray:
        return self.model.inference_scores(batch)

    def rerank(self, batch: RerankBatch) -> np.ndarray:
        if self.inference == "greedy":
            return self.model.greedy_rerank(batch)
        return super().rerank(batch)
