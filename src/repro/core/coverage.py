"""Submodular coverage math for diversity (paper Eq. 4-5).

- ``probabilistic_coverage``: ``c_j(G) = 1 - prod_{v in G}(1 - tau_v^j)`` —
  the probability at least one item of ``G`` covers topic ``j``.  This is a
  monotone submodular set function (verified property-based in the tests).
- ``marginal_diversity``: ``d_R(R(i)) = c(R) - c(R \\ {R(i)})`` for every
  item simultaneously, computed with prefix/suffix products so items with
  ``tau = 1`` are handled exactly (no division by zero).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "probabilistic_coverage",
    "marginal_diversity",
    "incremental_coverage",
    "saturating_coverage",
    "log_coverage",
    "incremental_gain",
]


def probabilistic_coverage(coverage: np.ndarray) -> np.ndarray:
    """Coverage ``c(G)`` of an item set/list.

    Parameters
    ----------
    coverage:
        (..., L, m) topic-coverage rows; the L axis is reduced.

    Returns
    -------
    (..., m) per-topic coverage probabilities.
    """
    coverage = np.asarray(coverage, dtype=np.float64)
    return 1.0 - np.prod(1.0 - coverage, axis=-2)


def marginal_diversity(coverage: np.ndarray) -> np.ndarray:
    """Leave-one-out marginal diversity of every item in the list (Eq. 5).

    For item ``i`` and topic ``j``:
    ``d[i, j] = tau[i, j] * prod_{k != i} (1 - tau[k, j])`` — the probability
    that ``i`` covers ``j`` while no other candidate does.  Uses exclusive
    prefix/suffix products so ``tau = 1`` entries are exact.

    Parameters
    ----------
    coverage:
        (..., L, m) coverage of the candidate list.

    Returns
    -------
    (..., L, m) marginal diversity in [0, 1].
    """
    coverage = np.asarray(coverage, dtype=np.float64)
    complement = 1.0 - coverage
    ones_shape = list(complement.shape)
    ones_shape[-2] = 1
    ones = np.ones(ones_shape)
    # prefix[i] = prod_{k < i} complement[k]; suffix[i] = prod_{k > i}.
    prefix = np.concatenate(
        [ones, np.cumprod(complement, axis=-2)[..., :-1, :]], axis=-2
    )
    reversed_comp = complement[..., ::-1, :]
    suffix = np.concatenate(
        [ones, np.cumprod(reversed_comp, axis=-2)[..., :-1, :]], axis=-2
    )[..., ::-1, :]
    return coverage * prefix * suffix


def incremental_coverage(coverage: np.ndarray) -> np.ndarray:
    """Sequential coverage gain ``c(S_{1:k}) - c(S_{1:k-1})`` per position.

    Equals the DCM diversity feature ``zeta`` and the greedy-oracle gain.
    """
    coverage = np.asarray(coverage, dtype=np.float64)
    complement = 1.0 - coverage
    ones_shape = list(complement.shape)
    ones_shape[-2] = 1
    prefix = np.concatenate(
        [np.ones(ones_shape), np.cumprod(complement, axis=-2)[..., :-1, :]],
        axis=-2,
    )
    return coverage * prefix


# ----------------------------------------------------------------------
# Alternative submodular diversity functions.  The paper (Sec. III-C)
# notes "the probabilistic coverage function can be replaced by other
# submodular diversity functions according to the objective of the
# recommendation scenario" — these are two standard choices.
# ----------------------------------------------------------------------


def saturating_coverage(coverage: np.ndarray) -> np.ndarray:
    """Exponentiated-sum coverage ``c_j(G) = 1 - exp(-sum_v tau_v^j)``.

    Monotone submodular (concave of a modular function); saturates more
    slowly than the probabilistic coverage, so repeated topics keep a
    little marginal value.
    """
    coverage = np.asarray(coverage, dtype=np.float64)
    return 1.0 - np.exp(-coverage.sum(axis=-2))


def log_coverage(coverage: np.ndarray) -> np.ndarray:
    """Logarithmic coverage ``c_j(G) = log(1 + sum_v tau_v^j)``.

    Unbounded but still monotone submodular; used when a list may usefully
    cover the same topic many times (e.g. a news feed with depth).
    """
    coverage = np.asarray(coverage, dtype=np.float64)
    return np.log1p(coverage.sum(axis=-2))


_COVERAGE_FUNCTIONS = {
    "probabilistic": probabilistic_coverage,
    "saturating": saturating_coverage,
    "log": log_coverage,
}


def incremental_gain(coverage: np.ndarray, kind: str = "probabilistic") -> np.ndarray:
    """Sequential marginal gain per position for any supported coverage.

    ``gain[k] = c(S_{1:k}) - c(S_{1:k-1})`` with ``c`` chosen by ``kind``
    (``probabilistic`` | ``saturating`` | ``log``).  The probabilistic case
    dispatches to the closed form of :func:`incremental_coverage`.
    """
    if kind not in _COVERAGE_FUNCTIONS:
        raise ValueError(
            f"unknown coverage kind {kind!r}; choose from "
            f"{sorted(_COVERAGE_FUNCTIONS)}"
        )
    if kind == "probabilistic":
        return incremental_coverage(coverage)
    coverage = np.asarray(coverage, dtype=np.float64)
    # Both alternatives are concave functions of the running coverage sum,
    # so all prefix values come from one cumulative sum — no per-position
    # re-evaluation of the coverage function over growing prefixes.
    cumulative = np.cumsum(coverage, axis=-2)
    if kind == "saturating":
        totals = 1.0 - np.exp(-cumulative)
    else:  # log
        totals = np.log1p(cumulative)
    gains = np.empty_like(totals)
    gains[..., :1, :] = totals[..., :1, :]
    gains[..., 1:, :] = totals[..., 1:, :] - totals[..., :-1, :]
    return gains
