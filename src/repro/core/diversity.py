"""Personalized diversity estimator (paper Sec. III-C).

Pipeline:

1. the user's behavior history arrives pre-split into per-topic sequences
   (``RerankBatch.topic_history_features``);
2. a (parameter-shared) LSTM encodes each topic sequence — the *intra-topic*
   interactions — and its final state ``t_j`` summarizes the user's interest
   in topic ``j``;
3. parameter-free self-attention over the stacked ``t_j`` captures
   *inter-topic* interactions (Eq. 2);
4. an MLP maps the attended matrix to the preference distribution
   ``theta_hat`` over topics (Eq. 3, softmax-normalized);
5. the marginal diversity ``d_R`` of each candidate (Eq. 5) is weighted
   elementwise by ``theta_hat`` to give the personalized diversity gain
   ``Delta_R`` (Eq. 6).

The RAPID-mean ablation replaces step 2 with mean pooling.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.batching import RerankBatch
from ..nn import Tensor, inference
from .coverage import incremental_gain, marginal_diversity

__all__ = ["PersonalizedDiversityEstimator"]


class PersonalizedDiversityEstimator(nn.Module):
    """Learns ``theta_hat`` from behavior history and emits ``Delta_R``.

    Parameters
    ----------
    user_dim, item_dim, num_topics:
        Feature dimensions.
    hidden:
        LSTM hidden size ``q_h``.
    aggregator:
        ``"lstm"`` (paper default) or ``"mean"`` (RAPID-mean ablation).
    marginal_mode:
        How the marginal diversity ``d_R`` of Eq. 5 is instantiated:
        ``"sequential"`` (default) — the incremental coverage gain of each
        item given the items ranked above it, matching the sequential
        greedy construction of the paper's theory section (Sec. V-A) and
        the DCM's diversity bonus; ``"leave_one_out"`` — the literal
        ``c(R) - c(R \\ {R(i)})`` of Eq. 5, which degenerates to ~0 when
        every topic is covered multiple times in the candidate list.
    """

    def __init__(
        self,
        user_dim: int,
        item_dim: int,
        num_topics: int,
        hidden: int = 16,
        aggregator: str = "lstm",
        marginal_mode: str = "sequential",
        coverage_kind: str = "probabilistic",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if aggregator not in ("lstm", "mean"):
            raise ValueError("aggregator must be 'lstm' or 'mean'")
        if marginal_mode not in ("sequential", "leave_one_out"):
            raise ValueError(
                "marginal_mode must be 'sequential' or 'leave_one_out'"
            )
        if marginal_mode == "leave_one_out" and coverage_kind != "probabilistic":
            raise ValueError(
                "leave_one_out marginal diversity is defined for the "
                "probabilistic coverage function only"
            )
        self.marginal_mode = marginal_mode
        self.coverage_kind = coverage_kind
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_topics = num_topics
        self.hidden = hidden
        self.aggregator = aggregator
        input_dim = user_dim + item_dim
        if aggregator == "lstm":
            self.topic_encoder = nn.LSTM(input_dim, hidden, rng=rng)
        else:
            self.topic_proj = nn.Linear(input_dim, hidden, rng=rng)
        self.inter_topic_attention = nn.SelfAttention()
        self.preference_mlp = nn.MLP(
            [num_topics * hidden, hidden, num_topics], activation="relu", rng=rng
        )

    # ------------------------------------------------------------------
    def preference_distribution(self, batch: RerankBatch) -> Tensor:
        """theta_hat (B, m): the user's learned topic preference distribution."""
        b, m, d, _ = batch.topic_history_features.shape
        user = np.broadcast_to(
            batch.user_features[:, None, None, :],
            (b, m, d, batch.user_features.shape[-1]),
        )  # view, not a copy — concatenate below materializes once
        sequences = Tensor(
            np.concatenate([user, batch.topic_history_features], axis=3)
        )
        flat = sequences.reshape(b * m, d, sequences.shape[-1])
        flat_mask = batch.topic_history_mask.reshape(b * m, d)
        if self.aggregator == "lstm":
            _, final = self.topic_encoder(flat, mask=flat_mask)
        else:
            projected = self.topic_proj(flat)
            weights = flat_mask.astype(np.float64)
            denom = np.maximum(weights.sum(axis=1, keepdims=True), 1.0)
            final = (projected * Tensor(weights[:, :, None])).sum(axis=1) * Tensor(
                1.0 / denom
            )
        topics = final.reshape(b, m, self.hidden)  # t_j stacked (Sec. III-C)
        attended = self.inter_topic_attention(topics)  # Eq. 2
        theta_logits = self.preference_mlp(attended.reshape(b, m * self.hidden))
        return theta_logits.softmax(axis=-1)  # Eq. 3

    def forward(self, batch: RerankBatch) -> Tensor:
        """Delta_R (B, L, m): personalized diversity gain of each candidate."""
        theta = self.preference_distribution(batch)
        if self.marginal_mode == "sequential":
            gains = incremental_gain(batch.coverage, kind=self.coverage_kind)
        else:
            gains = marginal_diversity(batch.coverage)  # Eq. 5, (B, L, m)
        return Tensor(gains) * theta.reshape(
            batch.batch_size, 1, self.num_topics
        )  # Eq. 6

    # ------------------------------------------------------------------
    # Tape-free inference twins (see repro.nn.inference).
    # ------------------------------------------------------------------
    def infer_preference(self, batch: RerankBatch) -> np.ndarray:
        """theta_hat (B, m) on raw arrays in the inference dtype."""
        dtype = inference.infer_dtype()
        b, m, d, _ = batch.topic_history_features.shape
        user = np.broadcast_to(
            batch.user_features[:, None, None, :],
            (b, m, d, batch.user_features.shape[-1]),
        )
        sequences = np.concatenate(
            [user, batch.topic_history_features], axis=3
        ).astype(dtype, copy=False)
        flat = sequences.reshape(b * m, d, sequences.shape[-1])
        flat_mask = batch.topic_history_mask.reshape(b * m, d)
        if self.aggregator == "lstm":
            _, final = self.topic_encoder.infer(flat, mask=flat_mask)
        else:
            projected = self.topic_proj.infer(flat)
            weights = flat_mask.astype(dtype)
            denom = np.maximum(weights.sum(axis=1, keepdims=True), dtype.type(1.0))
            final = (projected * weights[:, :, None]).sum(axis=1) / denom
        topics = final.reshape(b, m, self.hidden)
        attended = self.inter_topic_attention.infer(topics)
        theta_logits = self.preference_mlp.infer(
            attended.reshape(b, m * self.hidden)
        )
        return inference.softmax_nd(theta_logits, axis=-1)

    def infer(self, batch: RerankBatch) -> np.ndarray:
        """Delta_R (B, L, m) on raw arrays in the inference dtype."""
        theta = self.infer_preference(batch)
        if self.marginal_mode == "sequential":
            gains = incremental_gain(batch.coverage, kind=self.coverage_kind)
        else:
            gains = marginal_diversity(batch.coverage)
        return gains.astype(theta.dtype, copy=False) * theta[:, None, :]
