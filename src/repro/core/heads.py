"""Re-ranker output heads (paper Sec. III-D).

- :class:`DeterministicHead` — Eq. 7: an MLP over ``[H_R, Delta_R]`` emits
  the attraction probability of each item.
- :class:`ProbabilisticHead` — Eq. 8-10: separate mean and standard
  deviation MLPs; training samples scores with the VAE reparameterization
  trick, inference uses the upper confidence bound ``mu + sigma``.

Both heads work in logit space and squash with a sigmoid so the output is a
valid probability for the cross-entropy loss.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor, inference

__all__ = ["DeterministicHead", "ProbabilisticHead"]


class DeterministicHead(nn.Module):
    """Eq. 7: ``phi_R = sigmoid(MLP[H_R, Delta_R])``."""

    def __init__(
        self,
        input_dim: int,
        hidden: int = 16,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.score_mlp = nn.MLP([input_dim, hidden, 1], activation="relu", rng=rng)

    def forward(self, features: Tensor, rng: np.random.Generator | None = None) -> Tensor:
        """Return (B, L) attraction probabilities."""
        b, length, _ = features.shape
        return self.score_mlp(features).reshape(b, length).sigmoid()

    def inference_scores(self, features: Tensor) -> Tensor:
        """Scores used for ranking at inference; same as forward here."""
        return self.forward(features)

    def infer_scores(self, features: np.ndarray) -> np.ndarray:
        """Tape-free twin of :meth:`inference_scores` on raw arrays."""
        b, length, _ = features.shape
        return inference.sigmoid_nd(
            self.score_mlp.infer(features).reshape(b, length)
        )


class ProbabilisticHead(nn.Module):
    """Eq. 8-10: reparameterized score sampling + UCB inference.

    The standard-deviation branch uses ``softplus`` so ``Sigma > 0``; it
    doubles as the model's uncertainty / exploration bonus, mirroring
    LinUCB-style bandits (and the linear analysis of Sec. V-A).
    """

    def __init__(
        self,
        input_dim: int,
        hidden: int = 16,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.mean_mlp = nn.MLP([input_dim, hidden, 1], activation="relu", rng=rng)
        self.std_mlp = nn.MLP([input_dim, hidden, 1], activation="relu", rng=rng)

    def _mean_std(self, features: Tensor) -> tuple[Tensor, Tensor]:
        b, length, _ = features.shape
        mean = self.mean_mlp(features).reshape(b, length)
        raw = self.std_mlp(features).reshape(b, length)
        std = (1.0 + raw.exp()).log()  # softplus > 0
        return mean, std

    def forward(self, features: Tensor, rng: np.random.Generator | None = None) -> Tensor:
        """Training pass: sample ``phi = sigmoid(mu + xi * sigma)`` (Eq. 9)."""
        mean, std = self._mean_std(features)
        if self.training:
            rng = rng if rng is not None else np.random.default_rng(0)
            noise = rng.standard_normal(mean.shape)
            return (mean + Tensor(noise) * std).sigmoid()
        return mean.sigmoid()

    def inference_scores(self, features: Tensor) -> Tensor:
        """UCB scores ``sigmoid(mu + sigma)`` (Eq. 10)."""
        mean, std = self._mean_std(features)
        return (mean + std).sigmoid()

    def infer_scores(self, features: np.ndarray) -> np.ndarray:
        """Tape-free UCB scores on raw arrays (softplus mirrored exactly)."""
        b, length, _ = features.shape
        mean = self.mean_mlp.infer(features).reshape(b, length)
        raw = self.std_mlp.infer(features).reshape(b, length)
        std = np.log(np.exp(raw) + raw.dtype.type(1.0))
        return inference.sigmoid_nd(mean + std)
