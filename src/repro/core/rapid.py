"""RAPID — Re-ranking with personAlized dIversification (the full model).

Wires together the listwise relevance estimator (Sec. III-B), the
personalized diversity estimator (Sec. III-C), and a deterministic or
probabilistic re-ranker head (Sec. III-D).  Relevance and diversity are
fused by the head's MLP, so the relevance-diversity tradeoff is learned
end-to-end from clicks rather than set by a hyper-parameter.

The named variants of the ablation study (Sec. IV-E2) are exposed through
:class:`RapidConfig` / :func:`make_rapid_variant`:

================  ==========================================================
RAPID-pro         default: Bi-LSTM relevance, LSTM diversity, probabilistic
RAPID-det         probabilistic head -> deterministic head
RAPID-RNN         personalized diversity estimator removed
RAPID-mean        per-topic LSTM -> mean pooling
RAPID-trans       Bi-LSTM -> transformer encoder
================  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .. import nn
from ..data.batching import RerankBatch
from ..nn import Tensor, inference
from .diversity import PersonalizedDiversityEstimator
from .heads import DeterministicHead, ProbabilisticHead
from .relevance import ListwiseRelevanceEstimator

__all__ = ["RapidConfig", "RapidModel", "make_rapid_variant", "RAPID_VARIANTS"]


@dataclass(frozen=True)
class RapidConfig:
    """Architecture configuration for :class:`RapidModel`."""

    user_dim: int
    item_dim: int
    num_topics: int
    hidden: int = 16
    relevance_encoder: str = "bilstm"  # or "transformer"
    diversity_aggregator: str = "lstm"  # or "mean"
    marginal_mode: str = "sequential"  # or "leave_one_out" (literal Eq. 5)
    coverage_kind: str = "probabilistic"  # or "saturating" / "log"
    use_diversity: bool = True
    probabilistic: bool = True
    use_initial_scores: bool = True
    seed: int = 0


class RapidModel(nn.Module):
    """End-to-end RAPID scoring function ``F`` (paper Eq. 1)."""

    def __init__(self, config: RapidConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.relevance = ListwiseRelevanceEstimator(
            config.user_dim,
            config.item_dim,
            config.num_topics,
            hidden=config.hidden,
            encoder=config.relevance_encoder,
            use_initial_scores=config.use_initial_scores,
            rng=rng,
        )
        head_input = self.relevance.output_dim
        if config.use_diversity:
            self.diversity = PersonalizedDiversityEstimator(
                config.user_dim,
                config.item_dim,
                config.num_topics,
                hidden=config.hidden,
                aggregator=config.diversity_aggregator,
                marginal_mode=config.marginal_mode,
                coverage_kind=config.coverage_kind,
                rng=rng,
            )
            head_input += config.num_topics
        else:
            self.diversity = None
        head_cls = ProbabilisticHead if config.probabilistic else DeterministicHead
        self.head = head_cls(head_input, hidden=config.hidden, rng=rng)

    # ------------------------------------------------------------------
    def _fused_features(self, batch: RerankBatch) -> Tensor:
        """[H_R, Delta_R] — the head input of Eq. 7/8."""
        relevance = self.relevance(batch)
        if self.diversity is None:
            return relevance
        diversity = self.diversity(batch)
        return Tensor.concatenate([relevance, diversity], axis=2)

    def forward(
        self, batch: RerankBatch, rng: np.random.Generator | None = None
    ) -> Tensor:
        """Training-time attraction probabilities ``phi_R`` (B, L)."""
        return self.head(self._fused_features(batch), rng=rng)

    def _infer_features(self, batch: RerankBatch) -> np.ndarray:
        """Tape-free [H_R, Delta_R] in the inference dtype."""
        relevance = self.relevance.infer(batch)
        if self.diversity is None:
            return relevance
        diversity = self.diversity.infer(batch)
        return np.concatenate(
            [relevance, diversity.astype(relevance.dtype, copy=False)], axis=2
        )

    def inference_scores(self, batch: RerankBatch) -> np.ndarray:
        """Ranking scores at inference (UCB for the probabilistic head).

        Dispatches to the tape-free float32 path (``repro.nn.inference``)
        unless ``REPRO_NN_INFER=0``; scores always come back float64.
        """
        if inference.infer_enabled():
            scores = self.head.infer_scores(self._infer_features(batch))
            return scores.astype(np.float64, copy=False)
        was_training = self.training
        self.eval()
        try:
            with nn.no_grad():
                scores = self.head.inference_scores(self._fused_features(batch))
        finally:
            self.train(was_training)
        return scores.numpy()

    def preference_distribution(self, batch: RerankBatch) -> np.ndarray:
        """theta_hat for inspection / the case study (Fig. 5)."""
        if self.diversity is None:
            raise RuntimeError("this variant has no diversity estimator")
        with nn.no_grad():
            return self.diversity.preference_distribution(batch).numpy()

    # ------------------------------------------------------------------
    # Greedy sequential inference (extension).
    #
    # The theory section (Sec. V-A) analyzes RAPID as a *greedy* list
    # constructor: each position picks the item with the best score given
    # the items already placed.  The deep model's default inference sorts
    # by a single forward pass instead; this method implements the greedy
    # construction by recomputing each candidate's personalized diversity
    # gain against the already-selected prefix.  The expensive encoders
    # (Bi-LSTM relevance H_R, preference theta_hat) run once; only the
    # cheap head is re-evaluated per step.
    # ------------------------------------------------------------------
    def greedy_rerank(self, batch: RerankBatch) -> np.ndarray:
        """(B, L) permutations built by greedy submodular selection."""
        if self.diversity is None:
            raise RuntimeError(
                "greedy inference needs the personalized diversity estimator"
            )
        use_infer = inference.infer_enabled()
        if use_infer:
            relevance = self.relevance.infer(batch)
            theta = self.diversity.infer_preference(batch).astype(
                np.float64, copy=False
            )
        else:
            was_training = self.training
            self.eval()
            try:
                with nn.no_grad():
                    relevance = self.relevance(batch).numpy()
                    theta = self.diversity.preference_distribution(batch).numpy()
            finally:
                self.train(was_training)

        batch_size, length, _ = relevance.shape
        m = self.config.num_topics
        # All rows advance in lockstep: at step k every still-active row
        # holds k chosen items, so one batched head evaluation per position
        # replaces the per-row per-step Python loop.  The head scores each
        # item independently, so scoring the full (B, L) list and masking
        # out unavailable items reproduces the per-row remaining-set scores
        # exactly (ties break toward the lowest index in both versions).
        permutations = np.empty((batch_size, length), dtype=np.int64)
        available = batch.mask.copy()
        prefix_complement = np.ones((batch_size, m))
        valid_counts = available.sum(axis=1)
        for position in range(length):
            active = available.any(axis=1)
            if not active.any():
                break
            delta = (
                batch.coverage
                * prefix_complement[:, None, :]
                * theta[:, None, :]
            )
            if use_infer:
                scores = self.head.infer_scores(
                    np.concatenate(
                        [relevance, delta.astype(relevance.dtype, copy=False)],
                        axis=2,
                    )
                )
            else:
                features = Tensor(np.concatenate([relevance, delta], axis=2))
                with nn.no_grad():
                    scores = self.head.inference_scores(features).numpy()
            scores = np.where(available, scores, -np.inf)
            picks = scores.argmax(axis=1)
            rows = np.flatnonzero(active)
            permutations[rows, position] = picks[rows]
            available[rows, picks[rows]] = False
            prefix_complement[rows] *= 1.0 - batch.coverage[rows, picks[rows]]
        for row in range(batch_size):
            invalid = np.flatnonzero(~batch.mask[row])
            permutations[row, valid_counts[row] :] = invalid
        return permutations


RAPID_VARIANTS: dict[str, dict] = {
    "rapid-pro": {},
    "rapid-det": {"probabilistic": False},
    "rapid-rnn": {"use_diversity": False},
    "rapid-mean": {"diversity_aggregator": "mean"},
    "rapid-trans": {"relevance_encoder": "transformer"},
}


def make_rapid_variant(name: str, base: RapidConfig) -> RapidModel:
    """Build one of the paper's named variants from a base configuration."""
    key = name.lower()
    if key not in RAPID_VARIANTS:
        raise ValueError(f"unknown variant {name!r}; choose from {sorted(RAPID_VARIANTS)}")
    return RapidModel(replace(base, **RAPID_VARIANTS[key]))
