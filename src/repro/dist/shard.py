"""Sharded synthetic-population generation with a resumable manifest.

:class:`~repro.data.synthetic.SyntheticWorld` builds every user in one
process and one RNG stream — fine for benchmarks, impossible for a
multi-million-user population.  This module splits the *user* axis into
independent shards:

- the **item world** (centroids, latents, coverage) is a deterministic
  function of the world seed alone — every shard derives the identical
  item universe, because items are drawn *before* users in the world's
  RNG stream;
- each **user shard** draws its block from its own
  ``SeedSequence([seed, _USER_STREAM, shard_index])`` generator, with the
  user-feature projection shared from ``SeedSequence([seed, _PROJ_STREAM])``.
  Shard contents therefore depend only on ``(config, shard_index)`` —
  never on which worker produced them, how often that worker was killed,
  or generation order — which is what makes kill-and-resume sound.

The sharded population is statistically identical to (but numerically a
different draw than) the single-process world: the per-block generator
math mirrors ``SyntheticWorld._build_users`` exactly, but the draws come
from per-shard streams.

Durability: each shard archive is written through
:func:`~repro.utils.atomicio.atomic_savez` (temp + rename) with a SHA-256
sidecar, behind the ``dist.shard.write`` fault point and a retried
:func:`~repro.resilience.retry.call_with_retry` (transient ``OSError``
absorbed).  ``manifest.json`` lists every shard with its digest;
:func:`generate_shards` skips shards that already verify, so a killed
generation run resumes from where it died, and :func:`load_population`
refuses corrupt shards with a classified :class:`DistError`.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..data.schema import Population
from ..data.synthetic import SyntheticWorld, WorldConfig
from ..resilience.chaos import faultpoint
from ..resilience.retry import DEFAULT_IO_POLICY, call_with_retry
from ..utils.atomicio import atomic_savez, atomic_write_bytes, verify_checksum_sidecar
from .supervisor import DistError, WorkerPool

__all__ = [
    "ShardPlan",
    "shard_path",
    "manifest_path",
    "generate_shard",
    "generate_shards",
    "load_population",
]

# Distinct SeedSequence stream keys so shard draws can never collide with
# the world's own generator or with each other.
_USER_STREAM = 7919
_PROJ_STREAM = 7920

_MANIFEST_VERSION = 1


@dataclass(frozen=True)
class ShardPlan:
    """How one synthetic population splits into shards.

    ``world.num_users`` is the *total* population; shard ``i`` owns the
    contiguous user block ``[offset_i, offset_i + size_i)`` with the first
    ``num_users % num_shards`` shards one user larger.
    """

    world: WorldConfig
    num_shards: int = 4

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.world.num_users < self.num_shards:
            raise ValueError("need at least one user per shard")

    def shard_sizes(self) -> list[int]:
        base, remainder = divmod(self.world.num_users, self.num_shards)
        return [base + (1 if i < remainder else 0) for i in range(self.num_shards)]

    def shard_offsets(self) -> list[int]:
        offsets, total = [], 0
        for size in self.shard_sizes():
            offsets.append(total)
            total += size
        return offsets


def shard_path(directory: str | Path, index: int) -> Path:
    return Path(directory) / f"shard_{index:04d}.npz"


def manifest_path(directory: str | Path) -> Path:
    return Path(directory) / "manifest.json"


def _item_world(config: WorldConfig) -> SyntheticWorld:
    """The shared item universe every shard derives identically.

    Items are drawn before users in ``SyntheticWorld``'s single stream, so
    a one-user world has bit-identical item latents/coverage to the full
    world — we pay one tiny user block to reuse the item builder verbatim
    instead of forking its RNG discipline.
    """
    return SyntheticWorld(dataclasses.replace(config, num_users=1))


def _user_projection(config: WorldConfig) -> np.ndarray:
    rng = np.random.default_rng(
        np.random.SeedSequence([config.seed, _PROJ_STREAM])
    )
    return rng.normal(
        0.0, 1.0, size=(config.latent_dim, config.user_feature_dim)
    ) / np.sqrt(config.latent_dim)


def _build_user_block(
    config: WorldConfig, index: int, size: int, world: SyntheticWorld
) -> dict[str, np.ndarray]:
    """One shard's user arrays — ``SyntheticWorld._build_users`` math on a
    shard-local generator (same draw order: concentration → dirichlet →
    latent noise → feature noise)."""
    rng = np.random.default_rng(
        np.random.SeedSequence([config.seed, _USER_STREAM, index])
    )
    log_low = np.log(config.concentration_low)
    log_high = np.log(config.concentration_high)
    concentration = np.exp(rng.uniform(log_low, log_high, size=size))
    theta = np.vstack(
        [rng.dirichlet(np.full(config.num_topics, c)) for c in concentration]
    )
    centroids = np.vstack(
        [
            world.item_latent[world.item_topic_assignment == j].mean(axis=0)
            for j in range(config.num_topics)
        ]
    )
    latent = theta @ centroids + rng.normal(0.0, 0.3, size=(size, config.latent_dim))
    entropy = -(theta * np.log(theta + 1e-12)).sum(axis=1)
    breadth = entropy / np.log(config.num_topics)
    rho = np.clip(
        (0.2 + 0.8 * breadth)[:, None] * theta * config.num_topics, 0.0, 1.0
    )
    features = latent @ _user_projection(config) + rng.normal(
        0.0, config.feature_noise, size=(size, config.user_feature_dim)
    )
    return {
        "features": features,
        "topic_preference": theta,
        "diversity_weight": rho,
        "latent": latent,
    }


def generate_shard(
    plan: ShardPlan,
    index: int,
    directory: str | Path,
    sleep=time.sleep,
) -> Path:
    """Generate shard ``index`` and write its archive + checksum sidecar.

    Pure function of ``(plan.world, index)``; memory use is one user
    block, never the whole population.  The write sits behind the
    ``dist.shard.write`` fault point and is retried under the transient-IO
    policy.
    """
    if not 0 <= index < plan.num_shards:
        raise ValueError(f"shard index {index} outside [0, {plan.num_shards})")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    world = _item_world(plan.world)
    size = plan.shard_sizes()[index]
    arrays = _build_user_block(plan.world, index, size, world)
    arrays["meta/index"] = np.array(index, dtype=np.int64)
    arrays["meta/size"] = np.array(size, dtype=np.int64)
    arrays["meta/seed"] = np.array(plan.world.seed, dtype=np.int64)
    arrays["meta/num_shards"] = np.array(plan.num_shards, dtype=np.int64)
    path = shard_path(directory, index)

    def write() -> Path:
        faultpoint("dist.shard.write")
        return atomic_savez(path, arrays, fsync=False, checksum=True)

    return call_with_retry(
        write, policy=DEFAULT_IO_POLICY, site="dist.shard.write", sleep=sleep
    )


def _shard_valid(plan: ShardPlan, index: int, directory: Path) -> bool:
    """True when shard ``index`` is on disk, verified, and matches the plan."""
    path = shard_path(directory, index)
    if not path.exists() or verify_checksum_sidecar(path) is not True:
        return False
    try:
        with np.load(path, allow_pickle=False) as archive:
            return (
                int(archive["meta/index"]) == index
                and int(archive["meta/seed"]) == plan.world.seed
                and int(archive["meta/num_shards"]) == plan.num_shards
                and int(archive["meta/size"]) == plan.shard_sizes()[index]
            )
    except (OSError, ValueError, KeyError, EOFError):
        return False


def _sidecar_digest(path: Path) -> str:
    from ..utils.atomicio import checksum_sidecar_path

    return checksum_sidecar_path(path).read_text().split()[0]


def _generate_shard_task(payload) -> int:
    """WorkerPool task body: build one shard, return its index."""
    plan, index, directory = payload
    generate_shard(plan, index, directory)
    return index


def generate_shards(
    directory: str | Path,
    plan: ShardPlan,
    pool: WorkerPool | None = None,
    sleep=time.sleep,
) -> dict:
    """Generate every missing/invalid shard and (re)write the manifest.

    Shards that already verify are left untouched — a generation run
    killed after shard ``k`` resumes by producing only ``k+1..S-1``.  With
    ``pool`` given, outstanding shards are farmed to its workers (deaths
    requeue, budgets degrade — see :class:`~repro.dist.supervisor.WorkerPool`);
    otherwise they run serially.  Returns the manifest dict.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    outstanding = [
        index
        for index in range(plan.num_shards)
        if not _shard_valid(plan, index, directory)
    ]
    if outstanding:
        if pool is not None:
            pool.run([(plan, index, str(directory)) for index in outstanding])
        else:
            for index in outstanding:
                generate_shard(plan, index, directory, sleep=sleep)
    entries = []
    for index in range(plan.num_shards):
        path = shard_path(directory, index)
        entries.append(
            {
                "index": index,
                "path": path.name,
                "users": plan.shard_sizes()[index],
                "offset": plan.shard_offsets()[index],
                "sha256": _sidecar_digest(path),
            }
        )
    manifest = {
        "version": _MANIFEST_VERSION,
        "seed": plan.world.seed,
        "num_shards": plan.num_shards,
        "num_users": plan.world.num_users,
        "generated": len(outstanding),
        "shards": entries,
    }
    atomic_write_bytes(
        manifest_path(directory),
        json.dumps(manifest, indent=1).encode("utf-8"),
        fsync=False,
    )
    return manifest


def load_population(directory: str | Path) -> Population:
    """Reassemble the full population from a shard directory.

    Every shard is checksum-verified before loading; a missing or corrupt
    shard raises :class:`DistError` naming it (rerun
    :func:`generate_shards` to repair).  Shards concatenate in index
    order, so user ``i`` of shard ``s`` lands at global row
    ``offset_s + i``.
    """
    directory = Path(directory)
    path = manifest_path(directory)
    if not path.exists():
        raise DistError(f"no shard manifest at {path}")
    manifest = json.loads(path.read_text())
    parts: list[Population] = []
    for entry in sorted(manifest["shards"], key=lambda e: e["index"]):
        archive_path = directory / entry["path"]
        if not archive_path.exists() or verify_checksum_sidecar(archive_path) is not True:
            raise DistError(
                f"shard {entry['index']} at {archive_path} is missing or "
                "corrupt; rerun generate_shards to repair it"
            )
        with np.load(archive_path, allow_pickle=False) as archive:
            parts.append(
                Population(
                    features=archive["features"],
                    topic_preference=archive["topic_preference"],
                    diversity_weight=archive["diversity_weight"],
                    latent=archive["latent"],
                )
            )
    return Population.concat(parts)
