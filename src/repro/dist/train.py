"""Data-parallel RAPID training with bit-identical kill-and-rejoin.

Replication discipline (DESIGN.md §12). ``W`` workers hold identical
model replicas; each training step is lockstep:

1. every live worker runs :func:`~repro.core.trainer.backward_batch` on
   its own shard's next batch and ships ``(grads, loss, count)`` to the
   parent (``count`` = observed training positions, the BCE weight sum);
2. the parent computes the count-weighted average in **rank order** —
   ``sum_r(grad_r * count_r) / sum_r(count_r)`` — which is exactly the
   gradient the concatenated batch would produce, because the pointwise
   BCE divides by the weight sum;
3. the averaged gradient goes back to every worker, and every replica —
   plus the **parent replica** — applies the identical
   :func:`~repro.core.trainer.apply_step` (clip + Adam).  Same floats,
   same op order ⇒ replicas can never drift, bit for bit.

The parent replica is the linchpin of fault tolerance: it is always in
the post-step-``s-1`` state while step ``s`` is in flight, so a killed
worker's replacement simply **adopts** the parent's model + Adam state
and recomputes its step-``s`` gradient — bit-identical to what the dead
worker would have sent, because all per-step randomness is *stateless*:
the noise generator for ``(rank, epoch, step)`` is derived fresh from
``SeedSequence([seed+1, 101+rank, epoch, step])`` and batch order is a
pure function of ``(seed, epoch, rank)``.  No mutable RNG state ever
needs to survive a SIGKILL.

Kill delivery at the ``dist.worker.step`` fault point:

- **worker-side** (``DistTrainConfig.worker_chaos``, armed only in a
  worker's first incarnation): the worker SIGKILLs itself at the top of a
  step, before contributing — the replacement recomputes that step, so
  the run's arithmetic is untouched;
- **parent-side** (a plan armed in the parent process,
  :func:`~repro.resilience.chaos.faultpoint_signal` per gradient
  message): the parent SIGKILLs the sender *after* banking its
  contribution — again arithmetic-neutral, and ``plan.fires()`` stays in
  the parent where tests can audit it against ``dist.worker_restarts``.

Either way the loss curve is bit-identical to the uninterrupted run.
Only **degradation** (a slot's restart budget exhausted → averaging over
the survivors) changes the math, and that is announced with a
``dist.degraded`` run-log event.

The ``"inline"`` backend executes the same arithmetic single-process (one
model, per-rank backwards in rank order, one averaged apply) and is
bitwise-equal to the ``"process"`` backend — it is both the parity oracle
for the chaos tests and the near-zero-overhead path benchmarked against
plain :func:`~repro.core.trainer.train_rapid`.

Checkpoints: the parent writes per-rank directories
(``rank000/ ...``) every epoch through the PR 5 format, with per-worker
identity (rank, world size, seed) in the ``extra`` arrays; resume loads
the newest epoch *common to every rank* and restarts the fleet from
there.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
from dataclasses import dataclass, field
from math import ceil
from multiprocessing.connection import wait as _mp_wait
from pathlib import Path
from typing import Sequence

import numpy as np

from .. import nn
from ..core.trainer import TrainConfig, apply_step, backward_batch
from ..data.batching import iterate_batches
from ..data.schema import Catalog, Population, RankingRequest
from ..obs import get_registry, get_run_logger, trace
from ..obs.context import (
    TraceContext,
    current_context,
    merge_span_records,
    span_records,
    span_tree_records,
    use_context,
)
from ..obs.tracing import reset_tracer
from ..resilience.chaos import ChaosPlan, FaultSpec, clear_chaos, faultpoint, faultpoint_signal, install_chaos
from ..resilience.checkpoint import (
    CheckpointConfig,
    CheckpointManager,
    TrainingCheckpoint,
)
from .supervisor import DistError, RestartPolicy, SupervisorCore, picklable_error

__all__ = [
    "DistTrainConfig",
    "DistTrainResult",
    "train_dist",
    "shard_requests",
    "average_contributions",
]


@dataclass(frozen=True)
class DistTrainConfig:
    """Fleet shape and fault-tolerance knobs for :func:`train_dist`."""

    world_size: int = 2
    backend: str = "process"  # "process" | "inline"
    restart: RestartPolicy = field(default_factory=RestartPolicy)
    checkpoint: CheckpointConfig | None = None
    #: ``(rank, FaultSpec)`` pairs armed inside that worker's *first*
    #: incarnation only (replacements never re-arm, or a ``times=1`` kill
    #: would fire once per incarnation and eat the restart budget).
    worker_chaos: tuple = ()
    poll_s: float = 0.02
    done_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ValueError("world_size must be >= 1")
        if self.backend not in ("process", "inline"):
            raise ValueError("backend must be 'process' or 'inline'")
        for entry in self.worker_chaos:
            rank, spec = entry
            if not (0 <= rank < self.world_size and isinstance(spec, FaultSpec)):
                raise ValueError(
                    "worker_chaos entries must be (rank, FaultSpec) pairs "
                    "with rank inside the fleet"
                )


@dataclass
class DistTrainResult:
    """What one data-parallel run produced."""

    losses: list[float]
    restarts: int = 0
    degraded: list[int] = field(default_factory=list)
    span_records: list[dict] = field(default_factory=list)


# ----------------------------------------------------------------------
# Deterministic sharding and randomness
# ----------------------------------------------------------------------
def shard_requests(
    requests: Sequence[RankingRequest], world_size: int
) -> list[list[RankingRequest]]:
    """Round-robin request shards: request ``i`` belongs to rank ``i % W``."""
    if len(requests) < world_size:
        raise DistError(
            f"{len(requests)} request(s) cannot feed {world_size} worker(s)"
        )
    return [list(requests[rank::world_size]) for rank in range(world_size)]


def _epoch_seed(seed: int, epoch: int, rank: int) -> int:
    return int(
        np.random.SeedSequence([seed, 17, epoch, rank]).generate_state(1)[0]
    )


def _step_rng(seed: int, epoch: int, step: int, rank: int) -> np.random.Generator:
    """The stateless per-step noise generator (see module docs)."""
    return np.random.default_rng(
        np.random.SeedSequence([seed + 1, 101 + rank, epoch, step])
    )


def _steps_per_epoch(shards, batch_size: int) -> int:
    """Lockstep step count: the *shortest* shard's batch count.

    Fixed for the whole job, so degradation mid-run never changes how many
    steps an epoch has (survivors always own at least this many batches).
    Trailing batches of longer shards are dropped, mirroring
    drop-last-style data parallelism.
    """
    return min(ceil(len(shard) / batch_size) for shard in shards)


def _rank_batches(shard, catalog, population, histories, config, epoch, rank):
    return list(
        iterate_batches(
            shard,
            catalog,
            population,
            histories,
            batch_size=config.batch_size,
            shuffle=True,
            seed=_epoch_seed(config.seed, epoch, rank),
            topic_history_length=config.topic_history_length,
            flat_history_length=config.flat_history_length,
        )
    )


def _collect_grads(model) -> list[np.ndarray]:
    return [
        param.grad.copy()
        if param.grad is not None
        else np.zeros_like(param.data, dtype=np.float64)
        for param in model.parameters()
    ]


def average_contributions(contribs):
    """Count-weighted gradient/loss average, summed in rank order.

    ``contribs`` is a rank-sorted list of ``(rank, grads, loss, count)``.
    Both backends call this exact function, so the floating-point
    reduction order — the thing bitwise parity hinges on — is shared by
    construction.
    """
    total = float(sum(c[3] for c in contribs))
    first = contribs[0]
    averaged = []
    for i in range(len(first[1])):
        acc = first[1][i] * float(first[3])
        for c in contribs[1:]:
            acc = acc + c[1][i] * float(c[3])
        averaged.append(acc / total)
    loss = sum(c[2] * float(c[3]) for c in contribs) / total
    return averaged, loss


# ----------------------------------------------------------------------
# Checkpointing (per-rank directories, parent-written)
# ----------------------------------------------------------------------
def _rank_managers(dist: DistTrainConfig) -> "list[CheckpointManager] | None":
    if dist.checkpoint is None:
        return None
    base = Path(dist.checkpoint.directory)
    return [
        CheckpointManager(
            CheckpointConfig(
                directory=base / f"rank{rank:03d}",
                every_epochs=dist.checkpoint.every_epochs,
                keep_last=dist.checkpoint.keep_last,
                fsync=dist.checkpoint.fsync,
            )
        )
        for rank in range(dist.world_size)
    ]


def _save_rank_checkpoints(
    managers, model, optimizer, epoch, losses, config, dist
) -> None:
    for rank, manager in enumerate(managers):
        if manager.should_save(epoch):
            manager.save(
                model=model,
                optimizer=optimizer,
                epoch=epoch,
                losses=losses,
                extra={
                    "rank": np.array(rank, dtype=np.int64),
                    "world_size": np.array(dist.world_size, dtype=np.int64),
                    "seed": np.array(config.seed, dtype=np.int64),
                },
            )


def _resume_common(managers) -> "TrainingCheckpoint | None":
    """The newest checkpoint epoch intact on *every* rank (or None).

    Replica states are identical across ranks, so any rank's archive at
    the common epoch restores the whole fleet; the per-rank copies exist
    to survive the loss of any one directory.
    """
    found = []
    for manager in managers:
        latest = manager.latest()
        if latest is None:
            return None
        found.append(latest)
    epoch = min(ckpt.epoch for _, ckpt in found)
    for _, ckpt in found:
        if ckpt.epoch == epoch:
            return ckpt
    return None  # pragma: no cover - min() guarantees a match above


# ----------------------------------------------------------------------
# Inline backend: the single-process parity oracle
# ----------------------------------------------------------------------
def _train_inline(
    model, shards, catalog, population, histories, config, dist, logger
) -> DistTrainResult:
    optimizer = nn.Adam(
        model.parameters(), lr=config.lr, weight_decay=config.weight_decay
    )
    losses: list[float] = []
    start_epoch = 0
    managers = _rank_managers(dist)
    if managers is not None:
        restored = _resume_common(managers)
        if restored is not None:
            model.load_state_dict(restored.model_state)
            optimizer.load_state_dict(restored.optimizer_state)
            losses = list(restored.losses)
            start_epoch = restored.epoch + 1
            logger.log("dist.resume", epoch=restored.epoch, backend="inline")
    model.train()
    steps = _steps_per_epoch(shards, config.batch_size)
    step_counter = get_registry().counter("dist.steps")
    for epoch in range(start_epoch, config.epochs):
        batches = [
            _rank_batches(shard, catalog, population, histories, config, epoch, rank)
            for rank, shard in enumerate(shards)
        ]
        step_losses = []
        for step in range(steps):
            contribs = []
            for rank in range(dist.world_size):
                faultpoint("dist.worker.step")
                loss, count = backward_batch(
                    model,
                    optimizer,
                    batches[rank][step],
                    _step_rng(config.seed, epoch, step, rank),
                )
                contribs.append((rank, _collect_grads(model), float(loss.item()), count))
            averaged, step_loss = average_contributions(contribs)
            apply_step(model, optimizer, config.grad_clip, grads=averaged)
            step_counter.inc()
            step_losses.append(step_loss)
        mean_loss = float(np.mean(step_losses))
        losses.append(mean_loss)
        logger.log("dist.epoch", epoch=epoch, loss=mean_loss, backend="inline")
        if managers is not None:
            _save_rank_checkpoints(
                managers, model, optimizer, epoch, losses, config, dist
            )
    return DistTrainResult(losses=losses)


# ----------------------------------------------------------------------
# Process backend: supervised worker fleet
# ----------------------------------------------------------------------
def _train_worker_main(
    conn,
    rank,
    shard,
    catalog,
    population,
    histories,
    config,
    steps,
    model,
    ctx_dict,
    chaos_specs,
) -> None:
    """One training worker: adopt state, then lockstep grad/update rounds."""
    clear_chaos()
    # Fork inherits the parent's tracer — finished roots *and* the still-open
    # ``dist.train`` span stack.  Without a reset the worker's root span
    # would nest under that inherited (never-popped) span and be lost.
    reset_tracer()
    if chaos_specs:
        install_chaos(ChaosPlan(list(chaos_specs), seed=config.seed + rank))
    context = TraceContext.from_dict(ctx_dict) if ctx_dict else None
    try:
        optimizer = nn.Adam(
            model.parameters(), lr=config.lr, weight_decay=config.weight_decay
        )
        model.train()
        _, model_state, optimizer_state, epoch, step = conn.recv()  # "adopt"
        model.load_state_dict(model_state)
        if optimizer_state is not None:
            optimizer.load_state_dict(optimizer_state)
        with use_context(context):
            with trace(f"dist.worker:{rank}"):
                while epoch < config.epochs:
                    batches = _rank_batches(
                        shard, catalog, population, histories, config, epoch, rank
                    )
                    for current in range(step, steps):
                        faultpoint("dist.worker.step")
                        with trace("dist.step"):
                            loss, count = backward_batch(
                                model,
                                optimizer,
                                batches[current],
                                _step_rng(config.seed, epoch, current, rank),
                            )
                        conn.send(
                            (
                                "grad",
                                rank,
                                epoch,
                                current,
                                _collect_grads(model),
                                float(loss.item()),
                                count,
                            )
                        )
                        reply = conn.recv()  # ("update", averaged_grads)
                        apply_step(model, optimizer, config.grad_clip, grads=reply[1])
                    step = 0
                    epoch += 1
        # the worker root just popped, so the freshly-reset tracer holds
        # exactly this incarnation's finished tree
        conn.send(("done", rank, span_records()))
    except (EOFError, BrokenPipeError, OSError, KeyboardInterrupt):
        pass  # parent gone or shutting down: die quietly
    except BaseException as error:  # noqa: BLE001 - classified by the parent
        try:
            conn.send(("error", rank, picklable_error(error)))
        except (BrokenPipeError, OSError):
            pass


class _Fleet:
    """Parent-side worker bookkeeping for the process backend."""

    def __init__(self, dist, spawn_args, sleep=time.sleep):
        self.dist = dist
        self.core = SupervisorCore(dist.world_size, dist.restart)
        self.spawn_args = spawn_args  # per-rank tuples, minus conn + chaos
        self.ctx = mp.get_context("fork")
        self.conns: dict[int, object] = {}
        self.procs: dict[int, object] = {}
        self.incarnation = {rank: 0 for rank in range(dist.world_size)}
        self.worker_chaos: dict[int, list[FaultSpec]] = {}
        for rank, spec in dist.worker_chaos:
            self.worker_chaos.setdefault(rank, []).append(spec)
        self.spans: list[dict] = []
        self._sleep = sleep

    def spawn(self, rank, model_state, optimizer_state, epoch, step) -> None:
        first = self.incarnation[rank] == 0
        specs = self.worker_chaos.get(rank, []) if first else []
        self.incarnation[rank] += 1
        parent_conn, child_conn = self.ctx.Pipe()
        args = self.spawn_args(rank)
        process = self.ctx.Process(
            target=_train_worker_main,
            args=(child_conn, *args, specs),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.conns[rank] = parent_conn
        self.procs[rank] = process
        parent_conn.send(("adopt", model_state, optimizer_state, epoch, step))

    def kill(self, rank) -> None:
        process = self.procs.get(rank)
        if process is not None and process.is_alive():
            os.kill(process.pid, signal.SIGKILL)
            process.join()

    def reap(self, rank) -> None:
        conn = self.conns.pop(rank, None)
        if conn is not None:
            conn.close()
        process = self.procs.pop(rank, None)
        if process is not None:
            process.join(timeout=5.0)

    def handle_death(self, rank, model, optimizer, epoch, step) -> str:
        """Restart (adopting the parent replica at ``(epoch, step)``) or degrade."""
        self.reap(rank)
        decision = self.core.on_death(rank)
        if decision.action == "restart":
            if decision.delay > 0:
                self._sleep(decision.delay)
            self.spawn(
                rank, model.state_dict(), optimizer.state_dict(), epoch, step
            )
        return decision.action

    def send_update(self, rank, averaged) -> None:
        try:
            self.conns[rank].send(("update", averaged))
        except (BrokenPipeError, OSError, KeyError):
            pass  # death is picked up by the next collection round

    def absorb_spans(self, records) -> None:
        self.spans.extend(records or ())

    def shutdown(self) -> None:
        for rank in list(self.procs):
            self.kill(rank)
            self.reap(rank)


def _train_process(
    model, shards, catalog, population, histories, config, dist, logger
) -> DistTrainResult:
    optimizer = nn.Adam(
        model.parameters(), lr=config.lr, weight_decay=config.weight_decay
    )
    losses: list[float] = []
    start_epoch = 0
    managers = _rank_managers(dist)
    if managers is not None:
        restored = _resume_common(managers)
        if restored is not None:
            model.load_state_dict(restored.model_state)
            optimizer.load_state_dict(restored.optimizer_state)
            losses = list(restored.losses)
            start_epoch = restored.epoch + 1
            logger.log("dist.resume", epoch=restored.epoch, backend="process")
    model.train()
    steps = _steps_per_epoch(shards, config.batch_size)
    step_counter = get_registry().counter("dist.steps")
    context = current_context()
    ctx_dict = context.to_dict() if context is not None else None

    def spawn_args(rank):
        return (
            rank,
            shards[rank],
            catalog,
            population,
            histories,
            config,
            steps,
            model,
            ctx_dict,
        )

    fleet = _Fleet(dist, spawn_args)
    try:
        for rank in sorted(fleet.core.live):
            fleet.spawn(
                rank, model.state_dict(), optimizer.state_dict(), start_epoch, 0
            )
        for epoch in range(start_epoch, config.epochs):
            step_losses = []
            for step in range(steps):
                contribs, killed_after = _collect_step(
                    fleet, model, optimizer, epoch, step, dist
                )
                averaged, step_loss = average_contributions(
                    [contribs[rank] for rank in sorted(contribs)]
                )
                apply_step(model, optimizer, config.grad_clip, grads=averaged)
                step_counter.inc()
                step_losses.append(step_loss)
                for rank in sorted(fleet.core.live):
                    if rank not in killed_after:
                        fleet.send_update(rank, averaged)
                # Parent-side kills banked their contribution; the
                # replacement resumes at the *next* position, post-update.
                for rank in killed_after:
                    next_epoch, next_step = (
                        (epoch, step + 1) if step + 1 < steps else (epoch + 1, 0)
                    )
                    fleet.handle_death(rank, model, optimizer, next_epoch, next_step)
            mean_loss = float(np.mean(step_losses))
            losses.append(mean_loss)
            logger.log(
                "dist.epoch",
                epoch=epoch,
                loss=mean_loss,
                backend="process",
                live_workers=len(fleet.core.live),
            )
            if managers is not None:
                _save_rank_checkpoints(
                    managers, model, optimizer, epoch, losses, config, dist
                )
        _drain_done(fleet, dist)
        return DistTrainResult(
            losses=losses,
            restarts=fleet.core.total_restarts,
            degraded=sorted(fleet.core.removed),
            span_records=list(fleet.spans),
        )
    finally:
        fleet.shutdown()


def _collect_step(fleet, model, optimizer, epoch, step, dist):
    """Gather one full round of gradient contributions (see module docs).

    Blocks until every live worker has contributed for ``(epoch, step)``,
    restarting or degrading dead workers along the way.  Returns the
    contributions plus the set of ranks killed *after* contributing
    (parent-side chaos), whose replacements must adopt the post-step
    state.
    """
    contribs: dict[int, tuple] = {}
    killed_after: set[int] = set()
    pending = set(fleet.core.live)
    while pending:
        if not fleet.core.live:
            raise DistError(
                f"every training worker is gone at epoch {epoch} step {step}"
            )
        progressed = False
        for rank in sorted(pending):
            conn = fleet.conns.get(rank)
            if conn is None:
                pending.discard(rank)
                continue
            message = None
            if conn.poll(0):
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # EOF: the channel is finished (an EOF'd pipe stays
                    # poll-ready forever, so the is-alive check below would
                    # never trigger) — the worker is gone.
                    fleet.kill(rank)
                    action = fleet.handle_death(rank, model, optimizer, epoch, step)
                    if action == "degrade":
                        pending.discard(rank)
                    progressed = True
                    continue
            if message is None:
                process = fleet.procs.get(rank)
                if (
                    process is not None
                    and not process.is_alive()
                    and not conn.poll(0)
                ):
                    action = fleet.handle_death(rank, model, optimizer, epoch, step)
                    if action == "degrade":
                        pending.discard(rank)
                    progressed = True
                continue
            progressed = True
            kind = message[0]
            if kind == "hb":
                fleet.core.beat(rank)
                continue
            if kind == "error":
                fleet.core.beat(rank)
                error = message[2]
                if dist.restart.task_retry.classify(error) == "fatal":
                    raise DistError(
                        f"worker {rank} failed fatally at epoch {epoch} "
                        f"step {step}"
                    ) from error
                fleet.kill(rank)
                action = fleet.handle_death(rank, model, optimizer, epoch, step)
                if action == "degrade":
                    pending.discard(rank)
                continue
            if kind != "grad":
                continue
            fleet.core.beat(rank)
            spec = faultpoint_signal("dist.worker.step")
            if spec is not None and spec.kind == "kill":
                fleet.kill(rank)
                killed_after.add(rank)
            _, _, msg_epoch, msg_step, grads, loss, count = message
            if (msg_epoch, msg_step) != (epoch, step):
                raise DistError(
                    f"worker {rank} is out of lockstep: sent "
                    f"({msg_epoch}, {msg_step}), expected ({epoch}, {step})"
                )
            contribs[rank] = (rank, grads, loss, count)
            pending.discard(rank)
        if not progressed:
            handles = []
            for rank in sorted(pending):
                conn = fleet.conns.get(rank)
                if conn is not None:
                    handles.append(conn)
                process = fleet.procs.get(rank)
                if process is not None:
                    handles.append(process.sentinel)
            if handles:
                _mp_wait(handles, timeout=dist.poll_s)
    if not contribs:
        raise DistError(
            f"no gradient contributions survived epoch {epoch} step {step}"
        )
    return contribs, killed_after


def _drain_done(fleet, dist) -> None:
    """Collect final ``done`` messages (and span buffers) from the fleet."""
    deadline = time.monotonic() + dist.done_timeout_s
    pending = set(fleet.core.live)
    while pending and time.monotonic() < deadline:
        for rank in sorted(pending):
            conn = fleet.conns.get(rank)
            process = fleet.procs.get(rank)
            if conn is None:
                pending.discard(rank)
                continue
            if conn.poll(0):
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    pending.discard(rank)
                    continue
                if message[0] == "done":
                    fleet.absorb_spans(message[2])
                    pending.discard(rank)
            elif process is not None and not process.is_alive():
                pending.discard(rank)  # died at the finish line: spans lost
        if pending:
            _mp_wait(
                [fleet.conns[r] for r in sorted(pending) if r in fleet.conns],
                timeout=dist.poll_s,
            )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def train_dist(
    model,
    requests: Sequence[RankingRequest],
    catalog: Catalog,
    population: Population,
    histories: list[np.ndarray],
    config: TrainConfig = TrainConfig(),
    dist: DistTrainConfig = DistTrainConfig(),
    run_logger=None,
) -> DistTrainResult:
    """Train ``model`` data-parallel across ``dist.world_size`` workers.

    ``model`` is updated in place (the parent replica *is* the caller's
    model).  Returns the per-epoch loss curve plus restart/degradation
    accounting and the fleet's merged span records.  See the module
    docstring for the replication and fault-tolerance contract.
    """
    logger = run_logger if run_logger is not None else get_run_logger()
    shards = shard_requests(requests, dist.world_size)
    logger.log(
        "dist.start",
        backend=dist.backend,
        world_size=dist.world_size,
        num_requests=len(requests),
        epochs=config.epochs,
    )
    get_registry().gauge("dist.live_workers").set(float(dist.world_size))
    with trace("dist.train") as train_span:
        if dist.backend == "inline":
            result = _train_inline(
                model, shards, catalog, population, histories, config, dist, logger
            )
        else:
            result = _train_process(
                model, shards, catalog, population, histories, config, dist, logger
            )
    # collected only now: the tracer files a tree when its *root* closes,
    # so inside the block the parent's own spans were still invisible
    result.span_records = merge_span_records(
        span_tree_records(train_span), result.span_records
    )
    logger.log(
        "dist.done",
        backend=dist.backend,
        epochs_run=len(result.losses),
        restarts=result.restarts,
        degraded=result.degraded,
    )
    return result
