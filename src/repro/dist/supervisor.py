"""Worker supervision: liveness, bounded restarts, graceful degradation.

Two layers (DESIGN.md §12):

- :class:`SupervisorCore` — the **sans-io state machine**.  It owns the
  per-worker heartbeat ledger and restart budget and answers exactly two
  questions: *who is overdue* (:meth:`~SupervisorCore.overdue`) and *what
  to do about a death* (:meth:`~SupervisorCore.on_death` → restart with a
  decorrelated-jitter delay, or degrade to fewer workers once the budget
  is spent).  The clock is injectable, so the whole state machine is
  testable without a single sleep or subprocess.
- :class:`WorkerPool` — the **multiprocessing task farm** built on the
  core.  Each worker gets its own duplex pipe; the parent dispatches
  tasks, treats every message as a heartbeat, detects death via process
  sentinels, requeues the dead worker's task (accounted through
  :func:`repro.resilience.retry.record_retry`, so ``resilience.retries``
  covers in-band and out-of-band retries alike), and respawns under the
  core's budget.  Worker errors ship back as pickled exceptions and are
  classified with the same :class:`~repro.resilience.retry.RetryPolicy`
  machinery as local retries: retryable errors requeue the task, fatal
  ones abort the run as a :class:`DistError`.

Fault points: the parent visits ``<site>`` (the pool's dispatch site,
e.g. ``dist.sweep.cell``) through
:func:`~repro.resilience.chaos.faultpoint_signal` before every dispatch —
a ``"kill"`` spec SIGKILLs the target worker (parent-side delivery keeps
``plan.fires()`` auditable in the test process) and an ``"error"`` spec
is absorbed as a transient dispatch failure.  Heartbeat intake visits
``dist.heartbeat``; an ``"error"`` fire there drops the beat.

Workers run under the parent's :class:`~repro.obs.context.TraceContext`,
and ship their span buffers home on shutdown, so
:func:`~repro.obs.context.write_chrome_trace` renders the whole fleet on
one timeline.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import signal
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _mp_wait

import numpy as np

from ..obs.context import TraceContext, current_context, span_records, use_context
from ..obs.tracing import reset_tracer, trace
from ..resilience.chaos import clear_chaos, faultpoint, faultpoint_signal
from ..resilience.errors import InjectedFault, ResilienceError
from ..resilience.retry import RetryPolicy, next_backoff, record_retry

__all__ = [
    "DistError",
    "RestartPolicy",
    "RestartDecision",
    "SupervisorCore",
    "WorkerPool",
    "picklable_error",
]


class DistError(ResilienceError):
    """A distributed run failed in a classified way (budget spent, fleet gone)."""


@dataclass(frozen=True)
class RestartPolicy:
    """Restart budgets and backoff for one worker fleet.

    ``max_restarts`` bounds respawns *per worker slot*; once spent the
    slot is removed and the fleet degrades (``dist.degraded`` event).
    Backoff between respawns follows the same decorrelated-jitter
    schedule as :func:`repro.resilience.retry.call_with_retry`
    (:func:`~repro.resilience.retry.next_backoff`).  ``task_retry``
    classifies worker-reported errors (retryable → requeue the task,
    fatal → abort) and bounds per-task attempts.
    """

    max_restarts: int = 2
    base_delay: float = 0.01
    max_delay: float = 0.5
    heartbeat_timeout_s: float = 30.0
    task_retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_attempts=3, base_delay=0.0)
    )
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")


@dataclass(frozen=True)
class RestartDecision:
    """What the supervisor decided about one worker death."""

    action: str  # "restart" | "degrade"
    delay: float = 0.0


class SupervisorCore:
    """Sans-io liveness ledger + restart-budget state machine.

    All methods are pure bookkeeping over the injectable ``clock``; the
    I/O layers (:class:`WorkerPool`, :func:`repro.dist.train.train_dist`)
    call :meth:`beat` on every worker message, :meth:`overdue` while
    waiting, and :meth:`on_death` when a worker is gone.
    """

    def __init__(
        self,
        world_size: int,
        policy: RestartPolicy = RestartPolicy(),
        clock=time.monotonic,
    ) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.policy = policy
        self.clock = clock
        self.live: set[int] = set(range(world_size))
        self.removed: set[int] = set()
        self.restarts: dict[int, int] = {rank: 0 for rank in range(world_size)}
        self._rng = np.random.default_rng(policy.seed)
        now = clock()
        self._last_beat = {rank: now for rank in range(world_size)}
        self._prev_delay = {rank: policy.base_delay for rank in range(world_size)}
        self._gauge().set(float(len(self.live)))

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def beat(self, rank: int) -> bool:
        """Record one heartbeat; returns False when chaos dropped it.

        The intake is a ``dist.heartbeat`` fault point — an ``"error"``
        spec firing here silently swallows the beat, which is how the
        chaos matrix simulates a lossy liveness channel.
        """
        try:
            faultpoint("dist.heartbeat")
        except InjectedFault:
            return False
        if rank in self.live:
            self._last_beat[rank] = self.clock()
        return True

    def overdue(self) -> list[int]:
        """Live ranks whose last beat is older than the heartbeat timeout."""
        now = self.clock()
        return sorted(
            rank
            for rank in self.live
            if now - self._last_beat[rank] > self.policy.heartbeat_timeout_s
        )

    # ------------------------------------------------------------------
    # Restart budget
    # ------------------------------------------------------------------
    def on_death(self, rank: int) -> RestartDecision:
        """Decide restart-vs-degrade for a dead worker and account for it.

        Restarts increment ``dist.worker_restarts`` and emit a
        ``dist.worker.restart`` run-log event; an exhausted budget removes
        the slot, drops the ``dist.live_workers`` gauge, and emits
        ``dist.degraded``.
        """
        if rank not in self.live:
            raise ValueError(f"rank {rank} is not a live worker")
        if self.restarts[rank] >= self.policy.max_restarts:
            self.live.discard(rank)
            self.removed.add(rank)
            self._gauge().set(float(len(self.live)))
            self._log(
                "dist.degraded",
                rank=rank,
                restarts_spent=self.restarts[rank],
                live_workers=len(self.live),
            )
            return RestartDecision("degrade")
        self.restarts[rank] += 1
        delay = next_backoff(
            self._rng,
            self.policy.base_delay,
            self.policy.max_delay,
            self._prev_delay[rank],
        )
        self._prev_delay[rank] = delay
        self._last_beat[rank] = self.clock()  # fresh grace period
        self._counter("dist.worker_restarts").inc()
        self._log(
            "dist.worker.restart",
            rank=rank,
            incarnation=self.restarts[rank],
            delay_s=delay,
        )
        return RestartDecision("restart", delay)

    @property
    def total_restarts(self) -> int:
        return sum(self.restarts.values())

    # ------------------------------------------------------------------
    # Telemetry plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _counter(name: str):
        from ..obs.metrics import get_registry

        return get_registry().counter(name)

    @staticmethod
    def _gauge():
        from ..obs.metrics import get_registry

        return get_registry().gauge("dist.live_workers")

    @staticmethod
    def _log(event: str, **fields) -> None:
        from ..obs.runlog import get_run_logger

        logger = get_run_logger()
        if logger.active:
            logger.log(event, **fields)


def picklable_error(error: BaseException) -> BaseException:
    """``error`` if it survives a pickle round trip, else a :class:`DistError`.

    Workers ship exceptions to the parent over a pipe; an exception whose
    ``__init__`` signature breaks unpickling (multi-arg constructors that
    don't round-trip through ``args``) would otherwise crash the *parent*
    during ``recv``.  The substitute keeps the type name and message but
    classifies as unknown (fatal by default) — a worker error we cannot
    even transport is not one we blindly retry.
    """
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return DistError(f"{type(error).__name__}: {error}")


def _pool_worker_main(conn, rank: int, fn, ctx_dict, init) -> None:
    """Task-loop entry point for one pool worker process.

    Fork inherits the parent's armed chaos plan, global sinks, and the
    parent's tracer — including any *still-open* span stack, under which
    this worker's root span would silently nest and never be recorded.
    :func:`clear_chaos` and :func:`reset_tracer` first, so faults
    scheduled for the parent don't replay in every child and the span
    buffer shipped home holds exactly this worker's spans.  ``init(rank)``
    (when given) then installs any per-worker state — per-pid sinks,
    worker-side chaos — before tasks run.
    """
    clear_chaos()
    reset_tracer()
    context = TraceContext.from_dict(ctx_dict) if ctx_dict else None
    try:
        with use_context(context):
            if init is not None:
                init(rank)
            with trace(f"dist.pool.worker:{rank}"):
                while True:
                    message = conn.recv()
                    if message[0] == "stop":
                        break
                    _, index, payload = message
                    try:
                        with trace(f"dist.pool.task:{index}"):
                            result = fn(payload)
                        conn.send(("ok", rank, index, result))
                    except BaseException as error:  # noqa: BLE001 - shipped home
                        conn.send(("err", rank, index, picklable_error(error)))
        conn.send(("bye", rank, span_records()))
    except (EOFError, OSError, KeyboardInterrupt):  # parent gone: die quietly
        pass


class WorkerPool:
    """A supervised multiprocessing task farm (see module docs).

    ``fn(payload)`` runs in the workers; ``run(tasks)`` returns one result
    per task, in task order, surviving worker deaths up to the policy's
    budgets.  ``init(rank)`` runs once per worker incarnation before any
    task (install per-pid sinks there).  The ``site`` names the fault
    point visited at dispatch and the retry site used for requeue
    accounting.
    """

    def __init__(
        self,
        num_workers: int,
        fn,
        policy: RestartPolicy = RestartPolicy(),
        site: str = "dist.task",
        init=None,
        sleep=time.sleep,
        clock=time.monotonic,
        poll_s: float = 0.05,
        mp_context=None,
    ) -> None:
        self.fn = fn
        self.site = site
        self.init = init
        self.policy = policy
        self.core = SupervisorCore(num_workers, policy, clock)
        self._sleep = sleep
        self._poll_s = poll_s
        self._ctx = mp_context if mp_context is not None else mp.get_context("fork")
        self._conns: dict[int, object] = {}
        self._procs: dict[int, object] = {}
        self.span_buffer: list[dict] = []
        self._span_ids: set[str] = set()
        context = current_context()
        self._ctx_dict = context.to_dict() if context is not None else None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        for rank in sorted(self.core.live):
            self._spawn(rank)
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _spawn(self, rank: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(child_conn, rank, self.fn, self._ctx_dict, self.init),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._conns[rank] = parent_conn
        self._procs[rank] = process

    def _kill(self, rank: int) -> None:
        process = self._procs.get(rank)
        if process is not None and process.is_alive():
            os.kill(process.pid, signal.SIGKILL)
            process.join()

    def _reap(self, rank: int) -> None:
        conn = self._conns.pop(rank, None)
        if conn is not None:
            conn.close()
        process = self._procs.pop(rank, None)
        if process is not None:
            process.join(timeout=5.0)

    def close(self) -> None:
        """Drain span buffers from live workers and shut everything down."""
        for rank in sorted(self.core.live):
            conn = self._conns.get(rank)
            if conn is None:
                continue
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                continue
            while True:
                if not conn.poll(5.0):
                    break
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    break
                if message[0] == "bye":
                    self._absorb_spans(message[2])
                    break
        for rank in list(self._procs):
            self._reap(rank)

    def _absorb_spans(self, records) -> None:
        for record in records or ():
            span_id = record.get("span_id")
            if span_id not in self._span_ids:
                self._span_ids.add(span_id)
                self.span_buffer.append(record)

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def run(self, tasks: list) -> list:
        """Run every task; returns results in task order.

        Raises :class:`DistError` when a task exhausts its attempt budget,
        a worker reports a fatal error, or the whole fleet is gone.
        """
        results: list = [None] * len(tasks)
        pending = list(range(len(tasks)))
        attempts = [0] * len(tasks)
        assigned: dict[int, int] = {}
        idle = [rank for rank in sorted(self.core.live) if rank in self._conns]
        done = 0
        while done < len(tasks):
            if not self.core.live:
                raise DistError(
                    "no workers left: every restart budget is exhausted "
                    f"({len(tasks) - done} task(s) incomplete)"
                )
            while pending and idle:
                rank = idle.pop(0)
                index = pending.pop(0)
                assigned[rank] = index
                try:
                    spec = faultpoint_signal(self.site)
                except InjectedFault as error:
                    # transient dispatch failure: requeue under the task
                    # budget, the worker goes back to the idle pool
                    assigned.pop(rank, None)
                    idle.append(rank)
                    self._requeue(index, attempts, pending, error)
                    continue
                if spec is not None and spec.kind == "kill":
                    self._kill(rank)
                    continue  # death path below requeues the task
                try:
                    self._conns[rank].send(("task", index, tasks[index]))
                except (BrokenPipeError, OSError):
                    pass  # death path below requeues the task
            progressed = False
            for rank in sorted(self.core.live):
                conn = self._conns.get(rank)
                if conn is None:
                    continue
                message = None
                if conn.poll(0):
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        # EOF: the channel is finished (an EOF'd pipe stays
                        # poll-ready forever, so it must be handled *here*,
                        # not by the is-alive check below).
                        self._kill(rank)
                        self._on_worker_death(rank, assigned, pending, attempts, idle)
                        progressed = True
                        continue
                if message is None:
                    if not self._procs[rank].is_alive() and not conn.poll(0):
                        self._on_worker_death(rank, assigned, pending, attempts, idle)
                        progressed = True
                    continue
                progressed = True
                kind = message[0]
                if kind == "hb":
                    self.core.beat(rank)
                    continue
                self.core.beat(rank)
                index = message[2]
                if kind == "ok":
                    results[index] = message[3]
                    done += 1
                    assigned.pop(rank, None)
                    idle.append(rank)
                elif kind == "err":
                    error = message[3]
                    assigned.pop(rank, None)
                    idle.append(rank)
                    if self.policy.task_retry.classify(error) == "fatal":
                        raise DistError(
                            f"task {index} failed fatally in worker {rank}"
                        ) from error
                    self._requeue(index, attempts, pending, error)
            if not progressed:
                self._wait_for_events(assigned)
        return results

    def _requeue(
        self, index: int, attempts: list[int], pending: list[int], error
    ) -> None:
        attempts[index] += 1
        record_retry(self.site, attempts[index], error)
        if attempts[index] >= self.policy.task_retry.max_attempts:
            raise DistError(
                f"task {index} failed on all {attempts[index]} attempt(s) "
                f"at {self.site!r}"
            ) from error
        pending.insert(0, index)

    def _on_worker_death(
        self,
        rank: int,
        assigned: dict[int, int],
        pending: list[int],
        attempts: list[int],
        idle: list[int],
    ) -> None:
        index = assigned.pop(rank, None)
        if index is not None:
            self._requeue(
                index,
                attempts,
                pending,
                DistError(f"worker {rank} died while running task {index}"),
            )
        if rank in idle:
            idle.remove(rank)
        self._reap(rank)
        decision = self.core.on_death(rank)
        if decision.action == "restart":
            if decision.delay > 0:
                self._sleep(decision.delay)
            self._spawn(rank)
            idle.append(rank)

    def _wait_for_events(self, assigned: dict[int, int]) -> None:
        handles = []
        for rank in sorted(self.core.live):
            conn = self._conns.get(rank)
            if conn is not None:
                handles.append(conn)
            process = self._procs.get(rank)
            if process is not None:
                handles.append(process.sentinel)
        if handles:
            _mp_wait(handles, timeout=self._poll_s)
