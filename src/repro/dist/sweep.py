"""Kill-safe evaluation sweeps over the paper's Table-II grid.

A sweep is a bag of independent *cells* — one ``(dataset, lambda, model)``
combination each — farmed to a :class:`~repro.dist.supervisor.WorkerPool`.
Cells are embarrassingly parallel and idempotent, so fault tolerance is
pure bookkeeping:

- every finished cell is durable the moment it exists: the worker writes
  ``cells/<cell_id>.json`` through
  :func:`~repro.utils.atomicio.atomic_write_bytes` plus a SHA-256
  sidecar, *before* returning the result over the pipe;
- a cell whose file already verifies is **skipped** — both by the parent
  before dispatch and by the worker itself (covering the race where a
  worker died after the write but before the ack, and the supervisor
  requeued the cell);
- a killed worker's in-flight cell is requeued under the supervisor's
  retry budget; an exhausted budget degrades the fleet and the surviving
  workers drain the queue.

``manifest.json`` (written atomically after the run) lists every
completed cell with its digest, so a later :func:`run_sweep` over the
same grid resumes from whatever survived — rerunning a finished sweep is
a no-op that just reloads the files.

The ``dist.sweep.cell`` fault point sits at the top of the worker-side
cell body; parent-side chaos on the same site (via the pool's dispatch
hook) exercises kill/requeue with ``plan.fires()`` visible to tests.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Sequence

from ..eval.experiment import evaluate_reranker, make_reranker, prepare_bundle
from ..eval.protocol import ExperimentConfig
from ..obs import get_run_logger, trace
from ..resilience.chaos import faultpoint
from ..utils.atomicio import (
    atomic_write_bytes,
    checksum_sidecar_path,
    verify_checksum_sidecar,
    write_checksum_sidecar,
)
from .supervisor import DistError, RestartPolicy, WorkerPool

__all__ = ["SweepCell", "SweepResult", "table2_cells", "run_sweep"]

_MANIFEST_VERSION = 1


@dataclass(frozen=True)
class SweepCell:
    """One Table-II cell: a model evaluated under one experiment config."""

    cell_id: str
    model: str
    config: ExperimentConfig


@dataclass
class SweepResult:
    """Everything one sweep run produced (or recovered)."""

    results: dict[str, dict]
    manifest_path: Path
    restarts: int = 0
    degraded: list[int] = field(default_factory=list)
    span_records: list[dict] = field(default_factory=list)


def table2_cells(
    models: Sequence[str] = ("rapid-pro",),
    datasets: Sequence[str] = ("taobao", "movielens"),
    tradeoffs: Sequence[float] = (0.5, 0.9, 1.0),
    base: ExperimentConfig | None = None,
) -> list[SweepCell]:
    """The paper's Table-II grid as sweep cells.

    ``base`` carries everything the grid doesn't vary (scale, volumes,
    training config); defaults to :class:`ExperimentConfig`'s defaults.
    """
    base = base if base is not None else ExperimentConfig()
    cells = []
    for dataset in datasets:
        for tradeoff in tradeoffs:
            config = replace(base, dataset=dataset, tradeoff=tradeoff)
            for model in models:
                cells.append(
                    SweepCell(
                        cell_id=f"{dataset}-lam{tradeoff:g}-{model}",
                        model=model,
                        config=config,
                    )
                )
    return cells


def _cell_path(out_dir: Path, cell_id: str) -> Path:
    return out_dir / "cells" / f"{cell_id}.json"


def sweep_manifest_path(out_dir: str | Path) -> Path:
    return Path(out_dir) / "manifest.json"


def _cell_valid(path: Path) -> bool:
    return path.exists() and verify_checksum_sidecar(path) is True


def _load_cell(path: Path) -> dict:
    return json.loads(path.read_text())


def _run_cell(payload) -> dict:
    """Worker-side cell body: durable-or-retryable, idempotent."""
    cell, out_dir = payload
    path = _cell_path(Path(out_dir), cell.cell_id)
    if _cell_valid(path):
        return _load_cell(path)  # predecessor died between write and ack
    faultpoint("dist.sweep.cell")
    with trace(f"dist.sweep.cell:{cell.cell_id}"):
        bundle = prepare_bundle(cell.config)
        reranker = make_reranker(cell.model, bundle)
        if reranker is not None and reranker.requires_training:
            reranker.fit(
                bundle.train_requests,
                bundle.world.catalog,
                bundle.world.population,
                bundle.histories,
            )
        evaluation = evaluate_reranker(reranker, bundle)
    record = {
        "cell_id": cell.cell_id,
        "model": cell.model,
        "tags": cell.config.tags(),
        "metrics": evaluation.metrics,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_bytes(
        path, json.dumps(record, indent=1).encode("utf-8"), fsync=False
    )
    write_checksum_sidecar(path, fsync=False)
    return record


def run_sweep(
    cells: Sequence[SweepCell],
    out_dir: str | Path,
    num_workers: int = 2,
    policy: RestartPolicy | None = None,
    resume: bool = True,
    sleep=time.sleep,
    clock=time.monotonic,
) -> SweepResult:
    """Farm ``cells`` to a supervised worker pool; durable per-cell results.

    With ``resume`` (default) cells whose result files already verify are
    loaded instead of recomputed — call again after a crash and only the
    unfinished cells run.  Returns every cell's record plus the pool's
    restart/degradation accounting.
    """
    if not cells:
        raise DistError("a sweep needs at least one cell")
    ids = [cell.cell_id for cell in cells]
    if len(set(ids)) != len(ids):
        raise DistError("duplicate cell_id in sweep")
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    logger = get_run_logger()
    results: dict[str, dict] = {}
    outstanding: list[SweepCell] = []
    for cell in cells:
        path = _cell_path(out_dir, cell.cell_id)
        if resume and _cell_valid(path):
            results[cell.cell_id] = _load_cell(path)
        else:
            outstanding.append(cell)
    logger.log(
        "dist.sweep.start",
        cells=len(cells),
        recovered=len(results),
        outstanding=len(outstanding),
        workers=num_workers,
    )
    restarts, degraded, spans = 0, [], []
    if outstanding:
        policy = policy if policy is not None else RestartPolicy()
        with WorkerPool(
            num_workers=min(num_workers, len(outstanding)),
            fn=_run_cell,
            policy=policy,
            site="dist.sweep.cell",
            sleep=sleep,
            clock=clock,
        ) as pool:
            records = pool.run([(cell, str(out_dir)) for cell in outstanding])
            restarts = pool.core.total_restarts
            degraded = sorted(pool.core.removed)
        # span buffers arrive with the workers' "bye" messages on close,
        # so they are only complete after the pool context exits
        spans = list(pool.span_buffer)
        for record in records:
            results[record["cell_id"]] = record
    entries = []
    for cell_id in sorted(results):
        path = _cell_path(out_dir, cell_id)
        entries.append(
            {
                "cell_id": cell_id,
                "path": str(path.relative_to(out_dir)),
                "sha256": checksum_sidecar_path(path).read_text().split()[0],
                "status": "done",
            }
        )
    manifest = {"version": _MANIFEST_VERSION, "cells": entries}
    manifest_file = sweep_manifest_path(out_dir)
    atomic_write_bytes(
        manifest_file, json.dumps(manifest, indent=1).encode("utf-8"), fsync=False
    )
    logger.log(
        "dist.sweep.done",
        cells=len(results),
        restarts=restarts,
        degraded=degraded,
    )
    return SweepResult(
        results=results,
        manifest_path=manifest_file,
        restarts=restarts,
        degraded=degraded,
        span_records=spans,
    )
