"""Fault-tolerant scale-out: supervised workers, shards, trainers, sweeps.

Every component here presumes workers are mortal (ROADMAP item 3):

- :mod:`~repro.dist.supervisor` — the worker supervisor: a sans-io
  liveness/restart state machine (:class:`SupervisorCore`) plus a
  multiprocessing task farm (:class:`WorkerPool`) with bounded restart
  budgets, decorrelated-jitter backoff, and graceful degradation;
- :mod:`~repro.dist.shard` — sharded synthetic-population generation
  streaming user blocks to per-shard ``.npz`` archives with checksum
  sidecars and a resumable manifest;
- :mod:`~repro.dist.train` — data-parallel training with lockstep
  gradient averaging; a killed worker rejoins **bit-identically** (the
  parent replica is the donor), proven by ``tests/test_dist_chaos.py``;
- :mod:`~repro.dist.sweep` — an eval-sweep scheduler farming Table-II
  cells to workers with per-cell durable results and
  resume-from-manifest.

Chaos fault points: ``dist.heartbeat``, ``dist.worker.step``,
``dist.shard.write``, ``dist.sweep.cell`` (see DESIGN.md §12).
"""

from .shard import ShardPlan, generate_shard, generate_shards, load_population
from .supervisor import (
    DistError,
    RestartDecision,
    RestartPolicy,
    SupervisorCore,
    WorkerPool,
)
from .sweep import SweepCell, SweepResult, run_sweep, table2_cells
from .train import DistTrainConfig, DistTrainResult, train_dist

__all__ = [
    "DistError",
    "RestartDecision",
    "RestartPolicy",
    "SupervisorCore",
    "WorkerPool",
    "ShardPlan",
    "generate_shard",
    "generate_shards",
    "load_population",
    "DistTrainConfig",
    "DistTrainResult",
    "train_dist",
    "SweepCell",
    "SweepResult",
    "run_sweep",
    "table2_cells",
]
