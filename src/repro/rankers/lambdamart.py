"""LambdaMART — listwise gradient-boosted ranking (Burges, 2010).

Each boosting round fits a regression tree to the *lambda* gradients: for
every preference pair (relevant i, irrelevant j) within a query (here, a
user's labeled interactions), the pairwise RankNet gradient is scaled by the
|delta NDCG| of swapping the two items, pushing the ensemble toward moves
that matter most for NDCG.
"""

from __future__ import annotations

import numpy as np

from ..data.schema import Catalog, Population
from .base import InitialRanker, pointwise_features
from .trees import RegressionTree

__all__ = ["LambdaMARTRanker"]


class LambdaMARTRanker(InitialRanker):
    """Gradient-boosted trees with lambda gradients.

    Parameters
    ----------
    num_trees, learning_rate, max_depth:
        Boosting configuration.
    sigma:
        RankNet sigmoid sharpness.
    """

    name = "lambdamart"

    def __init__(
        self,
        num_trees: int = 30,
        learning_rate: float = 0.15,
        max_depth: int = 3,
        sigma: float = 1.0,
        min_samples_leaf: int = 5,
    ) -> None:
        if num_trees < 1:
            raise ValueError("num_trees must be >= 1")
        self.num_trees = num_trees
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.sigma = sigma
        self.min_samples_leaf = min_samples_leaf
        self.trees: list[RegressionTree] = []

    # ------------------------------------------------------------------
    @staticmethod
    def _group_by_user(
        interactions: np.ndarray,
    ) -> list[tuple[int, np.ndarray, np.ndarray]]:
        """Return (user, item_ids, labels) per user with both label classes."""
        groups: list[tuple[int, np.ndarray, np.ndarray]] = []
        interactions = np.asarray(interactions, dtype=np.int64)
        for user in np.unique(interactions[:, 0]):
            rows = interactions[interactions[:, 0] == user]
            labels = rows[:, 2]
            if labels.min() == labels.max():
                continue  # no preference pairs in this query
            groups.append((int(user), rows[:, 1], labels.astype(np.float64)))
        return groups

    @staticmethod
    def _lambdas(scores: np.ndarray, labels: np.ndarray, sigma: float) -> np.ndarray:
        """Lambda gradients for one query."""
        order = np.argsort(-scores)
        ranks = np.empty(len(scores), dtype=np.int64)
        ranks[order] = np.arange(len(scores))
        discounts = 1.0 / np.log2(ranks + 2.0)
        gains = 2.0**labels - 1.0
        ideal = np.sort(gains)[::-1]
        idcg = float((ideal / np.log2(np.arange(2, len(ideal) + 2))).sum())
        if idcg <= 0:
            return np.zeros(len(scores))
        lambdas = np.zeros(len(scores))
        positives = np.flatnonzero(labels > 0.5)
        negatives = np.flatnonzero(labels <= 0.5)
        for i in positives:
            for j in negatives:
                delta = abs(gains[i] - gains[j]) * abs(
                    discounts[i] - discounts[j]
                ) / idcg
                rho = 1.0 / (1.0 + np.exp(sigma * (scores[i] - scores[j])))
                lam = sigma * delta * rho
                lambdas[i] += lam
                lambdas[j] -= lam
        return lambdas

    def fit(
        self,
        interactions: np.ndarray,
        catalog: Catalog,
        population: Population,
        histories: list[np.ndarray] | None = None,
    ) -> "LambdaMARTRanker":
        groups = self._group_by_user(interactions)
        if not groups:
            raise ValueError("no user has both positive and negative labels")
        features = []
        labels = []
        bounds = [0]
        for user, items, y in groups:
            features.append(
                pointwise_features(
                    np.full(len(items), user), items, catalog, population
                )
            )
            labels.append(y)
            bounds.append(bounds[-1] + len(items))
        x = np.vstack(features)
        y = np.concatenate(labels)
        scores = np.zeros(len(x))
        self.trees = []
        for _ in range(self.num_trees):
            lambdas = np.zeros(len(x))
            for g, (start, stop) in enumerate(zip(bounds[:-1], bounds[1:])):
                lambdas[start:stop] = self._lambdas(
                    scores[start:stop], y[start:stop], self.sigma
                )
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            ).fit(x, lambdas)
            self.trees.append(tree)
            scores = scores + self.learning_rate * tree.predict(x)
        return self

    def score(
        self,
        user_ids: np.ndarray,
        candidate_items: np.ndarray,
        catalog: Catalog,
        population: Population,
        histories: list[np.ndarray] | None = None,
    ) -> np.ndarray:
        if not self.trees:
            raise RuntimeError("fit the ranker before scoring")
        user_ids = np.asarray(user_ids, dtype=np.int64)
        candidate_items = np.asarray(candidate_items, dtype=np.int64)
        n, length = candidate_items.shape
        x = pointwise_features(
            np.repeat(user_ids, length), candidate_items.ravel(), catalog, population
        )
        scores = np.zeros(len(x))
        for tree in self.trees:
            scores += self.learning_rate * tree.predict(x)
        return scores.reshape(n, length)
