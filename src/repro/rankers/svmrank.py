"""SVMRank — pairwise linear ranking SVM (Joachims, KDD 2006).

Trained by stochastic subgradient descent on the L2-regularized pairwise
hinge loss over preference pairs (clicked > unclicked within a user's
interactions).
"""

from __future__ import annotations

import numpy as np

from ..data.schema import Catalog, Population
from ..utils.rng import make_rng
from .base import InitialRanker, pointwise_features

__all__ = ["SVMRankRanker"]


class SVMRankRanker(InitialRanker):
    """Linear ranking SVM on :func:`pointwise_features`.

    Parameters
    ----------
    c:
        Inverse regularization strength (larger = less regularized).
    epochs, lr:
        Subgradient descent schedule; the step size decays as 1/sqrt(t).
    max_pairs_per_user:
        Caps the preference pairs sampled per user per epoch.
    """

    name = "svmrank"

    def __init__(
        self,
        c: float = 1.0,
        epochs: int = 5,
        lr: float = 0.1,
        max_pairs_per_user: int = 50,
        seed: int = 0,
    ) -> None:
        if c <= 0:
            raise ValueError("c must be positive")
        self.c = c
        self.epochs = epochs
        self.lr = lr
        self.max_pairs_per_user = max_pairs_per_user
        self.seed = seed
        self.weights: np.ndarray | None = None

    def _feature_dim(self, catalog: Catalog, population: Population) -> int:
        return (
            population.feature_dim
            + catalog.feature_dim
            + catalog.num_topics
            + population.feature_dim * catalog.feature_dim
        )

    def fit(
        self,
        interactions: np.ndarray,
        catalog: Catalog,
        population: Population,
        histories: list[np.ndarray] | None = None,
    ) -> "SVMRankRanker":
        rng = make_rng(self.seed)
        interactions = np.asarray(interactions, dtype=np.int64)
        weights = np.zeros(self._feature_dim(catalog, population))
        # Group interactions per user to form preference pairs.
        by_user: dict[int, tuple[list[int], list[int]]] = {}
        for user, item, click in interactions:
            positives, negatives = by_user.setdefault(int(user), ([], []))
            (positives if click else negatives).append(int(item))

        step = 0
        for _ in range(self.epochs):
            users = list(by_user)
            rng.shuffle(users)
            for user in users:
                positives, negatives = by_user[user]
                if not positives or not negatives:
                    continue
                count = min(
                    self.max_pairs_per_user, len(positives) * len(negatives)
                )
                pos = rng.choice(positives, size=count)
                neg = rng.choice(negatives, size=count)
                user_col = np.full(count, user)
                f_pos = pointwise_features(user_col, pos, catalog, population)
                f_neg = pointwise_features(user_col, neg, catalog, population)
                diff = f_pos - f_neg
                margin = diff @ weights
                violated = margin < 1.0
                step += 1
                eta = self.lr / np.sqrt(step)
                grad = weights / self.c
                if violated.any():
                    grad = grad - diff[violated].sum(axis=0) / max(count, 1)
                weights = weights - eta * grad
        self.weights = weights
        return self

    def score(
        self,
        user_ids: np.ndarray,
        candidate_items: np.ndarray,
        catalog: Catalog,
        population: Population,
        histories: list[np.ndarray] | None = None,
    ) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("fit the ranker before scoring")
        user_ids = np.asarray(user_ids, dtype=np.int64)
        candidate_items = np.asarray(candidate_items, dtype=np.int64)
        n, length = candidate_items.shape
        features = pointwise_features(
            np.repeat(user_ids, length),
            candidate_items.ravel(),
            catalog,
            population,
        )
        return (features @ self.weights).reshape(n, length)
