"""Regression trees for the from-scratch gradient boosting in LambdaMART."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RegressionTree"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """CART-style regression tree with variance-reduction splits.

    Candidate thresholds are taken at feature quantiles (histogram-style),
    which keeps fitting fast and is the standard choice in boosted-tree
    rankers.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        num_thresholds: int = 16,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.num_thresholds = num_thresholds
        self._root: _Node | None = None

    def fit(
        self, x: np.ndarray, targets: np.ndarray, weights: np.ndarray | None = None
    ) -> "RegressionTree":
        x = np.asarray(x, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        weights = (
            np.ones(len(targets))
            if weights is None
            else np.asarray(weights, dtype=np.float64)
        )
        self._root = self._grow(x, targets, weights, depth=0)
        return self

    def _leaf_value(self, targets: np.ndarray, weights: np.ndarray) -> float:
        total = weights.sum()
        if total <= 0:
            return 0.0
        return float((targets * weights).sum() / total)

    def _grow(
        self, x: np.ndarray, targets: np.ndarray, weights: np.ndarray, depth: int
    ) -> _Node:
        node = _Node(value=self._leaf_value(targets, weights))
        if depth >= self.max_depth or len(targets) < 2 * self.min_samples_leaf:
            return node
        best_gain = 0.0
        best: tuple[int, float, np.ndarray] | None = None
        base_sse = self._weighted_sse(targets, weights)
        for feature in range(x.shape[1]):
            column = x[:, feature]
            quantiles = np.linspace(0.05, 0.95, self.num_thresholds)
            thresholds = np.unique(np.quantile(column, quantiles))
            for threshold in thresholds:
                left = column <= threshold
                n_left = int(left.sum())
                if (
                    n_left < self.min_samples_leaf
                    or len(targets) - n_left < self.min_samples_leaf
                ):
                    continue
                sse = self._weighted_sse(
                    targets[left], weights[left]
                ) + self._weighted_sse(targets[~left], weights[~left])
                gain = base_sse - sse
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best = (feature, float(threshold), left)
        if best is None:
            return node
        feature, threshold, left = best
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[left], targets[left], weights[left], depth + 1)
        node.right = self._grow(x[~left], targets[~left], weights[~left], depth + 1)
        return node

    @staticmethod
    def _weighted_sse(targets: np.ndarray, weights: np.ndarray) -> float:
        total = weights.sum()
        if total <= 0:
            return 0.0
        mean = (targets * weights).sum() / total
        return float((weights * (targets - mean) ** 2).sum())

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("fit the tree before predicting")
        x = np.asarray(x, dtype=np.float64)
        out = np.empty(len(x))
        # Iterative routing: partition index sets down the tree.
        stack: list[tuple[_Node, np.ndarray]] = [(self._root, np.arange(len(x)))]
        while stack:
            node, rows = stack.pop()
            if node.is_leaf:
                out[rows] = node.value
                continue
            left = x[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[left]))
            stack.append((node.right, rows[~left]))
        return out
