"""Initial-ranker interface and shared feature assembly.

Initial rankers (the paper uses DIN, SVMRank, LambdaMART) are trained on
(user, item, click) interactions and then score candidate sets to produce
the initial ranking lists ``R`` consumed by every re-ranking model.
"""

from __future__ import annotations

import numpy as np

from ..data.schema import Catalog, Population

__all__ = ["InitialRanker", "pointwise_features"]


def pointwise_features(
    user_ids: np.ndarray,
    item_ids: np.ndarray,
    catalog: Catalog,
    population: Population,
) -> np.ndarray:
    """Assemble per-(user, item) features for pointwise/pairwise rankers.

    Concatenates user features, item features, topic coverage, and the
    flattened outer product of user and item features — the cross term lets
    even linear models (SVMRank) express user-item affinity.
    """
    user_ids = np.asarray(user_ids, dtype=np.int64).ravel()
    item_ids = np.asarray(item_ids, dtype=np.int64).ravel()
    xu = population.features[user_ids]
    xv = catalog.features[item_ids]
    tau = catalog.coverage[item_ids]
    cross = (xu[:, :, None] * xv[:, None, :]).reshape(len(user_ids), -1)
    return np.concatenate([xu, xv, tau, cross], axis=1)


class InitialRanker:
    """Base class: fit on interactions, then score (user, items) pairs."""

    name = "base"

    def fit(
        self,
        interactions: np.ndarray,
        catalog: Catalog,
        population: Population,
        histories: list[np.ndarray] | None = None,
    ) -> "InitialRanker":
        """Train on an (n, 3) array of (user_id, item_id, click) rows."""
        raise NotImplementedError

    def score(
        self,
        user_ids: np.ndarray,
        candidate_items: np.ndarray,
        catalog: Catalog,
        population: Population,
        histories: list[np.ndarray] | None = None,
    ) -> np.ndarray:
        """Score a (n, L) candidate matrix; returns (n, L) scores."""
        raise NotImplementedError

    def rank(
        self,
        user_ids: np.ndarray,
        candidate_items: np.ndarray,
        catalog: Catalog,
        population: Population,
        histories: list[np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sort candidates by score; returns (ordered items, ordered scores)."""
        scores = self.score(
            user_ids, candidate_items, catalog, population, histories=histories
        )
        order = np.argsort(-scores, axis=1)
        rows = np.arange(len(candidate_items))[:, None]
        return candidate_items[rows, order], scores[rows, order]
