"""DIN — Deep Interest Network initial ranker (Zhou et al., KDD 2018).

DIN scores a candidate item for a user by attending over the user's behavior
history with the *candidate* as the attention query, sum-pooling the history
into an interest vector, and feeding ``[x_u, x_v, tau_v, interest]`` through
an MLP.  It is the paper's default (pointwise-loss) initial ranker.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.schema import Catalog, Population
from ..nn import Tensor
from ..utils.rng import make_rng
from .base import InitialRanker

__all__ = ["DINRanker"]


class _DINNetwork(nn.Module):
    """Attention-pooled interest network."""

    def __init__(
        self,
        user_dim: int,
        item_dim: int,
        num_topics: int,
        hidden: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.item_proj = nn.Linear(item_dim, hidden, rng=rng)
        # Local activation unit: scores each history item against the target.
        self.attention_mlp = nn.MLP(
            [4 * hidden, hidden, 1], activation="relu", rng=rng
        )
        self.output_mlp = nn.MLP(
            [user_dim + item_dim + num_topics + hidden, hidden, 1],
            activation="relu",
            rng=rng,
        )

    def forward(
        self,
        user_features: np.ndarray,
        item_features: np.ndarray,
        item_coverage: np.ndarray,
        history_features: np.ndarray,
        history_mask: np.ndarray,
    ) -> Tensor:
        """Return (batch,) click logits."""
        target = self.item_proj(Tensor(item_features))  # (B, h)
        history = self.item_proj(Tensor(history_features))  # (B, H, h)
        batch, horizon, hidden = history.shape
        target_tiled = target.reshape(batch, 1, hidden) + Tensor(
            np.zeros((batch, horizon, hidden))
        )
        pair = Tensor.concatenate(
            [
                target_tiled,
                history,
                target_tiled * history,
                target_tiled - history,
            ],
            axis=2,
        )
        weights = self.attention_mlp(pair).reshape(batch, horizon)
        weights = weights * Tensor(history_mask.astype(np.float64))
        interest = (weights.reshape(batch, horizon, 1) * history).sum(axis=1)
        combined = Tensor.concatenate(
            [Tensor(user_features), Tensor(item_features), Tensor(item_coverage), interest],
            axis=1,
        )
        return self.output_mlp(combined).reshape(batch)


class DINRanker(InitialRanker):
    """Pointwise deep ranker with history attention.

    Parameters
    ----------
    hidden:
        Width of the projection / MLP layers.
    epochs, batch_size, lr:
        Training configuration (Adam, BCE-with-logits loss).
    history_length:
        Number of most recent history items attended over.
    """

    name = "din"

    def __init__(
        self,
        hidden: int = 16,
        epochs: int = 3,
        batch_size: int = 128,
        lr: float = 1e-2,
        history_length: int = 20,
        seed: int = 0,
    ) -> None:
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.history_length = history_length
        self.seed = seed
        self.network: _DINNetwork | None = None

    # ------------------------------------------------------------------
    def _history_arrays(
        self,
        user_ids: np.ndarray,
        catalog: Catalog,
        histories: list[np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        horizon = self.history_length
        batch = len(user_ids)
        features = np.zeros((batch, horizon, catalog.feature_dim))
        mask = np.zeros((batch, horizon), dtype=bool)
        for row, user in enumerate(user_ids):
            recent = np.asarray(histories[user], dtype=np.int64)[-horizon:]
            if recent.size:
                features[row, : len(recent)] = catalog.features[recent]
                mask[row, : len(recent)] = True
        return features, mask

    def fit(
        self,
        interactions: np.ndarray,
        catalog: Catalog,
        population: Population,
        histories: list[np.ndarray] | None = None,
    ) -> "DINRanker":
        if histories is None:
            raise ValueError("DIN requires user behavior histories")
        rng = make_rng(self.seed)
        self.network = _DINNetwork(
            population.feature_dim,
            catalog.feature_dim,
            catalog.num_topics,
            self.hidden,
            rng,
        )
        optimizer = nn.Adam(self.network.parameters(), lr=self.lr)
        interactions = np.asarray(interactions, dtype=np.int64)
        for _ in range(self.epochs):
            order = rng.permutation(len(interactions))
            for start in range(0, len(order), self.batch_size):
                rows = interactions[order[start : start + self.batch_size]]
                users, items, labels = rows[:, 0], rows[:, 1], rows[:, 2]
                hist_f, hist_m = self._history_arrays(users, catalog, histories)
                optimizer.zero_grad()
                logits = self.network(
                    population.features[users],
                    catalog.features[items],
                    catalog.coverage[items],
                    hist_f,
                    hist_m,
                )
                loss = nn.functional.binary_cross_entropy_with_logits(
                    logits, labels.astype(np.float64)
                )
                loss.backward()
                optimizer.step()
        return self

    def score(
        self,
        user_ids: np.ndarray,
        candidate_items: np.ndarray,
        catalog: Catalog,
        population: Population,
        histories: list[np.ndarray] | None = None,
    ) -> np.ndarray:
        if self.network is None:
            raise RuntimeError("fit the ranker before scoring")
        if histories is None:
            raise ValueError("DIN requires user behavior histories")
        user_ids = np.asarray(user_ids, dtype=np.int64)
        candidate_items = np.asarray(candidate_items, dtype=np.int64)
        n, length = candidate_items.shape
        flat_users = np.repeat(user_ids, length)
        flat_items = candidate_items.ravel()
        hist_f, hist_m = self._history_arrays(flat_users, catalog, histories)
        with nn.no_grad():
            logits = self.network(
                population.features[flat_users],
                catalog.features[flat_items],
                catalog.coverage[flat_items],
                hist_f,
                hist_m,
            )
        return logits.numpy().reshape(n, length)
