"""Initial rankers: DIN (pointwise deep), SVMRank (pairwise linear),
LambdaMART (listwise boosted trees)."""

from .base import InitialRanker, pointwise_features
from .din import DINRanker
from .lambdamart import LambdaMARTRanker
from .svmrank import SVMRankRanker
from .trees import RegressionTree

__all__ = [
    "DINRanker",
    "InitialRanker",
    "LambdaMARTRanker",
    "RegressionTree",
    "SVMRankRanker",
    "pointwise_features",
]
