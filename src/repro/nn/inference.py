"""Tape-free float32 inference fast path for ``repro.nn``.

At RAPID's serving shapes (one user history through the Bi-LSTM and the
per-topic encoders, a few hundred candidates) Python dispatch and autograd
node allocation — not FLOPs — dominate rerank latency.  The op-table
refactor in :mod:`repro.nn.tensor` already skips closure creation when no
tape is active; this module goes further and removes :class:`Tensor` from
the serving path entirely.  ``Module.infer`` runs a module's forward pass
on raw ndarrays in the inference dtype (float32 by default), with weights
cast — and, for the recurrent cells, gate-reordered — exactly once per
parameter load and cached against the parameter array's identity.

Escape hatches mirror ``REPRO_NN_FUSED``:

- ``REPRO_NN_INFER=0`` (or :func:`set_infer` / :func:`use_infer`) restores
  the float64 tape path bit-identically everywhere the serving layer
  dispatches;
- ``REPRO_NN_INFER_DTYPE=float64`` keeps the tape-free dispatch but runs it
  in double precision (useful for isolating dtype drift from path drift).

Parity is enforced by the differential oracle (``repro.testing.oracle``
replays every fused-kernel case on this path with explicit tolerance/ULP
budgets), the golden-slate suite (identical item ids fast vs tape for every
reranker), and the autograd fuzzer (tape vs no-tape forward equality).

Weight-cast cache contract: optimizer steps and ``load_state_dict`` rebind
``param.data`` to a fresh array (they never mutate in place), so caches are
keyed on the identity of the source arrays and invalidate automatically on
the next load.  Code that mutates ``param.data`` in place must call
:func:`invalidate_caches` afterwards.

Profiling: when the ``repro.obs`` op profiler is enabled it installs
:data:`_PROFILE_HOOK`; the named kernels below then report wall time under
``dispatch=infer`` so ``python -m repro.obs.report`` can attribute serving
time to this path.  Disabled cost is a single module-global ``None`` check
per kernel call (gated by ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "infer_enabled",
    "set_infer",
    "use_infer",
    "infer_dtype",
    "cached_weights",
    "invalidate_caches",
    "sigmoid_nd",
    "softmax_nd",
    "log_softmax_nd",
    "masked_softmax_nd",
    "relu_nd",
    "layer_norm_nd",
    "linear_nd",
    "lstm_scan_infer",
    "gru_scan_infer",
    "lstm_infer_weights",
    "gru_infer_weights",
    "INFER_CASES",
    "register_infer_case",
]

# ----------------------------------------------------------------------
# Escape hatch: REPRO_NN_INFER=0 (env) or set_infer(False) (module flag)
# restores the autograd tape path everywhere the serving layer dispatches.
# ----------------------------------------------------------------------

_INFER_OVERRIDE: bool | None = None


def infer_enabled() -> bool:
    """Whether serving code should use the tape-free inference path."""
    if _INFER_OVERRIDE is not None:
        return _INFER_OVERRIDE
    return os.environ.get("REPRO_NN_INFER", "1").lower() not in ("0", "false", "no")


def set_infer(value: bool | None) -> None:
    """Force the inference path on/off; ``None`` restores env-var control."""
    global _INFER_OVERRIDE
    _INFER_OVERRIDE = value


@contextmanager
def use_infer(value: bool):
    """Temporarily force the inference (or tape) path within a block."""
    previous = _INFER_OVERRIDE
    set_infer(value)
    try:
        yield
    finally:
        set_infer(previous)


_DTYPE_MEMO: dict[str, np.dtype] = {}


def infer_dtype() -> np.dtype:
    """Compute dtype of the inference path (``REPRO_NN_INFER_DTYPE``).

    The env var is re-read every call (tests monkeypatch it); only the
    string -> dtype construction is memoized — it shows up in serving
    profiles via the per-layer weight-cache checks.
    """
    name = os.environ.get("REPRO_NN_INFER_DTYPE", "float32")
    dtype = _DTYPE_MEMO.get(name)
    if dtype is None:
        dtype = _DTYPE_MEMO.setdefault(name, np.dtype(name))
    return dtype


# ----------------------------------------------------------------------
# Per-module weight-cast cache.
#
# A cache entry is keyed on the *identity* of the source parameter arrays
# plus the inference dtype: optimizers and load_state_dict rebind
# ``param.data`` to fresh arrays, so an identity mismatch is exactly "the
# weights changed".  Entries live in the owning module's __dict__ (modules
# are plain-attribute objects; Parameters/Modules are intercepted by
# __setattr__, tuples are not).
# ----------------------------------------------------------------------

_CACHE_PREFIX = "_infer_cache_"


def cached_weights(module, key: str, params: Sequence, build: Callable):
    """Return ``build(dtype)`` cached on ``module`` until weights rebind.

    ``params`` are the Tensors/Parameters the value derives from;
    ``build(dtype)`` is invoked only when no entry exists, the inference
    dtype changed, or any source array was rebound.
    """
    attr = _CACHE_PREFIX + key
    bases = tuple(p.data for p in params)
    dtype = infer_dtype()
    entry = module.__dict__.get(attr)
    if (
        entry is not None
        and entry[1] == dtype
        and len(entry[0]) == len(bases)
        and all(a is b for a, b in zip(entry[0], bases))
    ):
        return entry[2]
    value = build(dtype)
    module.__dict__[attr] = (bases, dtype, value)
    return value


def invalidate_caches(module) -> None:
    """Drop every cached weight cast below ``module`` (recursive).

    Only needed after *in-place* mutation of ``param.data``; rebinding
    invalidates automatically.
    """
    for key in [k for k in module.__dict__ if k.startswith(_CACHE_PREFIX)]:
        del module.__dict__[key]
    for child in module.children():
        invalidate_caches(child)


# ----------------------------------------------------------------------
# Op-profiler hook.  ``repro.obs.autograd`` installs/clears this when the
# op profiler toggles; kernels report (name, seconds) so the report can
# render a ``dispatch=infer`` share line.  Disabled residue: one global
# ``None`` check per kernel call.
# ----------------------------------------------------------------------

_PROFILE_HOOK: Callable[[str, float], None] | None = None


def _profiled(fn: Callable) -> Callable:
    name = fn.__name__

    def wrapper(*args, **kwargs):
        hook = _PROFILE_HOOK
        if hook is None:
            return fn(*args, **kwargs)
        start = time.perf_counter()
        out = fn(*args, **kwargs)
        hook(name, time.perf_counter() - start)
        return out

    wrapper.__name__ = name
    wrapper.__doc__ = fn.__doc__
    wrapper.__wrapped__ = fn
    return wrapper


# ----------------------------------------------------------------------
# ndarray kernels.  Numerics mirror the Tensor ops (same stable single-exp
# sigmoid, same max-shifted softmax) so fast-vs-tape drift is pure dtype
# rounding, bounded by the differential oracle.
# ----------------------------------------------------------------------


def sigmoid_nd(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic on a raw array (mirrors Tensor.sigmoid)."""
    decay = np.abs(x)
    np.negative(decay, out=decay)
    np.exp(decay, out=decay)
    out = np.where(x >= 0, x.dtype.type(1.0), decay)
    decay += x.dtype.type(1.0)
    np.divide(out, decay, out=out)
    return out


def _sigmoid_inplace(x: np.ndarray) -> None:
    """In-place logistic ``1 / (1 + exp(-x))`` — four allocation-free ufuncs.

    The direct form trades the stable branch of :func:`sigmoid_nd` for two
    fewer ufunc calls and zero temporaries; at serving shapes the scan's
    per-step arrays are tiny, so call count — not FLOPs — is the cost.
    Overflow for strongly negative inputs is benign (``exp -> inf`` then
    ``1/inf -> 0``, the exact saturation value); callers wrap the loop in
    ``np.errstate(over="ignore")``.  Agreement with the stable form is a
    couple of ULPs, covered by the differential-oracle budgets.
    """
    np.negative(x, out=x)
    np.exp(x, out=x)
    x += x.dtype.type(1.0)
    np.reciprocal(x, out=x)


def relu_nd(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, x.dtype.type(0.0))


def softmax_nd(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def log_softmax_nd(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    shifted -= log_z
    return shifted


def masked_softmax_nd(
    x: np.ndarray, mask: np.ndarray, axis: int = -1
) -> np.ndarray:
    """Softmax with masked positions zeroed (mirrors functional.masked_softmax)."""
    mask = np.broadcast_to(np.asarray(mask, dtype=bool), x.shape)
    neg = np.where(mask, x.dtype.type(0.0), x.dtype.type(-1e30))
    out = softmax_nd(x + neg, axis=axis)
    any_valid = mask.any(axis=axis, keepdims=True)
    out *= any_valid
    return out


@_profiled
def layer_norm_nd(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float
) -> np.ndarray:
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=-1, keepdims=True)
    var += x.dtype.type(eps)
    centered *= var ** x.dtype.type(-0.5)
    centered *= gamma
    centered += beta
    return centered


@_profiled
def linear_nd(
    x: np.ndarray, weight_t: np.ndarray, bias: np.ndarray | None
) -> np.ndarray:
    out = x @ weight_t
    if bias is not None:
        out += bias
    return out


# ----------------------------------------------------------------------
# Recurrent scan kernels.
#
# The LSTM weights are reordered once at cast time from the training
# packing [input, forget, cell, output] to [input, forget, output, cell],
# making the three sigmoid gates one contiguous block — the per-step
# ``np.concatenate`` of the tape kernels disappears.  GRU gates
# [reset, update, new] already have their sigmoid pair contiguous.
#
# Both scans accept arbitrary leading batch dimensions: a Bi-LSTM stacks
# its two directions into a (2, B, T, 4H) input with (2, H, 4H) weights
# and runs ONE scan whose per-step recurrent matmul batches over the
# direction axis — halving the sequential Python loop, the dominant cost
# at serving shapes.  (When no mask is in play, BiLSTM.infer goes further
# and packs both directions into the *hidden* axis with a block-diagonal
# recurrent matrix, turning the per-step matmul 2-D; see
# layers/recurrent.py.)  Inside the loops the sigmoid is the direct
# in-place form (:func:`_sigmoid_inplace`), not the stable branch of
# :func:`sigmoid_nd` — a couple of ULPs apart, bounded by the oracle.
# ----------------------------------------------------------------------


def _lstm_gate_order(hidden: int) -> np.ndarray:
    """Index permutation [i, f, g, o] -> [i, f, o, g] on a 4H gate axis."""
    block = np.arange(hidden)
    return np.concatenate(
        [block, hidden + block, 3 * hidden + block, 2 * hidden + block]
    )


def lstm_infer_weights(cell) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(w_ih^T, bias, w_hh^T) cast to the inference dtype, gates reordered.

    Cached on ``cell`` (an :class:`~repro.nn.layers.recurrent.LSTMCell`)
    until its parameters are rebound.
    """

    def build(dtype):
        perm = _lstm_gate_order(cell.hidden_size)
        w_ih_t = np.ascontiguousarray(cell.w_ih.data[perm].T, dtype=dtype)
        w_hh_t = np.ascontiguousarray(cell.w_hh.data[perm].T, dtype=dtype)
        bias = np.ascontiguousarray(cell.bias.data[perm], dtype=dtype)
        return w_ih_t, bias, w_hh_t

    return cached_weights(
        cell, "lstm", (cell.w_ih, cell.w_hh, cell.bias), build
    )


def gru_infer_weights(cell) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(w_ih^T, bias, w_hh^T) cast to the inference dtype ([r, u, n] kept)."""

    def build(dtype):
        w_ih_t = np.ascontiguousarray(cell.w_ih.data.T, dtype=dtype)
        w_hh_t = np.ascontiguousarray(cell.w_hh.data.T, dtype=dtype)
        bias = np.ascontiguousarray(cell.bias.data, dtype=dtype)
        return w_ih_t, bias, w_hh_t

    return cached_weights(
        cell, "gru", (cell.w_ih, cell.w_hh, cell.bias), build
    )


def _time_major(x: np.ndarray) -> np.ndarray:
    """(..., T, D) -> contiguous (T, ..., D) so per-step slices are cheap."""
    return np.ascontiguousarray(np.moveaxis(x, -2, 0))


def _effective_mask(mask: np.ndarray | None) -> np.ndarray | None:
    if mask is None:
        return None
    mask = np.asarray(mask, dtype=bool)
    # Fully-valid masks (the common serving case: fixed-length candidate
    # lists) skip the per-step blend entirely.
    if mask.all():
        return None
    return mask


@_profiled
def lstm_scan_infer(
    gi: np.ndarray, w_hh_t: np.ndarray, mask: np.ndarray | None = None
) -> np.ndarray:
    """Inference LSTM scan on raw arrays (zero initial state).

    ``gi`` is (..., T, 4H) input pre-activations with gates packed
    [input, forget, output, cell] (see :func:`lstm_infer_weights`);
    ``w_hh_t`` is (..., H, 4H) so the recurrent matmul broadcasts over any
    leading direction/batch axes.  Returns (..., T, H) hidden states
    (post-mask; padded steps carry the previous state).
    """
    hs = gi.shape[-1] // 4
    lead = gi.shape[:-2]
    steps = gi.shape[-2]
    gi_t = _time_major(gi)
    mask = _effective_mask(mask)
    mask_t = None if mask is None else np.moveaxis(mask, -1, 0)
    dt = gi.dtype
    h: np.ndarray = np.zeros(lead + (hs,), dtype=dt)
    c = np.zeros(lead + (hs,), dtype=dt)
    out = np.empty((steps,) + lead + (hs,), dtype=dt)
    # Scratch and gate views are bound once; both loops below allocate
    # nothing — every ufunc writes a reused buffer, and the new hidden
    # state lands directly in its ``out[t]`` slot (unmasked) or a swap
    # buffer (masked).  At serving shapes the per-step arrays are tiny,
    # so allocator traffic and ufunc call count — not FLOPs — set the
    # scan's cost.
    z = np.empty(lead + (4 * hs,), dtype=dt)
    sig = z[..., : 3 * hs]
    gate_i = z[..., :hs]
    gate_f = z[..., hs : 2 * hs]
    gate_o = z[..., 2 * hs : 3 * hs]
    gate_g = z[..., 3 * hs :]
    g = np.empty(lead + (hs,), dtype=dt)
    # The loop body is the whole serving cost at T=200: ufunc lookups are
    # hoisted to locals, the sigmoid is inlined (see _sigmoid_inplace for
    # the form and the overflow note), and zip() hands out the per-step
    # views without integer indexing.
    mm, neg, exp, rec, tanh = np.matmul, np.negative, np.exp, np.reciprocal, np.tanh
    one = dt.type(1.0)
    with np.errstate(over="ignore"):  # see _sigmoid_inplace
        if mask_t is None:
            for o, a in zip(out, gi_t):
                mm(h, w_hh_t, out=z)
                z += a
                neg(sig, out=sig)
                exp(sig, out=sig)
                sig += one
                rec(sig, out=sig)
                tanh(gate_g, out=g)
                c *= gate_f
                g *= gate_i
                c += g
                h = o
                tanh(c, out=h)
                h *= gate_o
        else:
            # Padded steps carry the previous state: compute into swap
            # buffers, then copy the previous h/c back over masked rows
            # (np.copyto with where= is np.where without the allocation).
            nk_t = ~mask_t
            hb = np.empty(lead + (hs,), dtype=dt)
            cb = np.empty(lead + (hs,), dtype=dt)
            for o, a, skip in zip(out, gi_t, nk_t):
                mm(h, w_hh_t, out=z)
                z += a
                neg(sig, out=sig)
                exp(sig, out=sig)
                sig += one
                rec(sig, out=sig)
                tanh(gate_g, out=g)
                np.multiply(gate_f, c, out=cb)
                g *= gate_i
                cb += g
                tanh(cb, out=hb)
                hb *= gate_o
                skip = skip[..., None]
                np.copyto(hb, h, where=skip)
                np.copyto(cb, c, where=skip)
                o[...] = hb
                h, hb = hb, h
                c, cb = cb, c
    return np.moveaxis(out, 0, -2)


@_profiled
def gru_scan_infer(
    gi: np.ndarray, w_hh_t: np.ndarray, mask: np.ndarray | None = None
) -> np.ndarray:
    """Inference GRU scan on raw arrays (zero initial state).

    ``gi`` is (..., T, 3H) input pre-activations packed [reset, update,
    new]; ``w_hh_t`` is (..., H, 3H).  Returns (..., T, H).
    """
    hs = gi.shape[-1] // 3
    lead = gi.shape[:-2]
    steps = gi.shape[-2]
    gi_t = _time_major(gi)
    mask = _effective_mask(mask)
    mask_t = None if mask is None else np.moveaxis(mask, -1, 0)
    dt = gi.dtype
    h: np.ndarray = np.zeros(lead + (hs,), dtype=dt)
    out = np.empty((steps,) + lead + (hs,), dtype=dt)
    one = dt.type(1.0)
    # Allocation-free loop buffers, mirroring lstm_scan_infer.
    gh = np.empty(lead + (3 * hs,), dtype=dt)
    ru = np.empty(lead + (2 * hs,), dtype=dt)
    r = ru[..., :hs]
    u = ru[..., hs:]
    n = np.empty(lead + (hs,), dtype=dt)
    gh_ru = gh[..., : 2 * hs]
    gh_n = gh[..., 2 * hs :]
    # Same loop treatment as lstm_scan_infer: local ufuncs, inlined
    # sigmoid, zip-provided per-step views.
    mm, neg, exp, rec, tanh = np.matmul, np.negative, np.exp, np.reciprocal, np.tanh
    with np.errstate(over="ignore"):  # see _sigmoid_inplace
        if mask_t is None:
            for o, a in zip(out, gi_t):
                mm(h, w_hh_t, out=gh)
                np.add(a[..., : 2 * hs], gh_ru, out=ru)
                neg(ru, out=ru)
                exp(ru, out=ru)
                ru += one
                rec(ru, out=ru)
                np.multiply(r, gh_n, out=n)
                n += a[..., 2 * hs :]
                tanh(n, out=n)
                np.subtract(one, u, out=r)  # r is dead past n; reuse as 1-u
                n *= r
                h_prev = h
                h = o
                np.multiply(u, h_prev, out=h)
                h += n
        else:
            nk_t = ~mask_t
            hb = np.empty(lead + (hs,), dtype=dt)
            for o, a, skip in zip(out, gi_t, nk_t):
                mm(h, w_hh_t, out=gh)
                np.add(a[..., : 2 * hs], gh_ru, out=ru)
                neg(ru, out=ru)
                exp(ru, out=ru)
                ru += one
                rec(ru, out=ru)
                np.multiply(r, gh_n, out=n)
                n += a[..., 2 * hs :]
                tanh(n, out=n)
                np.subtract(one, u, out=r)
                n *= r
                np.multiply(u, h, out=hb)
                hb += n
                np.copyto(hb, h, where=skip[..., None])
                o[...] = hb
                h, hb = hb, h
    return np.moveaxis(out, 0, -2)


# ----------------------------------------------------------------------
# Differential-oracle twin cases.
#
# Mirrors ``repro.nn.kernels.ORACLE_CASES``: every fused kernel registers
# an inference twin here so ``repro.testing.oracle`` can replay the
# tape-free path against the float64 tape reference with explicit
# tolerance / ULP budgets (the budgets live in the oracle, the cases
# here).  ``build(rng)`` returns ``(reference_fn, infer_fn, arrays,
# input_names)``: ``reference_fn`` consumes float64 arrays through the
# tape path, ``infer_fn`` consumes arrays pre-cast to the inference
# dtype through the production kernels above.
# ----------------------------------------------------------------------

INFER_CASES: dict[str, object] = {}


def register_infer_case(name: str, build) -> None:
    """Register the inference-twin differential case for a kernel."""
    INFER_CASES[name] = build


def _build_lstm_cell_infer_case(rng):
    from .layers.recurrent import _lstm_step
    from .tensor import Tensor, no_grad

    batch, hidden = 3, 4
    gates = rng.normal(size=(batch, 4 * hidden)) * 0.8
    mask = rng.random(batch) < 0.75
    mask[0] = True

    def reference(gates_a):
        with no_grad():
            zero = Tensor(np.zeros((batch, hidden)))
            h_new, _ = _lstm_step(Tensor(gates_a), zero, zero, mask)
        return h_new.data

    def fast(gates_a):
        # The production cell body lives inside the scan: a T=1 scan with
        # zero recurrent weights replays it (zero initial state).
        perm = _lstm_gate_order(hidden)
        gi = np.ascontiguousarray(gates_a[:, None, perm])
        w_hh_t = np.zeros((hidden, 4 * hidden), dtype=gi.dtype)
        return lstm_scan_infer(gi, w_hh_t, mask[:, None])[:, 0, :]

    return reference, fast, (gates,), ("gates",)


def _build_gru_cell_infer_case(rng):
    from .layers.recurrent import _gru_step
    from .tensor import Tensor, no_grad

    batch, hidden = 3, 4
    gi = rng.normal(size=(batch, 3 * hidden)) * 0.8
    mask = rng.random(batch) < 0.75
    mask[0] = True

    def reference(gi_a):
        with no_grad():
            h = Tensor(np.zeros((batch, hidden)))
            gh = Tensor(np.zeros((batch, 3 * hidden)))
            out = _gru_step(Tensor(gi_a), gh, h, mask)
        return out.data

    def fast(gi_a):
        w_hh_t = np.zeros((hidden, 3 * hidden), dtype=gi_a.dtype)
        return gru_scan_infer(gi_a[:, None, :], w_hh_t, mask[:, None])[:, 0, :]

    return reference, fast, (gi,), ("gi",)


def _build_lstm_scan_infer_case(rng):
    from .tensor import Tensor, no_grad

    batch, time_steps, hidden = 2, 5, 3
    gi = rng.normal(size=(batch, time_steps, 4 * hidden)) * 0.8
    w_hh = rng.normal(size=(4 * hidden, hidden)) * 0.4
    mask = rng.random((batch, time_steps)) < 0.8
    mask[:, 0] = True

    def reference(gi_a, w_a):
        with no_grad():
            out = Tensor.lstm_scan_fused(Tensor(gi_a), Tensor(w_a), mask)
        return out.data

    def fast(gi_a, w_a):
        perm = _lstm_gate_order(hidden)
        return lstm_scan_infer(
            np.ascontiguousarray(gi_a[..., perm]),
            np.ascontiguousarray(w_a[perm].T),
            mask,
        )

    return reference, fast, (gi, w_hh), ("gi", "w_hh")


def _build_gru_scan_infer_case(rng):
    from .tensor import Tensor, no_grad

    batch, time_steps, hidden = 2, 5, 3
    gi = rng.normal(size=(batch, time_steps, 3 * hidden)) * 0.8
    w_hh = rng.normal(size=(3 * hidden, hidden)) * 0.4
    mask = rng.random((batch, time_steps)) < 0.8
    mask[:, 0] = True

    def reference(gi_a, w_a):
        with no_grad():
            out = Tensor.gru_scan_fused(Tensor(gi_a), Tensor(w_a), mask)
        return out.data

    def fast(gi_a, w_a):
        return gru_scan_infer(gi_a, np.ascontiguousarray(w_a.T), mask)

    return reference, fast, (gi, w_hh), ("gi", "w_hh")


def _build_sigmoid_infer_case(rng):
    from .tensor import Tensor, no_grad

    x = rng.normal(size=(4, 7)) * 3.0

    def reference(x_a):
        with no_grad():
            return Tensor(x_a).sigmoid().data

    return reference, sigmoid_nd, (x,), ("x",)


def _build_softmax_infer_case(rng):
    from .tensor import Tensor, no_grad

    x = rng.normal(size=(4, 7)) * 3.0

    def reference(x_a):
        with no_grad():
            return Tensor(x_a).softmax(axis=-1).data

    return reference, softmax_nd, (x,), ("x",)


def _build_log_softmax_infer_case(rng):
    from .tensor import Tensor, no_grad

    x = rng.normal(size=(4, 7)) * 3.0

    def reference(x_a):
        with no_grad():
            return Tensor(x_a).log_softmax(axis=-1).data

    return reference, log_softmax_nd, (x,), ("x",)


def _build_masked_softmax_infer_case(rng):
    from . import functional as F
    from .tensor import Tensor, no_grad

    x = rng.normal(size=(4, 7)) * 3.0
    mask = rng.random((4, 7)) < 0.7
    mask[:, 0] = True
    mask[2] = False  # one fully-masked row exercises the zeroing branch

    def reference(x_a):
        with no_grad():
            return F.masked_softmax(Tensor(x_a), mask, axis=-1).data

    def fast(x_a):
        return masked_softmax_nd(x_a, mask, axis=-1)

    return reference, fast, (x,), ("x",)


def _build_layer_norm_infer_case(rng):
    from .layers.normalization import LayerNorm
    from .tensor import Tensor, no_grad

    dim = 6
    x = rng.normal(size=(3, 5, dim)) * 2.0
    layer = LayerNorm(dim)
    layer.gamma.data = rng.normal(size=dim) * 0.5 + 1.0
    layer.beta.data = rng.normal(size=dim) * 0.1

    def reference(x_a):
        with no_grad():
            return layer(Tensor(x_a)).data

    def fast(x_a):
        gamma = layer.gamma.data.astype(x_a.dtype)
        beta = layer.beta.data.astype(x_a.dtype)
        return layer_norm_nd(x_a, gamma, beta, layer.eps)

    return reference, fast, (x,), ("x",)


def _build_linear_infer_case(rng):
    from .tensor import Tensor, no_grad

    weight = rng.normal(size=(5, 8)) * 0.4
    bias = rng.normal(size=5) * 0.2
    x = rng.normal(size=(3, 8))

    def reference(x_a):
        with no_grad():
            return (Tensor(x_a) @ Tensor(weight.T) + Tensor(bias)).data

    def fast(x_a):
        return linear_nd(
            x_a,
            np.ascontiguousarray(weight.T, dtype=x_a.dtype),
            bias.astype(x_a.dtype),
        )

    return reference, fast, (x,), ("x",)


register_infer_case("lstm_cell_fused", _build_lstm_cell_infer_case)
register_infer_case("gru_cell_fused", _build_gru_cell_infer_case)
register_infer_case("lstm_scan_fused", _build_lstm_scan_infer_case)
register_infer_case("gru_scan_fused", _build_gru_scan_infer_case)
register_infer_case("sigmoid_nd", _build_sigmoid_infer_case)
register_infer_case("softmax_nd", _build_softmax_infer_case)
register_infer_case("log_softmax_nd", _build_log_softmax_infer_case)
register_infer_case("masked_softmax_nd", _build_masked_softmax_infer_case)
register_infer_case("layer_norm_nd", _build_layer_norm_infer_case)
register_infer_case("linear_nd", _build_linear_infer_case)
