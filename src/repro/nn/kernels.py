"""Fused recurrent kernels: single-node LSTM/GRU steps with analytic backward.

The composed-op recurrent cells in ``repro.nn.layers.recurrent`` build ~10
tiny autograd nodes per timestep (four gate slices, three sigmoids, a tanh,
and the elementwise state update), each carrying a Python closure and a
full-array allocation in backward.  The kernels here collapse one whole
timestep into a single graph node per output: the forward runs the gate
nonlinearities and state update in vectorized numpy, caches exactly the
activations the backward needs, and the backward applies the closed-form
gradient of the full step in one shot.  See DESIGN.md ("Fused recurrent
kernels") for the equivalence argument.

Both kernels fold the padding mask into the step: where ``mask_t`` is
``False`` the previous state is carried through unchanged and the incoming
gradient is routed straight to the previous state, matching the composed
``new * keep + old * (1 - keep)`` formulation bit for bit (the mask is 0/1
so the blend is exact).

The fused path is on by default; set the environment variable
``REPRO_NN_FUSED=0`` (or call :func:`set_fused`) to fall back to the
composed-op graph — both paths produce bitwise-identical forward values and
gradients that agree to ~1e-12 (they differ only in floating-point
summation order inside backward).

The ops are registered on :class:`Tensor` via
:func:`repro.nn.tensor.register_custom_op` so the opt-in op profiler
(``repro.obs.autograd``) attributes their forward and backward time under
``lstm_cell_fused`` / ``gru_cell_fused``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

from .tensor import Tensor, as_tensor, register_custom_op

__all__ = [
    "lstm_cell_fused",
    "gru_cell_fused",
    "lstm_scan_fused",
    "gru_scan_fused",
    "time_unbind",
    "fused_enabled",
    "set_fused",
    "use_fused",
    "zero_state",
    "ORACLE_CASES",
    "register_oracle_case",
]

# ----------------------------------------------------------------------
# Escape hatch: REPRO_NN_FUSED=0 (env) or set_fused(False) (module flag)
# falls back to the composed-op graph everywhere the layers dispatch.
# ----------------------------------------------------------------------

_FUSED_OVERRIDE: bool | None = None


def fused_enabled() -> bool:
    """Whether recurrent layers should use the fused kernels."""
    if _FUSED_OVERRIDE is not None:
        return _FUSED_OVERRIDE
    return os.environ.get("REPRO_NN_FUSED", "1").lower() not in ("0", "false", "no")


def set_fused(value: bool | None) -> None:
    """Force the fused path on/off; ``None`` restores env-var control."""
    global _FUSED_OVERRIDE
    _FUSED_OVERRIDE = value


@contextmanager
def use_fused(value: bool):
    """Temporarily force the fused (or composed) path within a block."""
    previous = _FUSED_OVERRIDE
    set_fused(value)
    try:
        yield
    finally:
        set_fused(previous)


# ----------------------------------------------------------------------
# Cached zero initial states.  Every sequence (and bare cell call with
# ``state=None``) used to allocate two fresh (batch, hidden) zero tensors;
# the state is only ever *read* (the recurrence writes to new tensors), so
# a per-shape cache of read-only constants is safe to share.
# ----------------------------------------------------------------------

_ZERO_STATE_CACHE: dict[tuple[int, ...], Tensor] = {}


def zero_state(*shape: int) -> Tensor:
    """A cached, read-only all-zeros constant tensor of ``shape``."""
    cached = _ZERO_STATE_CACHE.get(shape)
    if cached is None:
        data = np.zeros(shape)
        data.flags.writeable = False
        cached = _ZERO_STATE_CACHE[shape] = Tensor(data)
    return cached


# ----------------------------------------------------------------------
# Shared numerics.  _sigmoid mirrors Tensor.sigmoid exactly (same single
# exp and blend) so fused and composed forwards are bitwise equal.
# ----------------------------------------------------------------------


def _sigmoid(x: np.ndarray) -> np.ndarray:
    decay = np.abs(x)
    np.negative(decay, out=decay)
    np.exp(decay, out=decay)
    numerator = np.where(x >= 0, 1.0, decay)
    np.add(decay, 1.0, out=decay)
    np.divide(numerator, decay, out=numerator)
    return numerator


def _keep_column(mask_t) -> np.ndarray | None:
    """(B, 1) float 0/1 column for a (B,) step mask, or None."""
    if mask_t is None:
        return None
    return np.asarray(mask_t, dtype=np.float64)[:, None]


# ----------------------------------------------------------------------
# Fused LSTM step
# ----------------------------------------------------------------------


def lstm_cell_fused(
    gates: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    mask_t: np.ndarray | None = None,
) -> tuple[Tensor, Tensor]:
    """One LSTM timestep as a fused autograd node pair.

    Parameters
    ----------
    gates:
        (B, 4H) pre-activation gate matrix ``x W_ih^T + h W_hh^T + b``,
        packed ``[input, forget, cell, output]`` along the last axis.
    h_prev, c_prev:
        (B, H) previous hidden and cell state.
    mask_t:
        Optional (B,) validity mask; padded rows carry the previous state.

    Returns
    -------
    ``(h_t, c_t)`` — two output tensors sharing the cached activations;
    their backward closures each scatter the closed-form step gradient into
    ``gates``/``h_prev``/``c_prev`` (gradients from both outputs add, which
    is exactly the chain rule for the two uses of the shared internals).
    """
    gates = as_tensor(gates)
    h_prev = as_tensor(h_prev)
    c_prev = as_tensor(c_prev)
    z = gates.data
    hs = z.shape[-1] // 4
    # One sigmoid pass over the three sigmoid gates (i, f, o packed into a
    # contiguous scratch block) instead of three separate ufunc chains.
    act = _sigmoid(np.concatenate((z[:, : 2 * hs], z[:, 3 * hs :]), axis=1))
    i = act[:, :hs]
    f = act[:, hs : 2 * hs]
    o = act[:, 2 * hs :]
    g = np.tanh(z[:, 2 * hs : 3 * hs])
    c_new = f * c_prev.data + i * g
    tanh_c = np.tanh(c_new)
    h_new = o * tanh_c

    keep = _keep_column(mask_t)
    if keep is None:
        h_out, c_out = h_new, c_new
    else:
        h_out = h_new * keep + h_prev.data * (1.0 - keep)
        c_out = c_new * keep + c_prev.data * (1.0 - keep)
    parents = (gates, h_prev, c_prev)

    # The local gate derivatives are identical for both output closures, so
    # compute them once on first use and share: a (B, 4H) matrix K whose
    # i/f/g slots hold d c_new / d z_gate and whose o slot holds
    # d h_new / d z_o.
    shared: dict[str, np.ndarray] = {}

    def _factors() -> np.ndarray:
        factors = shared.get("K")
        if factors is None:
            factors = np.empty_like(z)
            np.multiply(i * (1.0 - i), g, out=factors[:, :hs])
            np.multiply(f * (1.0 - f), c_prev.data, out=factors[:, hs : 2 * hs])
            np.multiply(1.0 - g * g, i, out=factors[:, 2 * hs : 3 * hs])
            np.multiply(o * (1.0 - o), tanh_c, out=factors[:, 3 * hs :])
            shared["K"] = factors
        return factors

    def backward_h(grad: np.ndarray) -> None:
        if keep is not None:
            h_prev._accumulate_owned(grad * (1.0 - keep))
            grad = grad * keep
        factors = _factors()
        dc = grad * o
        dc *= 1.0 - tanh_c * tanh_c
        dgates = np.empty_like(z)
        np.multiply(factors[:, :hs], dc, out=dgates[:, :hs])
        np.multiply(factors[:, hs : 2 * hs], dc, out=dgates[:, hs : 2 * hs])
        np.multiply(factors[:, 2 * hs : 3 * hs], dc, out=dgates[:, 2 * hs : 3 * hs])
        np.multiply(factors[:, 3 * hs :], grad, out=dgates[:, 3 * hs :])
        gates._accumulate_owned(dgates)
        dc *= f
        c_prev._accumulate_owned(dc)

    def backward_c(grad: np.ndarray) -> None:
        if keep is not None:
            c_prev._accumulate_owned(grad * (1.0 - keep))
            grad = grad * keep
        factors = _factors()
        dgates = np.empty_like(z)
        np.multiply(factors[:, :hs], grad, out=dgates[:, :hs])
        np.multiply(factors[:, hs : 2 * hs], grad, out=dgates[:, hs : 2 * hs])
        np.multiply(factors[:, 2 * hs : 3 * hs], grad, out=dgates[:, 2 * hs : 3 * hs])
        dgates[:, 3 * hs :] = 0.0
        gates._accumulate_owned(dgates)
        c_prev._accumulate_owned(grad * f)

    return (
        Tensor._make(h_out, parents, backward_h),
        Tensor._make(c_out, parents, backward_c),
    )


# ----------------------------------------------------------------------
# Fused GRU step
# ----------------------------------------------------------------------


def gru_cell_fused(
    gi: Tensor,
    gh: Tensor,
    h_prev: Tensor,
    mask_t: np.ndarray | None = None,
) -> Tensor:
    """One GRU timestep as a single fused autograd node.

    Parameters
    ----------
    gi:
        (B, 3H) input pre-activations ``x W_ih^T + b``, packed
        ``[reset, update, new]``.
    gh:
        (B, 3H) recurrent pre-activations ``h_prev W_hh^T`` (kept separate
        because the candidate gate applies the reset gate to its recurrent
        half: ``n = tanh(gi_n + r * gh_n)``).
    h_prev:
        (B, H) previous hidden state.
    mask_t:
        Optional (B,) validity mask; padded rows carry the previous state.
    """
    gi = as_tensor(gi)
    gh = as_tensor(gh)
    h_prev = as_tensor(h_prev)
    a, b = gi.data, gh.data
    hs = a.shape[-1] // 3
    # One sigmoid pass over both sigmoid gates (r, u share a contiguous
    # pre-activation block) instead of two separate ufunc chains.
    ru = _sigmoid(a[:, : 2 * hs] + b[:, : 2 * hs])
    r = ru[:, :hs]
    u = ru[:, hs:]
    gh_n = b[:, 2 * hs :]
    n = np.tanh(a[:, 2 * hs :] + r * gh_n)
    h_new = (1.0 - u) * n + u * h_prev.data

    keep = _keep_column(mask_t)
    h_out = h_new if keep is None else h_new * keep + h_prev.data * (1.0 - keep)

    def backward(grad: np.ndarray) -> None:
        if keep is not None:
            h_prev._accumulate_owned(grad * (1.0 - keep))
            grad = grad * keep
        dpre_n = grad * (1.0 - u)
        dpre_n *= 1.0 - n * n
        du = grad * (h_prev.data - n)
        du *= u
        du *= 1.0 - u
        dr = dpre_n * gh_n
        dr *= r
        dr *= 1.0 - r
        dgi = np.empty_like(a)
        dgi[:, :hs] = dr
        dgi[:, hs : 2 * hs] = du
        dgi[:, 2 * hs :] = dpre_n
        dgh = np.empty_like(a)
        dgh[:, :hs] = dr
        dgh[:, hs : 2 * hs] = du
        np.multiply(dpre_n, r, out=dgh[:, 2 * hs :])
        gi._accumulate_owned(dgi)
        gh._accumulate_owned(dgh)
        h_prev._accumulate_owned(grad * u)

    return Tensor._make(h_out, (gi, gh, h_prev), backward)


# ----------------------------------------------------------------------
# Fused sequence scans: the whole time loop as ONE autograd node.
#
# Even with fused cells, a T-step scan builds ~5 graph nodes per timestep
# (input slice, recurrent matmul, add, cell, stack) and the engine copies
# every first gradient it accumulates.  The scan kernels run the entire
# recurrence — including the recurrent matmul — in plain numpy, cache the
# per-step activations, and replay the closed-form BPTT loop in one
# backward closure.  Initial state is zero, which is what the sequence
# wrappers always use.
# ----------------------------------------------------------------------


def lstm_scan_fused(
    gi: Tensor,
    w_hh: Tensor,
    mask: np.ndarray | None = None,
) -> Tensor:
    """Full LSTM scan as one fused autograd node.

    Parameters
    ----------
    gi:
        (B, T, 4H) input pre-activations ``x W_ih^T + b`` for every step
        (one batched matmul, computed by the caller).
    w_hh:
        (4H, H) recurrent weights; the scan computes ``h W_hh^T`` itself.
    mask:
        Optional (B, T) validity mask; padded steps carry the previous
        state, exactly like the per-step composed graph.

    Returns
    -------
    (B, T, H) hidden states after every step (post-mask).  The final
    hidden state is ``outputs[:, -1, :]`` — padded tails carry it forward.
    """
    gi = as_tensor(gi)
    w_hh = as_tensor(w_hh)
    z_all = gi.data
    batch, time, width = z_all.shape
    hs = width // 4
    w = w_hh.data
    wt = w.T
    h = np.zeros((batch, hs))
    c = np.zeros((batch, hs))
    outputs = np.empty((batch, time, hs))
    cache: list[tuple] = []
    for t in range(time):
        z = z_all[:, t] + h @ wt
        act = _sigmoid(np.concatenate((z[:, : 2 * hs], z[:, 3 * hs :]), axis=1))
        i = act[:, :hs]
        f = act[:, hs : 2 * hs]
        o = act[:, 2 * hs :]
        g = np.tanh(z[:, 2 * hs : 3 * hs])
        c_new = f * c + i * g
        tanh_c = np.tanh(c_new)
        h_new = o * tanh_c
        h_prev, c_prev = h, c
        if mask is None:
            keep = None
            h, c = h_new, c_new
        else:
            keep = np.asarray(mask[:, t], dtype=np.float64)[:, None]
            h = h_new * keep + h_prev * (1.0 - keep)
            c = c_new * keep + c_prev * (1.0 - keep)
        outputs[:, t] = h
        cache.append((act, g, tanh_c, c_prev, h_prev, keep))

    def backward(grad: np.ndarray) -> None:
        dgi = np.empty_like(z_all)
        dw = np.zeros_like(w)
        dh = np.zeros((batch, hs))
        dc = np.zeros((batch, hs))
        for t in range(time - 1, -1, -1):
            act, g, tanh_c, c_prev, h_prev, keep = cache[t]
            i = act[:, :hs]
            f = act[:, hs : 2 * hs]
            o = act[:, 2 * hs :]
            dh_t = grad[:, t] + dh
            dc_t = dc
            if keep is None:
                dh_carry = dc_carry = None
            else:
                dh_carry = dh_t * (1.0 - keep)
                dh_t = dh_t * keep
                dc_carry = dc_t * (1.0 - keep)
                dc_t = dc_t * keep
            dc_total = dc_t + dh_t * o * (1.0 - tanh_c * tanh_c)
            dz = dgi[:, t]
            np.multiply(dc_total * i * (1.0 - i), g, out=dz[:, :hs])
            np.multiply(dc_total * f * (1.0 - f), c_prev, out=dz[:, hs : 2 * hs])
            np.multiply(dc_total * (1.0 - g * g), i, out=dz[:, 2 * hs : 3 * hs])
            np.multiply(dh_t * o * (1.0 - o), tanh_c, out=dz[:, 3 * hs :])
            dh = dz @ w
            if dh_carry is not None:
                dh += dh_carry
            dw += dz.T @ h_prev
            dc = dc_total * f
            if dc_carry is not None:
                dc += dc_carry
        gi._accumulate_owned(dgi)
        w_hh._accumulate_owned(dw)

    return Tensor._make(outputs, (gi, w_hh), backward)


def gru_scan_fused(
    gi: Tensor,
    w_hh: Tensor,
    mask: np.ndarray | None = None,
) -> Tensor:
    """Full GRU scan as one fused autograd node.

    ``gi`` is (B, T, 3H) input pre-activations, ``w_hh`` is (3H, H); the
    scan computes the recurrent pre-activations ``h W_hh^T`` per step and
    returns (B, T, H) hidden states (post-mask, zero initial state).
    """
    gi = as_tensor(gi)
    w_hh = as_tensor(w_hh)
    a_all = gi.data
    batch, time, width = a_all.shape
    hs = width // 3
    w = w_hh.data
    wt = w.T
    h = np.zeros((batch, hs))
    outputs = np.empty((batch, time, hs))
    cache: list[tuple] = []
    for t in range(time):
        a = a_all[:, t]
        b = h @ wt
        ru = _sigmoid(a[:, : 2 * hs] + b[:, : 2 * hs])
        r = ru[:, :hs]
        u = ru[:, hs:]
        gh_n = b[:, 2 * hs :]
        n = np.tanh(a[:, 2 * hs :] + r * gh_n)
        h_prev = h
        h_new = (1.0 - u) * n + u * h_prev
        if mask is None:
            keep = None
            h = h_new
        else:
            keep = np.asarray(mask[:, t], dtype=np.float64)[:, None]
            h = h_new * keep + h_prev * (1.0 - keep)
        outputs[:, t] = h
        cache.append((ru, n, gh_n, h_prev, keep))

    def backward(grad: np.ndarray) -> None:
        dgi = np.empty_like(a_all)
        dw = np.zeros_like(w)
        dh = np.zeros((batch, hs))
        dgh = np.empty((batch, 3 * hs))
        for t in range(time - 1, -1, -1):
            ru, n, gh_n, h_prev, keep = cache[t]
            r = ru[:, :hs]
            u = ru[:, hs:]
            dh_t = grad[:, t] + dh
            if keep is None:
                dh_carry = None
            else:
                dh_carry = dh_t * (1.0 - keep)
                dh_t = dh_t * keep
            dpre_n = dh_t * (1.0 - u)
            dpre_n *= 1.0 - n * n
            du = dh_t * (h_prev - n)
            du *= u
            du *= 1.0 - u
            dr = dpre_n * gh_n
            dr *= r
            dr *= 1.0 - r
            da = dgi[:, t]
            da[:, :hs] = dr
            da[:, hs : 2 * hs] = du
            da[:, 2 * hs :] = dpre_n
            dgh[:, :hs] = dr
            dgh[:, hs : 2 * hs] = du
            np.multiply(dpre_n, r, out=dgh[:, 2 * hs :])
            dh = dgh @ w
            dh += dh_t * u
            if dh_carry is not None:
                dh += dh_carry
            dw += dgh.T @ h_prev
        gi._accumulate_owned(dgi)
        w_hh._accumulate_owned(dw)

    return Tensor._make(outputs, (gi, w_hh), backward)


# ----------------------------------------------------------------------
# Shared-buffer time unbind
# ----------------------------------------------------------------------


def time_unbind(x: Tensor) -> tuple[Tensor, ...]:
    """Split a (B, T, D) tensor into T (B, D) step tensors.

    The composed equivalent — ``x[:, t, :]`` per step — allocates a
    full-size (B, T, D) zero array in *every* step's backward and makes the
    parent sum T of them.  Here all step gradients are written into one
    shared (B, T, D) buffer which is handed to ``x`` exactly once, after
    every step closure has run (the "collector" node sits between ``x`` and
    the steps, so reverse-topological order guarantees it fires last).

    Assumes the graph is backpropagated at most once per forward (true for
    every layer in this codebase, which build a fresh graph per call).
    """
    x = as_tensor(x)
    steps = x.data.shape[1]
    if not x.requires_grad:
        return tuple(Tensor(x.data[:, t]) for t in range(steps))
    buffer = np.zeros_like(x.data)

    def deliver(grad: np.ndarray) -> None:
        # ``grad`` is ``buffer``; if a second backward pass already aliased
        # it into ``x.grad``, the in-place step writes have accumulated.
        if x.grad is not buffer:
            x._accumulate_owned(grad)

    collector = Tensor._make(x.data, (x,), deliver)

    def make_step(t: int) -> Tensor:
        def backward(grad: np.ndarray) -> None:
            buffer[:, t] += grad
            collector.grad = buffer

        return Tensor._make(x.data[:, t], (collector,), backward)

    return tuple(make_step(t) for t in range(steps))


register_custom_op("lstm_cell_fused", lstm_cell_fused)
register_custom_op("gru_cell_fused", gru_cell_fused)
register_custom_op("lstm_scan_fused", lstm_scan_fused)
register_custom_op("gru_scan_fused", gru_scan_fused)
register_custom_op("time_unbind", time_unbind)


# ----------------------------------------------------------------------
# Differential-oracle registration.  Every fused kernel registers a case
# that builds random inputs and a dispatch-sensitive function: run under
# ``use_fused(True)`` it takes the fused kernel, under ``use_fused(False)``
# the composed-op graph of ``repro.nn.layers.recurrent``.  The engine in
# ``repro.testing.oracle`` replays these cases under both paths plus a
# finite-difference oracle; register a case here whenever a new fused op
# lands so it is covered automatically.
#
# A case factory maps an ``np.random.Generator`` to
# ``(fn, input_arrays, input_names)``.
# ----------------------------------------------------------------------

ORACLE_CASES: dict[str, "object"] = {}


def register_oracle_case(name: str, build) -> None:
    """Register the differential-test case factory for a fused kernel."""
    ORACLE_CASES[name] = build


def _step_mask(rng: np.random.Generator, batch: int) -> np.ndarray:
    mask = rng.random(batch) < 0.75
    mask[0] = True  # keep at least one live row so gradients are nonzero
    return mask


def _build_lstm_cell_case(rng):
    from .layers.recurrent import _lstm_step

    batch, hidden = 3, 4
    gates = rng.normal(size=(batch, 4 * hidden)) * 0.8
    h0 = rng.normal(size=(batch, hidden)) * 0.5
    c0 = rng.normal(size=(batch, hidden)) * 0.5
    mask = _step_mask(rng, batch)

    def fn(gates_t, h_t, c_t):
        return _lstm_step(gates_t, h_t, c_t, mask)

    return fn, (gates, h0, c0), ("gates", "h_prev", "c_prev")


def _build_gru_cell_case(rng):
    from .layers.recurrent import _gru_step

    batch, hidden = 3, 4
    gi = rng.normal(size=(batch, 3 * hidden)) * 0.8
    gh = rng.normal(size=(batch, 3 * hidden)) * 0.8
    h0 = rng.normal(size=(batch, hidden)) * 0.5
    mask = _step_mask(rng, batch)

    def fn(gi_t, gh_t, h_t):
        return _gru_step(gi_t, gh_t, h_t, mask)

    return fn, (gi, gh, h0), ("gi", "gh", "h_prev")


def _scan_mask(rng, batch: int, time: int) -> np.ndarray:
    mask = rng.random((batch, time)) < 0.8
    mask[:, 0] = True
    return mask


def _build_lstm_scan_case(rng):
    from .layers.recurrent import _lstm_step, _time_steps

    batch, time, hidden = 2, 4, 3
    gi = rng.normal(size=(batch, time, 4 * hidden)) * 0.8
    w_hh = rng.normal(size=(4 * hidden, hidden)) * 0.4
    mask = _scan_mask(rng, batch, time)

    def fn(gi_t, w_t):
        if fused_enabled():
            return Tensor.lstm_scan_fused(gi_t, w_t, mask)
        steps = _time_steps(gi_t, time)
        h = zero_state(batch, hidden)
        c = zero_state(batch, hidden)
        outputs = []
        for t in range(time):
            gates = steps[t] + h @ w_t.T
            h, c = _lstm_step(gates, h, c, mask[:, t])
            outputs.append(h)
        return Tensor.stack(outputs, axis=1)

    return fn, (gi, w_hh), ("gi", "w_hh")


def _build_gru_scan_case(rng):
    from .layers.recurrent import _gru_step, _time_steps

    batch, time, hidden = 2, 4, 3
    gi = rng.normal(size=(batch, time, 3 * hidden)) * 0.8
    w_hh = rng.normal(size=(3 * hidden, hidden)) * 0.4
    mask = _scan_mask(rng, batch, time)

    def fn(gi_t, w_t):
        if fused_enabled():
            return Tensor.gru_scan_fused(gi_t, w_t, mask)
        steps = _time_steps(gi_t, time)
        h = zero_state(batch, hidden)
        outputs = []
        for t in range(time):
            gh = h @ w_t.T
            h = _gru_step(steps[t], gh, h, mask[:, t])
            outputs.append(h)
        return Tensor.stack(outputs, axis=1)

    return fn, (gi, w_hh), ("gi", "w_hh")


register_oracle_case("lstm_cell_fused", _build_lstm_cell_case)
register_oracle_case("gru_cell_fused", _build_gru_cell_case)
register_oracle_case("lstm_scan_fused", _build_lstm_scan_case)
register_oracle_case("gru_scan_fused", _build_gru_scan_case)
