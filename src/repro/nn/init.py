"""Weight initializers for the ``repro.nn`` substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "orthogonal", "zeros"]


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform, appropriate ahead of ReLU nonlinearities."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def orthogonal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal init (used for recurrent weight matrices)."""
    if len(shape) != 2:
        raise ValueError(f"orthogonal init requires a 2-D shape, got {shape}")
    rows, cols = shape
    a = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return q[:rows, :cols]


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
