"""Save/load module state dicts to ``.npz`` archives.

Archives are written atomically (temp file + fsync + rename, via
:mod:`repro.utils.atomicio`) and carry a format-version field under
``__format_version__``.  Loading a truncated, corrupted, or
wrong/missing-version file raises :class:`CheckpointCorruptError` — a
single typed error naming the path and the reason — instead of leaking a
raw ``zipfile``/``numpy`` traceback from whichever internal read happened
to fail first.
"""

from __future__ import annotations

import zipfile
from pathlib import Path

import numpy as np

from ..utils.atomicio import atomic_savez
from .module import Module

__all__ = [
    "CheckpointCorruptError",
    "FORMAT_VERSION",
    "VERSION_KEY",
    "save_module",
    "load_module",
    "read_state_archive",
]

#: Bumped when the archive layout changes incompatibly.
FORMAT_VERSION = 1
VERSION_KEY = "__format_version__"


class CheckpointCorruptError(RuntimeError):
    """A state archive failed to load: truncated, corrupt, or wrong format."""

    def __init__(self, path: str | Path, reason: str) -> None:
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"corrupt checkpoint {self.path}: {reason}")


def save_module(module: Module, path: str | Path) -> Path:
    """Persist a module's parameters to an ``.npz`` file; returns the path.

    The write is atomic: a crash mid-save leaves any previous file at
    ``path`` intact rather than a torn archive.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    state = dict(module.state_dict())
    state[VERSION_KEY] = np.array(FORMAT_VERSION, dtype=np.int64)
    return atomic_savez(path, state)


def read_state_archive(path: str | Path) -> dict[str, np.ndarray]:
    """Load and validate a :func:`save_module` archive into a state dict.

    Raises :class:`FileNotFoundError` for a missing file and
    :class:`CheckpointCorruptError` for anything unreadable: a truncated
    zip, a non-archive file, a missing version field, or a version this
    code does not understand.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            state = {name: archive[name] for name in archive.files}
    except (OSError, ValueError, EOFError, KeyError, zipfile.BadZipFile) as error:
        # zipfile.BadZipFile covers truncated/garbage containers; numpy raises
        # ValueError for truncated member payloads and non-npy members.
        raise CheckpointCorruptError(
            path, f"unreadable archive ({type(error).__name__}: {error})"
        ) from error
    if VERSION_KEY not in state:
        raise CheckpointCorruptError(
            path, "missing format-version field (file predates v1 or is foreign)"
        )
    version = int(state.pop(VERSION_KEY))
    if version > FORMAT_VERSION:
        raise CheckpointCorruptError(
            path,
            f"format version {version} is newer than supported {FORMAT_VERSION}",
        )
    return state


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``."""
    module.load_state_dict(read_state_archive(path))
    return module
