"""Save/load module state dicts to ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | Path) -> Path:
    """Persist a module's parameters to an ``.npz`` file; returns the path."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    np.savez(path, **{name: array for name, array in state.items()})
    return path


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
    return module
