"""Functional helpers built on :class:`repro.nn.tensor.Tensor`.

These free functions mirror the small subset of ``torch.nn.functional`` used
by RAPID and its baselines: activations, fused losses, and masked softmax
for attention over padded lists.
"""

from __future__ import annotations

import numpy as np

from . import inference
from .tensor import Tensor, as_tensor

__all__ = [
    "sigmoid",
    "tanh",
    "relu",
    "softmax",
    "log_softmax",
    "masked_softmax",
    "binary_cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "dropout",
]

_EPS = 1e-12


def sigmoid(x: Tensor) -> Tensor:
    # ndarray in -> ndarray out: tape-free dispatch for the inference path.
    if isinstance(x, np.ndarray):
        return inference.sigmoid_nd(x)
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    if isinstance(x, np.ndarray):
        return np.tanh(x)
    return as_tensor(x).tanh()


def relu(x: Tensor) -> Tensor:
    if isinstance(x, np.ndarray):
        return inference.relu_nd(x)
    return as_tensor(x).relu()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    if isinstance(x, np.ndarray):
        return inference.softmax_nd(x, axis=axis)
    return as_tensor(x).softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    if isinstance(x, np.ndarray):
        return inference.log_softmax_nd(x, axis=axis)
    return as_tensor(x).log_softmax(axis=axis)


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax over ``axis`` with positions where ``mask`` is False zeroed out.

    ``mask`` is a boolean array broadcastable to ``x.shape``; masked positions
    receive zero probability.  Rows that are fully masked produce zeros rather
    than NaNs.
    """
    if isinstance(x, np.ndarray):
        return inference.masked_softmax_nd(x, mask, axis=axis)
    x = as_tensor(x)
    mask = np.broadcast_to(np.asarray(mask, dtype=bool), x.shape)
    neg_inf = np.where(mask, 0.0, -1e30)
    shifted = x + Tensor(neg_inf)
    out = shifted.softmax(axis=axis)
    # Zero fully-masked rows (softmax of all -1e30 is uniform garbage).
    any_valid = mask.any(axis=axis, keepdims=True)
    return out * Tensor(np.where(any_valid, 1.0, 0.0))


def binary_cross_entropy(
    probs: Tensor, targets: np.ndarray, weight: np.ndarray | None = None
) -> Tensor:
    """Mean binary cross entropy on probabilities (Eq. 11 of the paper)."""
    probs = as_tensor(probs).clip(_EPS, 1.0 - _EPS)
    y = np.asarray(targets, dtype=np.float64)
    loss = -(Tensor(y) * probs.log() + Tensor(1.0 - y) * (1.0 - probs).log())
    if weight is not None:
        loss = loss * Tensor(np.asarray(weight, dtype=np.float64))
        denom = max(float(np.sum(weight)), _EPS)
        return loss.sum() * (1.0 / denom)
    return loss.mean()


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray, weight: np.ndarray | None = None
) -> Tensor:
    """Numerically stable BCE on raw scores: max(x,0) - x*y + log(1+e^-|x|)."""
    logits = as_tensor(logits)
    y = Tensor(np.asarray(targets, dtype=np.float64))
    zeros = Tensor(np.zeros_like(logits.data))
    loss = (
        Tensor.where(logits.data > 0, logits, zeros)
        - logits * y
        + (1.0 + (-logits.abs()).exp()).log()
    )
    if weight is not None:
        loss = loss * Tensor(np.asarray(weight, dtype=np.float64))
        denom = max(float(np.sum(weight)), _EPS)
        return loss.sum() * (1.0 / denom)
    return loss.mean()


def mse_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    pred = as_tensor(pred)
    diff = pred - Tensor(np.asarray(targets, dtype=np.float64))
    return (diff * diff).mean()


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return as_tensor(x)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    keep = rng.random(as_tensor(x).shape) >= p
    scale = 1.0 / (1.0 - p)
    return as_tensor(x) * Tensor(keep * scale)
