"""Module/Parameter abstractions (the ``torch.nn.Module`` analogue).

A :class:`Module` owns :class:`Parameter` leaves and child modules; it can
enumerate its parameters recursively, toggle train/eval mode, zero gradients,
and export/import a flat state dict of numpy arrays.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor, no_grad

__all__ = ["Parameter", "Module"]


def _unwrap(value):
    """Recursively strip :class:`Tensor` wrappers to raw ndarrays."""
    if isinstance(value, Tensor):
        return value.data
    if isinstance(value, tuple):
        return tuple(_unwrap(v) for v in value)
    return value


class Parameter(Tensor):
    """A tensor that is a trainable leaf of a module."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural network components."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def infer(self, *args, **kwargs):
        """Tape-free inference forward; returns raw ndarray(s).

        Hot layers override this with hand-tuned ndarray implementations
        (``repro.nn.inference``).  The default falls back to :meth:`forward`
        under ``no_grad`` — positional ndarray arguments are wrapped as
        Tensors, keyword arguments (masks, flags) pass through untouched,
        and Tensor outputs are unwrapped — so every module is servable on
        the inference path with tape-path-identical float64 numerics even
        before it grows a fast path.
        """
        coerced = tuple(
            Tensor(a) if isinstance(a, np.ndarray) else a for a in args
        )
        with no_grad():
            return _unwrap(self.forward(*coerced, **kwargs))

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all trainable parameters, depth-first, without duplicates."""
        seen: set[int] = set()
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Mode and gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        return OrderedDict(
            (name, param.data.copy()) for name, param in self.named_parameters()
        )

    def load_state_dict(self, state: dict) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, array in state.items():
            param = own[name]
            array = np.asarray(array, dtype=np.float64)
            if array.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.shape}, "
                    f"got {array.shape}"
                )
            param.data = array.copy()
