"""Reverse-mode automatic differentiation on numpy arrays.

This module is the lowest layer of the ``repro.nn`` substrate.  The paper's
implementation uses PyTorch; since PyTorch is not available in this
environment, we implement a small but complete define-by-run autograd engine
with the same semantics needed by RAPID and all the baselines: broadcasting
arithmetic, matrix multiplication, elementwise nonlinearities, reductions,
indexing, concatenation/stacking, and softmax.

Gradients are accumulated in ``Tensor.grad`` by :meth:`Tensor.backward`,
which performs a topological sort of the recorded computation graph and runs
each node's backward closure exactly once.  All backward rules are verified
against central finite differences in ``tests/test_nn_tensor.py``.

Profiling hook: every differentiable op dispatches through the method named
in :data:`PROFILED_OPS`; ``repro.obs.autograd`` instruments exactly that
list (timing forwards and wrapping the ``_backward`` closures each op
registers) when the opt-in op profiler is enabled.  Nothing here is patched
or slowed down unless the profiler is turned on.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "register_custom_op",
    "PROFILED_OPS",
    "op_function",
    "install_op_wrappers",
    "restore_ops",
]

_GRAD_ENABLED = True

# The op-dispatch surface of the autograd engine: one entry per method that
# records a graph node.  ``repro.obs.autograd.enable_op_profiler`` hooks
# these by name; keep this list in sync when adding ops.
PROFILED_OPS: tuple[str, ...] = (
    "__add__",
    "__radd__",
    "__neg__",
    "__sub__",
    "__rsub__",
    "__mul__",
    "__rmul__",
    "__truediv__",
    "__rtruediv__",
    "__pow__",
    "__matmul__",
    "__getitem__",
    "exp",
    "log",
    "tanh",
    "sigmoid",
    "relu",
    "clip",
    "abs",
    "sum",
    "mean",
    "max",
    "reshape",
    "transpose",
    "concatenate",
    "stack",
    "where",
    "softmax",
    "log_softmax",
)


class no_grad:
    """Context manager that disables graph construction (like torch.no_grad)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations are recorded in the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that records operations for backpropagation.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` by default so that
        gradient checks against finite differences are tight.
    requires_grad:
        Whether gradients should flow to this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_note})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Accumulate a gradient buffer whose ownership transfers to us.

        Skips the defensive copy :meth:`_accumulate` makes on first
        accumulation.  Only call with a float64 array the caller freshly
        allocated and will never touch again (the fused kernels use this
        for their scratch gradient buffers).
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.shape)
            )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            if a.ndim == 1:  # (k,) @ (..., k, n) -> (..., n)
                ga = (grad[..., None, :] * b).sum(axis=-1)
                self._accumulate(_unbroadcast(ga, a.shape))
                gb = a[:, None] * grad[..., None, :]
                other._accumulate(_unbroadcast(gb, b.shape))
                return
            if b.ndim == 1:  # (..., m, k) @ (k,) -> (..., m)
                ga = grad[..., :, None] * b
                self._accumulate(_unbroadcast(ga, a.shape))
                gb = (grad[..., :, None] * a).sum(axis=tuple(range(a.ndim - 1)))
                other._accumulate(_unbroadcast(gb, b.shape))
                return
            ga = grad @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(_unbroadcast(ga, a.shape))
            other._accumulate(_unbroadcast(gb, b.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic: exp(-|x|) never overflows, and the
        # single exp + blend is ~3x cheaper than evaluating both branches.
        decay = np.abs(self.data)
        np.negative(decay, out=decay)
        np.exp(decay, out=decay)
        out_data = np.where(self.data >= 0, 1.0, decay)
        np.add(decay, 1.0, out=decay)
        np.divide(out_data, decay, out=out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            full = self.data.max(axis=axis, keepdims=True)
            mask = self.data == full
            mask = mask / mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        basic = _is_basic_index(key)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            if basic:
                # Basic indexing selects each element at most once, so the
                # scatter is a plain (much faster) sliced assignment.
                full[key] = grad
            else:
                np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

        return Tensor._make(out_data, tensors, backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            pieces = np.moveaxis(grad, axis, 0)
            for tensor, piece in zip(tensors, pieces):
                tensor._accumulate(piece)

        return Tensor._make(out_data, tensors, backward)

    @staticmethod
    def where(condition: np.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        a, b = as_tensor(a), as_tensor(b)
        cond = np.asarray(condition, dtype=bool)
        out_data = np.where(cond, a.data, b.data)

        def backward(grad: np.ndarray) -> None:
            a._accumulate(_unbroadcast(grad * cond, a.shape))
            b._accumulate(_unbroadcast(grad * (~cond), b.shape))

        return Tensor._make(out_data, (a, b), backward)

    # ------------------------------------------------------------------
    # Softmax (fused for numerical stability)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))

        return Tensor._make(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_z
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return Tensor._make(out_data, (self,), backward)


def _is_basic_index(key) -> bool:
    """True when ``key`` triggers numpy *basic* indexing (no repeats possible)."""
    if isinstance(key, tuple):
        return all(_is_basic_index(part) for part in key)
    return key is None or key is Ellipsis or isinstance(key, (int, np.integer, slice))


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def op_function(name: str) -> tuple[Callable, bool]:
    """Return ``(function, is_static)`` for a :data:`PROFILED_OPS` entry.

    This is the dispatch surface shared by every op-level instrumentation
    layer (the ``repro.obs.autograd`` profiler and the
    ``repro.testing.sanitize`` numerical sanitizer): hooks read the current
    attribute — which may already be another layer's wrapper, so stacked
    instrumentation composes — and re-install it via
    :func:`install_op_wrappers` / :func:`restore_ops`.
    """
    raw = Tensor.__dict__[name]
    is_static = isinstance(raw, staticmethod)
    return (raw.__func__ if is_static else raw), is_static


def install_op_wrappers(
    make_wrapper: Callable[[str, Callable], Callable],
) -> dict[str, object]:
    """Wrap every op in :data:`PROFILED_OPS` with ``make_wrapper(name, fn)``.

    Returns the mapping of raw attribute objects (staticmethods preserved)
    to hand back to :func:`restore_ops`.  Wrapping is not idempotent by
    itself — callers guard with their own enabled flag.
    """
    originals: dict[str, object] = {}
    for name in PROFILED_OPS:
        originals[name] = Tensor.__dict__[name]
        fn, is_static = op_function(name)
        wrapped = make_wrapper(name, fn)
        setattr(Tensor, name, staticmethod(wrapped) if is_static else wrapped)
    return originals


def restore_ops(originals: dict[str, object]) -> None:
    """Re-install the raw attributes captured by :func:`install_op_wrappers`."""
    for name, original in originals.items():
        setattr(Tensor, name, original)


def register_custom_op(name: str, fn: Callable) -> None:
    """Attach a fused op to :class:`Tensor` and the profiler surface.

    Custom ops (e.g. the fused recurrent kernels in ``repro.nn.kernels``)
    are implemented outside this module but must dispatch through an
    attribute of :class:`Tensor` so that ``repro.obs.autograd`` can hook
    them by name exactly like the built-in primitives.  The op is installed
    as a staticmethod and appended to :data:`PROFILED_OPS`; ``fn`` should
    build its output(s) with :meth:`Tensor._make` so the backward closure
    participates in profiling.
    """
    global PROFILED_OPS
    setattr(Tensor, name, staticmethod(fn))
    if name not in PROFILED_OPS:
        PROFILED_OPS = PROFILED_OPS + (name,)
