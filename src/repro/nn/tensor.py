"""Reverse-mode automatic differentiation on numpy arrays.

This module is the lowest layer of the ``repro.nn`` substrate.  The paper's
implementation uses PyTorch; since PyTorch is not available in this
environment, we implement a small but complete define-by-run autograd engine
with the same semantics needed by RAPID and all the baselines: broadcasting
arithmetic, matrix multiplication, elementwise nonlinearities, reductions,
indexing, concatenation/stacking, and softmax.

Dispatch is table-driven: every differentiable primitive is an
:class:`OpDef` — a pure ndarray ``forward`` plus a ``vjp`` (vector-Jacobian
product) — registered in :data:`OP_TABLE` under its op name.  The
:class:`Tensor` methods are thin dispatchers through :func:`Tensor._apply`,
which runs the forward on the raw arrays and only materialises a graph node
(parents + backward closure) when a tape is active; with gradients disabled
the result passes straight through with zero autograd bookkeeping.
Composite ops (``mean``, ``__sub__``, ``sqrt``) stay compositions of
primitives so their backward rules need no separate entries.

Gradients are accumulated in ``Tensor.grad`` by :meth:`Tensor.backward`,
which performs a topological sort of the recorded computation graph and runs
each node's backward closure exactly once.  All backward rules are verified
against central finite differences in ``tests/test_nn_tensor.py``.

Profiling hook: every differentiable op dispatches through the method named
in :data:`PROFILED_OPS`; ``repro.obs.autograd`` instruments exactly that
list (timing forwards and wrapping the ``_backward`` closures each op
registers) when the opt-in op profiler is enabled.  Nothing here is patched
or slowed down unless the profiler is turned on.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "register_custom_op",
    "OpDef",
    "OP_TABLE",
    "register_op",
    "PROFILED_OPS",
    "op_function",
    "install_op_wrappers",
    "restore_ops",
]


class _GradState(threading.local):
    """Per-thread autograd switch (fresh ``enabled=True`` in every thread)."""

    def __init__(self) -> None:
        self.enabled = True


_grad_state = _GradState()

# The op-dispatch surface of the autograd engine: one entry per method that
# records a graph node.  ``repro.obs.autograd.enable_op_profiler`` hooks
# these by name; keep this list in sync when adding ops.
PROFILED_OPS: tuple[str, ...] = (
    "__add__",
    "__radd__",
    "__neg__",
    "__sub__",
    "__rsub__",
    "__mul__",
    "__rmul__",
    "__truediv__",
    "__rtruediv__",
    "__pow__",
    "__matmul__",
    "__getitem__",
    "exp",
    "log",
    "tanh",
    "sigmoid",
    "relu",
    "clip",
    "abs",
    "sum",
    "mean",
    "max",
    "reshape",
    "transpose",
    "concatenate",
    "stack",
    "where",
    "softmax",
    "log_softmax",
)


class no_grad:
    """Context manager that disables graph construction (like torch.no_grad).

    Reentrant and nesting-safe: each ``__enter__`` pushes the prior state
    onto a per-instance stack, so a single instance can be entered
    recursively (or shared across nested ``with`` blocks) and each exit
    restores exactly what its matching entry saw.  The underlying flag is
    thread-local — disabling gradients on one thread never leaks into
    concurrently-running forwards on another.
    """

    def __init__(self) -> None:
        self._stack: list[bool] = []

    def __enter__(self) -> "no_grad":
        self._stack.append(_grad_state.enabled)
        _grad_state.enabled = False
        return self

    def __exit__(self, *exc_info) -> None:
        _grad_state.enabled = self._stack.pop()


def is_grad_enabled() -> bool:
    """Return whether new operations are recorded in the autograd graph."""
    return _grad_state.enabled


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class OpDef:
    """A differentiable primitive: pure ndarray forward + vector-Jacobian product.

    ``forward(params, *arrays) -> (out_data, residual)`` computes the op on
    raw ndarrays; ``residual`` is whatever intermediate the backward pass
    wants saved (or ``None``).  ``vjp(grad, out_data, residual, params,
    arrays) -> grads`` returns one gradient array per input (``None`` for
    inputs with no gradient).  Neither side ever sees a :class:`Tensor` —
    the table is the backend-independent contract the dispatcher, the
    differential oracle, and the inference path all share.
    """

    __slots__ = ("name", "forward", "vjp")

    def __init__(
        self,
        name: str,
        forward: Callable,
        vjp: Callable,
    ) -> None:
        self.name = name
        self.forward = forward
        self.vjp = vjp

    def __repr__(self) -> str:
        return f"OpDef({self.name!r})"


#: Central name -> (forward, vjp) registry for every autograd primitive.
OP_TABLE: dict[str, OpDef] = {}


def register_op(name: str, forward: Callable, vjp: Callable) -> OpDef:
    """Register a primitive in :data:`OP_TABLE` (returns the :class:`OpDef`)."""
    opdef = OpDef(name, forward, vjp)
    OP_TABLE[name] = opdef
    return opdef


class Tensor:
    """A numpy-backed tensor that records operations for backpropagation.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` by default so that
        gradient checks against finite differences are tight.
    requires_grad:
        Whether gradients should flow to this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _grad_state.enabled
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_note})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if _grad_state.enabled and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    @staticmethod
    def _apply(name: str, inputs: tuple["Tensor", ...], params: tuple = ()) -> "Tensor":
        """Dispatch ``name`` through :data:`OP_TABLE`.

        Runs the table forward on the raw input arrays; when a tape is
        active (gradients enabled and some input requires them) the result
        becomes a graph node whose backward closure replays the table's
        ``vjp``, otherwise the output passes straight through with no
        parents, no closure, and no residual retention.
        """
        opdef = OP_TABLE[name]
        arrays = tuple(t.data for t in inputs)
        out_data, residual = opdef.forward(params, *arrays)
        out = Tensor(out_data)
        if _grad_state.enabled and any(t.requires_grad for t in inputs):
            vjp = opdef.vjp

            def backward(grad: np.ndarray) -> None:
                grads = vjp(grad, out_data, residual, params, arrays)
                for tensor, g in zip(inputs, grads):
                    if g is not None:
                        tensor._accumulate(g)

            out.requires_grad = True
            out._parents = inputs
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Accumulate a gradient buffer whose ownership transfers to us.

        Skips the defensive copy :meth:`_accumulate` makes on first
        accumulation.  Only call with a float64 array the caller freshly
        allocated and will never touch again (the fused kernels use this
        for their scratch gradient buffers).
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # Arithmetic (thin dispatchers into OP_TABLE)
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        return Tensor._apply("add", (self, as_tensor(other)))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._apply("neg", (self,))

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        return Tensor._apply("mul", (self, as_tensor(other)))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        return Tensor._apply("div", (self, as_tensor(other)))

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        return Tensor._apply("pow", (self,), (exponent,))

    def __matmul__(self, other) -> "Tensor":
        return Tensor._apply("matmul", (self, as_tensor(other)))

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        return Tensor._apply("exp", (self,))

    def log(self) -> "Tensor":
        return Tensor._apply("log", (self,))

    def tanh(self) -> "Tensor":
        return Tensor._apply("tanh", (self,))

    def sigmoid(self) -> "Tensor":
        return Tensor._apply("sigmoid", (self,))

    def relu(self) -> "Tensor":
        return Tensor._apply("relu", (self,))

    def sqrt(self) -> "Tensor":
        return self**0.5

    def clip(self, low: float, high: float) -> "Tensor":
        return Tensor._apply("clip", (self,), (low, high))

    def abs(self) -> "Tensor":
        return Tensor._apply("abs", (self,))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Tensor._apply("sum", (self,), (axis, keepdims))

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Tensor._apply("max", (self,), (axis, keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor._apply("reshape", (self,), (shape,))

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return Tensor._apply("transpose", (self,), (axes,))

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, key) -> "Tensor":
        return Tensor._apply("getitem", (self,), (key,))

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = tuple(as_tensor(t) for t in tensors)
        return Tensor._apply("concatenate", tensors, (axis,))

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = tuple(as_tensor(t) for t in tensors)
        return Tensor._apply("stack", tensors, (axis,))

    @staticmethod
    def where(condition: np.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        cond = np.asarray(condition, dtype=bool)
        return Tensor._apply("where", (as_tensor(a), as_tensor(b)), (cond,))

    # ------------------------------------------------------------------
    # Softmax (fused for numerical stability)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        return Tensor._apply("softmax", (self,), (axis,))

    def log_softmax(self, axis: int = -1) -> "Tensor":
        return Tensor._apply("log_softmax", (self,), (axis,))


# ----------------------------------------------------------------------
# Primitive forward / vjp definitions
# ----------------------------------------------------------------------
def _expand_reduced(grad: np.ndarray, axis, keepdims: bool, ndim: int) -> np.ndarray:
    """Re-insert axes removed by a non-keepdims reduction."""
    g = np.asarray(grad)
    if axis is not None and not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(a % ndim for a in axes)
        for a in sorted(axes):
            g = np.expand_dims(g, a)
    return g


def _add_forward(params, a, b):
    return a + b, None


def _add_vjp(grad, out, res, params, arrays):
    a, b = arrays
    return _unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape)


def _neg_forward(params, a):
    return -a, None


def _neg_vjp(grad, out, res, params, arrays):
    return (-grad,)


def _mul_forward(params, a, b):
    return a * b, None


def _mul_vjp(grad, out, res, params, arrays):
    a, b = arrays
    return (
        _unbroadcast(grad * b, a.shape),
        _unbroadcast(grad * a, b.shape),
    )


def _div_forward(params, a, b):
    return a / b, None


def _div_vjp(grad, out, res, params, arrays):
    a, b = arrays
    return (
        _unbroadcast(grad / b, a.shape),
        _unbroadcast(-grad * a / (b**2), b.shape),
    )


def _pow_forward(params, a):
    (exponent,) = params
    return a**exponent, None


def _pow_vjp(grad, out, res, params, arrays):
    (exponent,) = params
    (a,) = arrays
    return (grad * exponent * a ** (exponent - 1),)


def _matmul_forward(params, a, b):
    return a @ b, None


def _matmul_vjp(grad, out, res, params, arrays):
    a, b = arrays
    if a.ndim == 1 and b.ndim == 1:
        return grad * b, grad * a
    if a.ndim == 1:  # (k,) @ (..., k, n) -> (..., n)
        ga = (grad[..., None, :] * b).sum(axis=-1)
        gb = a[:, None] * grad[..., None, :]
        return _unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape)
    if b.ndim == 1:  # (..., m, k) @ (k,) -> (..., m)
        ga = grad[..., :, None] * b
        gb = (grad[..., :, None] * a).sum(axis=tuple(range(a.ndim - 1)))
        return _unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape)
    ga = grad @ np.swapaxes(b, -1, -2)
    gb = np.swapaxes(a, -1, -2) @ grad
    return _unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape)


def _exp_forward(params, a):
    out = np.exp(a)
    return out, None


def _exp_vjp(grad, out, res, params, arrays):
    return (grad * out,)


def _log_forward(params, a):
    return np.log(a), None


def _log_vjp(grad, out, res, params, arrays):
    (a,) = arrays
    return (grad / a,)


def _tanh_forward(params, a):
    return np.tanh(a), None


def _tanh_vjp(grad, out, res, params, arrays):
    return (grad * (1.0 - out**2),)


def _sigmoid_forward(params, a):
    # Numerically stable logistic: exp(-|x|) never overflows, and the
    # single exp + blend is ~3x cheaper than evaluating both branches.
    decay = np.abs(a)
    np.negative(decay, out=decay)
    np.exp(decay, out=decay)
    out = np.where(a >= 0, 1.0, decay)
    np.add(decay, 1.0, out=decay)
    np.divide(out, decay, out=out)
    return out, None


def _sigmoid_vjp(grad, out, res, params, arrays):
    return (grad * out * (1.0 - out),)


def _relu_forward(params, a):
    mask = a > 0
    return a * mask, mask


def _relu_vjp(grad, out, res, params, arrays):
    return (grad * res,)


def _clip_forward(params, a):
    low, high = params
    return np.clip(a, low, high), None


def _clip_vjp(grad, out, res, params, arrays):
    low, high = params
    (a,) = arrays
    mask = (a >= low) & (a <= high)
    return (grad * mask,)


def _abs_forward(params, a):
    return np.abs(a), None


def _abs_vjp(grad, out, res, params, arrays):
    (a,) = arrays
    return (grad * np.sign(a),)


def _sum_forward(params, a):
    axis, keepdims = params
    return a.sum(axis=axis, keepdims=keepdims), None


def _sum_vjp(grad, out, res, params, arrays):
    axis, keepdims = params
    (a,) = arrays
    g = _expand_reduced(grad, axis, keepdims, a.ndim)
    return (np.broadcast_to(g, a.shape).copy(),)


def _max_forward(params, a):
    axis, keepdims = params
    return a.max(axis=axis, keepdims=keepdims), None


def _max_vjp(grad, out, res, params, arrays):
    axis, keepdims = params
    (a,) = arrays
    full = a.max(axis=axis, keepdims=True)
    mask = a == full
    mask = mask / mask.sum(axis=axis, keepdims=True)
    g = _expand_reduced(grad, axis, keepdims, a.ndim)
    return (mask * g,)


def _reshape_forward(params, a):
    (shape,) = params
    return a.reshape(shape), None


def _reshape_vjp(grad, out, res, params, arrays):
    (a,) = arrays
    return (grad.reshape(a.shape),)


def _transpose_forward(params, a):
    (axes,) = params
    return a.transpose(axes), None


def _transpose_vjp(grad, out, res, params, arrays):
    (axes,) = params
    return (grad.transpose(np.argsort(axes)),)


def _getitem_forward(params, a):
    (key,) = params
    return a[key], None


def _getitem_vjp(grad, out, res, params, arrays):
    (key,) = params
    (a,) = arrays
    full = np.zeros_like(a)
    if _is_basic_index(key):
        # Basic indexing selects each element at most once, so the
        # scatter is a plain (much faster) sliced assignment.
        full[key] = grad
    else:
        np.add.at(full, key, grad)
    return (full,)


def _concatenate_forward(params, *arrays):
    (axis,) = params
    return np.concatenate(arrays, axis=axis), None


def _concatenate_vjp(grad, out, res, params, arrays):
    (axis,) = params
    offsets = np.cumsum([0] + [a.shape[axis] for a in arrays])
    grads = []
    for start, stop in zip(offsets[:-1], offsets[1:]):
        index = [slice(None)] * grad.ndim
        index[axis] = slice(start, stop)
        grads.append(grad[tuple(index)])
    return grads


def _stack_forward(params, *arrays):
    (axis,) = params
    return np.stack(arrays, axis=axis), None


def _stack_vjp(grad, out, res, params, arrays):
    (axis,) = params
    return list(np.moveaxis(grad, axis, 0))


def _where_forward(params, a, b):
    (cond,) = params
    return np.where(cond, a, b), None


def _where_vjp(grad, out, res, params, arrays):
    (cond,) = params
    a, b = arrays
    return (
        _unbroadcast(grad * cond, a.shape),
        _unbroadcast(grad * (~cond), b.shape),
    )


def _softmax_forward(params, a):
    (axis,) = params
    shifted = a - a.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True), None


def _softmax_vjp(grad, out, res, params, arrays):
    (axis,) = params
    dot = (grad * out).sum(axis=axis, keepdims=True)
    return (out * (grad - dot),)


def _log_softmax_forward(params, a):
    (axis,) = params
    shifted = a - a.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    return shifted - log_z, None


def _log_softmax_vjp(grad, out, res, params, arrays):
    (axis,) = params
    softmax = np.exp(out)
    return (grad - softmax * grad.sum(axis=axis, keepdims=True),)


register_op("add", _add_forward, _add_vjp)
register_op("neg", _neg_forward, _neg_vjp)
register_op("mul", _mul_forward, _mul_vjp)
register_op("div", _div_forward, _div_vjp)
register_op("pow", _pow_forward, _pow_vjp)
register_op("matmul", _matmul_forward, _matmul_vjp)
register_op("exp", _exp_forward, _exp_vjp)
register_op("log", _log_forward, _log_vjp)
register_op("tanh", _tanh_forward, _tanh_vjp)
register_op("sigmoid", _sigmoid_forward, _sigmoid_vjp)
register_op("relu", _relu_forward, _relu_vjp)
register_op("clip", _clip_forward, _clip_vjp)
register_op("abs", _abs_forward, _abs_vjp)
register_op("sum", _sum_forward, _sum_vjp)
register_op("max", _max_forward, _max_vjp)
register_op("reshape", _reshape_forward, _reshape_vjp)
register_op("transpose", _transpose_forward, _transpose_vjp)
register_op("getitem", _getitem_forward, _getitem_vjp)
register_op("concatenate", _concatenate_forward, _concatenate_vjp)
register_op("stack", _stack_forward, _stack_vjp)
register_op("where", _where_forward, _where_vjp)
register_op("softmax", _softmax_forward, _softmax_vjp)
register_op("log_softmax", _log_softmax_forward, _log_softmax_vjp)


def _is_basic_index(key) -> bool:
    """True when ``key`` triggers numpy *basic* indexing (no repeats possible)."""
    if isinstance(key, tuple):
        return all(_is_basic_index(part) for part in key)
    return key is None or key is Ellipsis or isinstance(key, (int, np.integer, slice))


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def op_function(name: str) -> tuple[Callable, bool]:
    """Return ``(function, is_static)`` for a :data:`PROFILED_OPS` entry.

    This is the dispatch surface shared by every op-level instrumentation
    layer (the ``repro.obs.autograd`` profiler and the
    ``repro.testing.sanitize`` numerical sanitizer): hooks read the current
    attribute — which may already be another layer's wrapper, so stacked
    instrumentation composes — and re-install it via
    :func:`install_op_wrappers` / :func:`restore_ops`.
    """
    raw = Tensor.__dict__[name]
    is_static = isinstance(raw, staticmethod)
    return (raw.__func__ if is_static else raw), is_static


def install_op_wrappers(
    make_wrapper: Callable[[str, Callable], Callable],
) -> dict[str, object]:
    """Wrap every op in :data:`PROFILED_OPS` with ``make_wrapper(name, fn)``.

    Returns the mapping of raw attribute objects (staticmethods preserved)
    to hand back to :func:`restore_ops`.  Wrapping is not idempotent by
    itself — callers guard with their own enabled flag.
    """
    originals: dict[str, object] = {}
    for name in PROFILED_OPS:
        originals[name] = Tensor.__dict__[name]
        fn, is_static = op_function(name)
        wrapped = make_wrapper(name, fn)
        setattr(Tensor, name, staticmethod(wrapped) if is_static else wrapped)
    return originals


def restore_ops(originals: dict[str, object]) -> None:
    """Re-install the raw attributes captured by :func:`install_op_wrappers`."""
    for name, original in originals.items():
        setattr(Tensor, name, original)


def register_custom_op(name: str, fn: Callable) -> None:
    """Attach a fused op to :class:`Tensor` and the profiler surface.

    Custom ops (e.g. the fused recurrent kernels in ``repro.nn.kernels``)
    are implemented outside this module but must dispatch through an
    attribute of :class:`Tensor` so that ``repro.obs.autograd`` can hook
    them by name exactly like the built-in primitives.  The op is installed
    as a staticmethod and appended to :data:`PROFILED_OPS`; ``fn`` should
    build its output(s) with :meth:`Tensor._make` so the backward closure
    participates in profiling.
    """
    global PROFILED_OPS
    setattr(Tensor, name, staticmethod(fn))
    if name not in PROFILED_OPS:
        PROFILED_OPS = PROFILED_OPS + (name,)
