"""``repro.nn`` — a from-scratch numpy autograd / neural network substrate.

The paper's reference implementation is PyTorch; this package provides the
subset needed to implement RAPID and all baselines exactly: a reverse-mode
autograd :class:`Tensor`, modules/parameters, layers (Linear, Embedding,
LSTM/GRU/Bi-LSTM, self-attention variants, MLP, LayerNorm, Dropout), losses,
and optimizers (Adam, SGD).
"""

from . import functional, inference, init, kernels, losses
from .layers import (
    MLP,
    BiLSTM,
    Dropout,
    Embedding,
    GatedLocalAttention,
    GRU,
    GRUCell,
    InducedSetAttention,
    LayerNorm,
    Linear,
    LSTM,
    LSTMCell,
    ModuleList,
    MultiHeadSelfAttention,
    SelfAttention,
    Sequential,
    TransformerEncoderLayer,
)
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .serialization import CheckpointCorruptError, load_module, save_module
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Adam",
    "BiLSTM",
    "Dropout",
    "Embedding",
    "GRU",
    "GRUCell",
    "GatedLocalAttention",
    "InducedSetAttention",
    "LSTM",
    "LSTMCell",
    "LayerNorm",
    "Linear",
    "MLP",
    "Module",
    "ModuleList",
    "MultiHeadSelfAttention",
    "Optimizer",
    "Parameter",
    "SGD",
    "SelfAttention",
    "Sequential",
    "Tensor",
    "TransformerEncoderLayer",
    "as_tensor",
    "clip_grad_norm",
    "functional",
    "inference",
    "init",
    "is_grad_enabled",
    "kernels",
    "CheckpointCorruptError",
    "load_module",
    "losses",
    "no_grad",
    "save_module",
]
