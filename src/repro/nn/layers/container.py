"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator

from ..module import Module

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Chains modules, feeding each output to the next input."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: list[Module] = []
        for index, module in enumerate(modules):
            self._items.append(module)
            setattr(self, f"item_{index}", module)

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)


class ModuleList(Module):
    """Holds an indexable list of child modules (no forward of its own)."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        setattr(self, f"item_{len(self._items)}", module)
        self._items.append(module)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)
