"""Multi-layer perceptron with configurable activations."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .. import inference
from ..module import Module
from ..tensor import Tensor
from .linear import Linear

__all__ = ["MLP"]

_ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": lambda x: x.relu(),
    "tanh": lambda x: x.tanh(),
    "sigmoid": lambda x: x.sigmoid(),
    "identity": lambda x: x,
}

# ndarray twins for the inference path (same names, same numerics).
_INFER_ACTIVATIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "relu": inference.relu_nd,
    "tanh": np.tanh,
    "sigmoid": inference.sigmoid_nd,
    "identity": lambda x: x,
}


class MLP(Module):
    """A stack of Linear layers with a hidden activation.

    Parameters
    ----------
    dims:
        Layer widths including input and output, e.g. ``[64, 32, 1]``.
    activation:
        Hidden-layer nonlinearity name.
    output_activation:
        Nonlinearity applied after the final layer (``"identity"`` for raw
        scores, ``"sigmoid"`` for probabilities as in RAPID's re-ranker head).
    """

    def __init__(
        self,
        dims: Sequence[int],
        activation: str = "relu",
        output_activation: str = "identity",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        if activation not in _ACTIVATIONS or output_activation not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation; choose from {sorted(_ACTIVATIONS)}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self.dims = list(dims)
        self._activation = activation
        self._output_activation = output_activation
        self.layers: list[Linear] = []
        for index, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = Linear(d_in, d_out, rng=rng)
            self.layers.append(layer)
            setattr(self, f"layer_{index}", layer)

    def forward(self, x: Tensor) -> Tensor:
        hidden_fn = _ACTIVATIONS[self._activation]
        out_fn = _ACTIVATIONS[self._output_activation]
        for layer in self.layers[:-1]:
            x = hidden_fn(layer(x))
        return out_fn(self.layers[-1](x))

    def infer(self, x: np.ndarray) -> np.ndarray:
        hidden_fn = _INFER_ACTIVATIONS[self._activation]
        out_fn = _INFER_ACTIVATIONS[self._output_activation]
        for layer in self.layers[:-1]:
            x = hidden_fn(layer.infer(x))
        return out_fn(self.layers[-1].infer(x))
