"""Dropout layer (module wrapper around the functional version)."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..module import Module
from ..tensor import Tensor

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, self.training)

    def infer(self, x: np.ndarray) -> np.ndarray:
        # Inference implies eval mode: inverted dropout is the identity.
        return x
