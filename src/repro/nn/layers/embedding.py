"""Lookup-table embedding layer."""

from __future__ import annotations

import numpy as np

from .. import inference
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Embedding"]


class Embedding(Module):
    """Maps integer ids to dense vectors via a trainable table.

    Index ``padding_idx`` (if given) is initialized to zeros and always
    receives zero gradient, matching the PyTorch convention used for padded
    behavior sequences.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        padding_idx: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        table = rng.normal(0.0, 0.1, size=(num_embeddings, embedding_dim))
        if padding_idx is not None:
            if not 0 <= padding_idx < num_embeddings:
                raise ValueError(
                    f"padding_idx {padding_idx} out of range [0, {num_embeddings})"
                )
            table[padding_idx] = 0.0
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        self.weight = Parameter(table)

    def forward(self, ids) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        out = self.weight[ids]
        if self.padding_idx is not None:
            mask = (ids != self.padding_idx).astype(np.float64)[..., None]
            out = out * Tensor(mask)
        return out

    def infer(self, ids) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        table = inference.cached_weights(
            self,
            "embedding",
            (self.weight,),
            lambda dtype: np.ascontiguousarray(self.weight.data, dtype=dtype),
        )
        out = table[ids]
        if self.padding_idx is not None:
            out *= ids[..., None] != self.padding_idx
        return out
