"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from .. import inference, init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x W^T + b`` applied to the last axis.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality of the last axis.
    bias:
        Whether to learn an additive bias.
    rng:
        Generator used for Xavier initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def infer(self, x: np.ndarray) -> np.ndarray:
        params = (self.weight,) if self.bias is None else (self.weight, self.bias)

        def build(dtype):
            weight_t = np.ascontiguousarray(self.weight.data.T, dtype=dtype)
            bias = (
                None
                if self.bias is None
                else np.ascontiguousarray(self.bias.data, dtype=dtype)
            )
            return weight_t, bias

        weight_t, bias = inference.cached_weights(self, "linear", params, build)
        return inference.linear_nd(x, weight_t, bias)
