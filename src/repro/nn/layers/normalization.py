"""Layer normalization."""

from __future__ import annotations

import numpy as np

from .. import inference
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["LayerNorm"]


class LayerNorm(Module):
    """Normalizes the last axis to zero mean / unit variance, then scales."""

    def __init__(self, normalized_dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        if normalized_dim <= 0:
            raise ValueError("normalized_dim must be positive")
        self.normalized_dim = normalized_dim
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_dim))
        self.beta = Parameter(np.zeros(normalized_dim))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.normalized_dim:
            raise ValueError(
                f"LayerNorm expected last dim {self.normalized_dim}, "
                f"got {x.shape[-1]}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (var + self.eps) ** -0.5
        return normed * self.gamma + self.beta

    def infer(self, x: np.ndarray) -> np.ndarray:
        def build(dtype):
            return (
                np.ascontiguousarray(self.gamma.data, dtype=dtype),
                np.ascontiguousarray(self.beta.data, dtype=dtype),
            )

        gamma, beta = inference.cached_weights(
            self, "layernorm", (self.gamma, self.beta), build
        )
        return inference.layer_norm_nd(x, gamma, beta, self.eps)
