"""Recurrent layers: LSTM / GRU cells, sequence wrappers, and Bi-LSTM.

RAPID uses a Bi-LSTM for the listwise relevance estimator (paper Sec. III-B)
and unidirectional LSTMs for the per-topic behavior encoders (Sec. III-C);
DLCM uses a GRU.  All cells follow the standard Hochreiter-Schmidhuber / Cho
formulations with orthogonal recurrent and Xavier input weights.

Hot-path structure: the input projection ``x W_ih^T + b`` for *all*
timesteps is computed in one batched matmul outside the time loop, and each
step then runs as a single fused autograd node (``repro.nn.kernels``)
instead of ~10 composed elementwise ops.  Set ``REPRO_NN_FUSED=0`` to fall
back to the composed-op graph; both paths produce identical values.
"""

from __future__ import annotations

import numpy as np

from .. import inference, init, kernels
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["LSTMCell", "GRUCell", "LSTM", "GRU", "BiLSTM"]


def _apply_mask_step(
    new: Tensor, old: Tensor, mask_t: np.ndarray | None
) -> Tensor:
    """Keep the previous state where ``mask_t`` marks padding (False)."""
    if mask_t is None:
        return new
    keep = mask_t.astype(np.float64)[:, None]
    return new * Tensor(keep) + old * Tensor(1.0 - keep)


def _time_steps(gi: Tensor, time: int) -> tuple[Tensor, ...]:
    """Per-timestep slices of the batched input projection (composed
    fallback; the fused path hands ``gi`` whole to the scan kernels).

    Custom step-by-step loops over a batched projection should prefer
    :func:`repro.nn.kernels.time_unbind`, which shares one gradient buffer
    across all step slices instead of scattering a full-size array each.
    """
    return tuple(gi[:, t, :] for t in range(time))


def _lstm_step(
    gates: Tensor, h: Tensor, c: Tensor, mask_t: np.ndarray | None
) -> tuple[Tensor, Tensor]:
    """One LSTM state update from pre-activation ``gates`` (fused or composed)."""
    if kernels.fused_enabled():
        return Tensor.lstm_cell_fused(gates, h, c, mask_t)
    hs = gates.shape[-1] // 4
    i = gates[:, :hs].sigmoid()
    f = gates[:, hs : 2 * hs].sigmoid()
    g = gates[:, 2 * hs : 3 * hs].tanh()
    o = gates[:, 3 * hs :].sigmoid()
    c_next = f * c + i * g
    h_next = o * c_next.tanh()
    return (
        _apply_mask_step(h_next, h, mask_t),
        _apply_mask_step(c_next, c, mask_t),
    )


def _gru_step(
    gi: Tensor, gh: Tensor, h: Tensor, mask_t: np.ndarray | None
) -> Tensor:
    """One GRU state update from pre-activations ``gi``/``gh`` (fused or composed)."""
    if kernels.fused_enabled():
        return Tensor.gru_cell_fused(gi, gh, h, mask_t)
    hs = gi.shape[-1] // 3
    r = (gi[:, :hs] + gh[:, :hs]).sigmoid()
    z = (gi[:, hs : 2 * hs] + gh[:, hs : 2 * hs]).sigmoid()
    n = (gi[:, 2 * hs :] + r * gh[:, 2 * hs :]).tanh()
    return _apply_mask_step((1.0 - z) * n + z * h, h, mask_t)


class LSTMCell(Module):
    """A single LSTM step: (x_t, h_{t-1}, c_{t-1}) -> (h_t, c_t)."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gates packed as [input, forget, cell, output] along the output axis.
        self.w_ih = Parameter(init.xavier_uniform((4 * hidden_size, input_size), rng))
        self.w_hh = Parameter(
            np.concatenate(
                [init.orthogonal((hidden_size, hidden_size), rng) for _ in range(4)]
            )
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias trick
        self.bias = Parameter(bias)

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, Tensor]:
        batch = x.shape[0]
        if state is None:
            h = kernels.zero_state(batch, self.hidden_size)
            c = kernels.zero_state(batch, self.hidden_size)
        else:
            h, c = state
        gates = x @ self.w_ih.T + h @ self.w_hh.T + self.bias
        return _lstm_step(gates, h, c, None)


class GRUCell(Module):
    """A single GRU step: (x_t, h_{t-1}) -> h_t."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gates packed as [reset, update, new].
        self.w_ih = Parameter(init.xavier_uniform((3 * hidden_size, input_size), rng))
        self.w_hh = Parameter(
            np.concatenate(
                [init.orthogonal((hidden_size, hidden_size), rng) for _ in range(3)]
            )
        )
        self.bias = Parameter(np.zeros(3 * hidden_size))

    def forward(self, x: Tensor, h: Tensor | None = None) -> Tensor:
        batch = x.shape[0]
        if h is None:
            h = kernels.zero_state(batch, self.hidden_size)
        gi = x @ self.w_ih.T + self.bias
        gh = h @ self.w_hh.T
        return _gru_step(gi, gh, h, None)


class LSTM(Module):
    """Runs an :class:`LSTMCell` over a (batch, time, features) sequence.

    ``mask`` (batch, time) marks valid timesteps; padded steps carry the
    previous hidden state forward so that the final state is the state after
    the last *valid* input — this is how RAPID takes ``t_j = z_{j,D}`` for
    variable-length topical behavior sequences.

    The input projection for every timestep is one batched matmul; only the
    recurrent matmul and the (fused) gate update run inside the time loop.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(
        self, x: Tensor, mask: np.ndarray | None = None
    ) -> tuple[Tensor, Tensor]:
        """Return (outputs (batch, time, hidden), final hidden (batch, hidden))."""
        batch, time, features = x.shape
        cell = self.cell
        gi = (
            x.reshape(batch * time, features) @ cell.w_ih.T + cell.bias
        ).reshape(batch, time, 4 * self.hidden_size)
        if kernels.fused_enabled():
            outputs = Tensor.lstm_scan_fused(gi, cell.w_hh, mask)
            return outputs, outputs[:, -1, :]
        steps = _time_steps(gi, time)
        h = kernels.zero_state(batch, self.hidden_size)
        c = kernels.zero_state(batch, self.hidden_size)
        outputs: list[Tensor] = []
        for t in range(time):
            mask_t = mask[:, t] if mask is not None else None
            gates = steps[t] + h @ cell.w_hh.T
            h, c = _lstm_step(gates, h, c, mask_t)
            outputs.append(h)
        return Tensor.stack(outputs, axis=1), h

    def infer(
        self, x: np.ndarray, mask: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        w_ih_t, bias, w_hh_t = inference.lstm_infer_weights(self.cell)
        gi = x @ w_ih_t
        gi += bias
        outputs = inference.lstm_scan_infer(gi, w_hh_t, mask)
        return outputs, outputs[..., -1, :]


class GRU(Module):
    """Runs a :class:`GRUCell` over a (batch, time, features) sequence."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(
        self, x: Tensor, mask: np.ndarray | None = None
    ) -> tuple[Tensor, Tensor]:
        batch, time, features = x.shape
        cell = self.cell
        gi = (
            x.reshape(batch * time, features) @ cell.w_ih.T + cell.bias
        ).reshape(batch, time, 3 * self.hidden_size)
        if kernels.fused_enabled():
            outputs = Tensor.gru_scan_fused(gi, cell.w_hh, mask)
            return outputs, outputs[:, -1, :]
        steps = _time_steps(gi, time)
        h = kernels.zero_state(batch, self.hidden_size)
        outputs: list[Tensor] = []
        for t in range(time):
            mask_t = mask[:, t] if mask is not None else None
            gh = h @ cell.w_hh.T
            h = _gru_step(steps[t], gh, h, mask_t)
            outputs.append(h)
        return Tensor.stack(outputs, axis=1), h

    def infer(
        self, x: np.ndarray, mask: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        w_ih_t, bias, w_hh_t = inference.gru_infer_weights(self.cell)
        gi = x @ w_ih_t
        gi += bias
        outputs = inference.gru_scan_infer(gi, w_hh_t, mask)
        return outputs, outputs[..., -1, :]


class BiLSTM(Module):
    """Bidirectional LSTM; outputs concatenated forward/backward states.

    This is the listwise relevance encoder of RAPID: each item's
    representation ``h_i = [h_fwd_i, h_bwd_i]`` (paper Sec. III-B) sees the
    listwise context both before and after position ``i``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.forward_lstm = LSTM(input_size, hidden_size, rng=rng)
        self.backward_lstm = LSTM(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.output_size = 2 * hidden_size

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Return (batch, time, 2*hidden) contextual representations."""
        fwd, _ = self.forward_lstm(x, mask=mask)
        rev = x[:, ::-1, :]
        rev_mask = mask[:, ::-1] if mask is not None else None
        bwd, _ = self.backward_lstm(rev, mask=rev_mask)
        bwd = bwd[:, ::-1, :]
        return Tensor.concatenate([fwd, bwd], axis=2)

    def infer(self, x: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Direction-batched inference: both directions in ONE scan.

        When no padding mask is in play (the common serving case: fixed
        candidate lists), both directions are packed into the *hidden*
        axis: state is (B, 2H) ``[fwd | bwd]``, the recurrent matrix is a
        block-diagonal (2H, 8H) with gates grouped by type across
        directions ``[i_f i_b | f_f f_b | o_f o_b | g_f g_b]``, so the
        scan sees a standard single-direction problem with hidden size 2H
        and its per-step matmul is 2-D.  With a real mask the two
        directions need *different* per-step masks (the backward one is
        time-reversed), which the hidden-axis packing cannot express —
        that case stacks the directions on a leading axis instead.
        """
        if inference._effective_mask(mask) is None:
            return self._infer_packed(x)
        return self._infer_stacked(x, mask)

    def _infer_packed(self, x: np.ndarray) -> np.ndarray:
        fcell = self.forward_lstm.cell
        bcell = self.backward_lstm.cell
        hidden = self.hidden_size

        def build(dtype):
            fw_ih, fw_b, fw_hh = inference.lstm_infer_weights(fcell)
            bw_ih, bw_b, bw_hh = inference.lstm_infer_weights(bcell)
            # Block-diagonal recurrent matrix on the packed (gate, dir, H)
            # gate axis: forward h rows feed only forward gate columns.
            w_hh_p = np.zeros((2 * hidden, 4, 2, hidden), dtype=dtype)
            w_hh_p[:hidden, :, 0] = fw_hh.reshape(hidden, 4, hidden)
            w_hh_p[hidden:, :, 1] = bw_hh.reshape(hidden, 4, hidden)
            return fw_ih, fw_b, bw_ih, bw_b, w_hh_p.reshape(2 * hidden, 8 * hidden)

        fw_ih, fw_b, bw_ih, bw_b, w_hh_p = inference.cached_weights(
            self,
            "bilstm_packed",
            (
                fcell.w_ih,
                fcell.w_hh,
                fcell.bias,
                bcell.w_ih,
                bcell.w_hh,
                bcell.bias,
            ),
            build,
        )
        batch, time = x.shape[0], x.shape[1]
        gi_f = x @ fw_ih
        gi_f += fw_b
        gi_b = x[:, ::-1] @ bw_ih
        gi_b += bw_b
        # Interleave per-direction gate blocks into the packed layout via
        # a (gate, dir, H) view: two strided assignments, no fancy index.
        gi_p = np.empty((batch, time, 8 * hidden), dtype=gi_f.dtype)
        gi_v = gi_p.reshape(batch, time, 4, 2, hidden)
        gi_v[:, :, :, 0] = gi_f.reshape(batch, time, 4, hidden)
        gi_v[:, :, :, 1] = gi_b.reshape(batch, time, 4, hidden)
        out = inference.lstm_scan_infer(gi_p, w_hh_p)
        # Packed hidden is [h_fwd | h_bwd-on-reversed-input]; un-reverse
        # the backward half's time axis before concatenating.
        return np.concatenate([out[..., :hidden], out[:, ::-1, hidden:]], axis=-1)

    def _infer_stacked(
        self, x: np.ndarray, mask: np.ndarray | None
    ) -> np.ndarray:
        fcell = self.forward_lstm.cell
        bcell = self.backward_lstm.cell

        def build(dtype):
            fw_ih, fw_b, fw_hh = inference.lstm_infer_weights(fcell)
            bw_ih, bw_b, bw_hh = inference.lstm_infer_weights(bcell)
            # (2, 1, F, 4H): broadcasts against the (2, B) batch dims of the
            # stacked input; (2, H, 4H) matches the scan's (2, B, H) state.
            w_ih2 = np.ascontiguousarray(np.stack([fw_ih, bw_ih])[:, None])
            bias2 = np.ascontiguousarray(np.stack([fw_b, bw_b])[:, None, None])
            w_hh2 = np.ascontiguousarray(np.stack([fw_hh, bw_hh]))
            return w_ih2, bias2, w_hh2

        w_ih2, bias2, w_hh2 = inference.cached_weights(
            self,
            "bilstm",
            (
                fcell.w_ih,
                fcell.w_hh,
                fcell.bias,
                bcell.w_ih,
                bcell.w_hh,
                bcell.bias,
            ),
            build,
        )
        x2 = np.stack([x, x[:, ::-1]])  # (2, batch, time, features)
        gi = x2 @ w_ih2
        gi += bias2
        mask2 = None
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            mask2 = np.stack([mask, mask[:, ::-1]])
        out = inference.lstm_scan_infer(gi, w_hh2, mask2)
        return np.concatenate([out[0], out[1][:, ::-1]], axis=-1)
