"""Recurrent layers: LSTM / GRU cells, sequence wrappers, and Bi-LSTM.

RAPID uses a Bi-LSTM for the listwise relevance estimator (paper Sec. III-B)
and unidirectional LSTMs for the per-topic behavior encoders (Sec. III-C);
DLCM uses a GRU.  All cells follow the standard Hochreiter-Schmidhuber / Cho
formulations with orthogonal recurrent and Xavier input weights.
"""

from __future__ import annotations

import numpy as np

from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["LSTMCell", "GRUCell", "LSTM", "GRU", "BiLSTM"]


class LSTMCell(Module):
    """A single LSTM step: (x_t, h_{t-1}, c_{t-1}) -> (h_t, c_t)."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gates packed as [input, forget, cell, output] along the output axis.
        self.w_ih = Parameter(init.xavier_uniform((4 * hidden_size, input_size), rng))
        self.w_hh = Parameter(
            np.concatenate(
                [init.orthogonal((hidden_size, hidden_size), rng) for _ in range(4)]
            )
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias trick
        self.bias = Parameter(bias)

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, Tensor]:
        batch = x.shape[0]
        if state is None:
            h = Tensor(np.zeros((batch, self.hidden_size)))
            c = Tensor(np.zeros((batch, self.hidden_size)))
        else:
            h, c = state
        gates = x @ self.w_ih.T + h @ self.w_hh.T + self.bias
        hs = self.hidden_size
        i = gates[:, :hs].sigmoid()
        f = gates[:, hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs :].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class GRUCell(Module):
    """A single GRU step: (x_t, h_{t-1}) -> h_t."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gates packed as [reset, update, new].
        self.w_ih = Parameter(init.xavier_uniform((3 * hidden_size, input_size), rng))
        self.w_hh = Parameter(
            np.concatenate(
                [init.orthogonal((hidden_size, hidden_size), rng) for _ in range(3)]
            )
        )
        self.bias = Parameter(np.zeros(3 * hidden_size))

    def forward(self, x: Tensor, h: Tensor | None = None) -> Tensor:
        batch = x.shape[0]
        if h is None:
            h = Tensor(np.zeros((batch, self.hidden_size)))
        hs = self.hidden_size
        gi = x @ self.w_ih.T + self.bias
        gh = h @ self.w_hh.T
        r = (gi[:, :hs] + gh[:, :hs]).sigmoid()
        z = (gi[:, hs : 2 * hs] + gh[:, hs : 2 * hs]).sigmoid()
        n = (gi[:, 2 * hs :] + r * gh[:, 2 * hs :]).tanh()
        return (1.0 - z) * n + z * h


def _apply_mask_step(
    new: Tensor, old: Tensor, mask_t: np.ndarray | None
) -> Tensor:
    """Keep the previous state where ``mask_t`` marks padding (False)."""
    if mask_t is None:
        return new
    keep = mask_t.astype(np.float64)[:, None]
    return new * Tensor(keep) + old * Tensor(1.0 - keep)


class LSTM(Module):
    """Runs an :class:`LSTMCell` over a (batch, time, features) sequence.

    ``mask`` (batch, time) marks valid timesteps; padded steps carry the
    previous hidden state forward so that the final state is the state after
    the last *valid* input — this is how RAPID takes ``t_j = z_{j,D}`` for
    variable-length topical behavior sequences.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(
        self, x: Tensor, mask: np.ndarray | None = None
    ) -> tuple[Tensor, Tensor]:
        """Return (outputs (batch, time, hidden), final hidden (batch, hidden))."""
        batch, time, _ = x.shape
        h = Tensor(np.zeros((batch, self.hidden_size)))
        c = Tensor(np.zeros((batch, self.hidden_size)))
        outputs: list[Tensor] = []
        for t in range(time):
            mask_t = mask[:, t] if mask is not None else None
            h_new, c_new = self.cell(x[:, t, :], (h, c))
            h = _apply_mask_step(h_new, h, mask_t)
            c = _apply_mask_step(c_new, c, mask_t)
            outputs.append(h)
        return Tensor.stack(outputs, axis=1), h


class GRU(Module):
    """Runs a :class:`GRUCell` over a (batch, time, features) sequence."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(
        self, x: Tensor, mask: np.ndarray | None = None
    ) -> tuple[Tensor, Tensor]:
        batch, time, _ = x.shape
        h = Tensor(np.zeros((batch, self.hidden_size)))
        outputs: list[Tensor] = []
        for t in range(time):
            mask_t = mask[:, t] if mask is not None else None
            h = _apply_mask_step(self.cell(x[:, t, :], h), h, mask_t)
            outputs.append(h)
        return Tensor.stack(outputs, axis=1), h


class BiLSTM(Module):
    """Bidirectional LSTM; outputs concatenated forward/backward states.

    This is the listwise relevance encoder of RAPID: each item's
    representation ``h_i = [h_fwd_i, h_bwd_i]`` (paper Sec. III-B) sees the
    listwise context both before and after position ``i``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.forward_lstm = LSTM(input_size, hidden_size, rng=rng)
        self.backward_lstm = LSTM(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.output_size = 2 * hidden_size

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Return (batch, time, 2*hidden) contextual representations."""
        fwd, _ = self.forward_lstm(x, mask=mask)
        rev = x[:, ::-1, :]
        rev_mask = mask[:, ::-1] if mask is not None else None
        bwd, _ = self.backward_lstm(rev, mask=rev_mask)
        bwd = bwd[:, ::-1, :]
        return Tensor.concatenate([fwd, bwd], axis=2)
