"""Neural network layers."""

from .attention import (
    GatedLocalAttention,
    InducedSetAttention,
    MultiHeadSelfAttention,
    SelfAttention,
    TransformerEncoderLayer,
)
from .container import ModuleList, Sequential
from .dropout import Dropout
from .embedding import Embedding
from .linear import Linear
from .mlp import MLP
from .normalization import LayerNorm
from .recurrent import GRU, LSTM, BiLSTM, GRUCell, LSTMCell

__all__ = [
    "BiLSTM",
    "Dropout",
    "Embedding",
    "GRU",
    "GRUCell",
    "GatedLocalAttention",
    "InducedSetAttention",
    "LSTM",
    "LSTMCell",
    "LayerNorm",
    "Linear",
    "MLP",
    "ModuleList",
    "MultiHeadSelfAttention",
    "SelfAttention",
    "Sequential",
    "TransformerEncoderLayer",
]
