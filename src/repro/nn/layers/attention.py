"""Attention layers.

Covers every attention variant used in the paper and baselines:

- :class:`SelfAttention` — the parameter-free scaled dot-product
  ``softmax(V V^T / sqrt(d)) V`` of RAPID's inter-topic module (Eq. 2).
- :class:`MultiHeadSelfAttention` — the transformer block used by PRM,
  DESA and the RAPID-trans ablation.
- :class:`InducedSetAttention` — SetRank's induced multi-head attention.
- :class:`GatedLocalAttention` — SRGA's unidirectional/local gated attention.
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .. import inference
from ..module import Module, Parameter
from ..tensor import Tensor
from .linear import Linear
from .normalization import LayerNorm

__all__ = [
    "SelfAttention",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "InducedSetAttention",
    "GatedLocalAttention",
]


class SelfAttention(Module):
    """Parameter-free scaled dot-product self-attention (paper Eq. 2).

    ``A = softmax(V V^T / sqrt(q_h)) V``, applied over the penultimate axis.
    RAPID uses this over the stacked topic representation matrix to model
    inter-topic interactions.
    """

    def forward(self, v: Tensor, mask: np.ndarray | None = None) -> Tensor:
        d = v.shape[-1]
        scores = (v @ v.swapaxes(-1, -2)) * (1.0 / np.sqrt(d))
        if mask is not None:
            key_mask = np.asarray(mask, dtype=bool)
            attn = F.masked_softmax(scores, key_mask[..., None, :], axis=-1)
        else:
            attn = scores.softmax(axis=-1)
        return attn @ v

    def infer(self, v: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        d = v.shape[-1]
        scores = (v @ np.swapaxes(v, -1, -2)) * v.dtype.type(1.0 / np.sqrt(d))
        if mask is not None:
            key_mask = np.asarray(mask, dtype=bool)
            attn = inference.masked_softmax_nd(
                scores, key_mask[..., None, :], axis=-1
            )
        else:
            attn = inference.softmax_nd(scores, axis=-1)
        return attn @ v


class MultiHeadSelfAttention(Module):
    """Standard multi-head self-attention with learned Q/K/V/O projections."""

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError(
                f"model_dim {model_dim} must be divisible by num_heads {num_heads}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.q_proj = Linear(model_dim, model_dim, rng=rng)
        self.k_proj = Linear(model_dim, model_dim, rng=rng)
        self.v_proj = Linear(model_dim, model_dim, rng=rng)
        self.out_proj = Linear(model_dim, model_dim, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, time, _ = x.shape
        return x.reshape(batch, time, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def forward(
        self,
        x: Tensor,
        mask: np.ndarray | None = None,
        keys: Tensor | None = None,
    ) -> Tensor:
        """Attend ``x`` (queries) over ``keys`` (defaults to ``x``).

        ``mask`` is (batch, key_time) with True marking valid key positions.
        """
        kv = keys if keys is not None else x
        q = self._split_heads(self.q_proj(x))
        k = self._split_heads(self.k_proj(kv))
        v = self._split_heads(self.v_proj(kv))
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            key_mask = np.asarray(mask, dtype=bool)[:, None, None, :]
            attn = F.masked_softmax(scores, key_mask, axis=-1)
        else:
            attn = scores.softmax(axis=-1)
        context = attn @ v  # (batch, heads, q_time, head_dim)
        batch, _, q_time, _ = context.shape
        merged = context.transpose(0, 2, 1, 3).reshape(batch, q_time, self.model_dim)
        return self.out_proj(merged)

    def _split_heads_nd(self, x: np.ndarray) -> np.ndarray:
        batch, time, _ = x.shape
        return x.reshape(batch, time, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def infer(
        self,
        x: np.ndarray,
        mask: np.ndarray | None = None,
        keys: np.ndarray | None = None,
    ) -> np.ndarray:
        kv = keys if keys is not None else x
        q = self._split_heads_nd(self.q_proj.infer(x))
        k = self._split_heads_nd(self.k_proj.infer(kv))
        v = self._split_heads_nd(self.v_proj.infer(kv))
        scores = (q @ np.swapaxes(k, -1, -2)) * q.dtype.type(
            1.0 / np.sqrt(self.head_dim)
        )
        if mask is not None:
            key_mask = np.asarray(mask, dtype=bool)[:, None, None, :]
            attn = inference.masked_softmax_nd(scores, key_mask, axis=-1)
        else:
            attn = inference.softmax_nd(scores, axis=-1)
        context = attn @ v
        batch, _, q_time, _ = context.shape
        merged = np.ascontiguousarray(context.transpose(0, 2, 1, 3)).reshape(
            batch, q_time, self.model_dim
        )
        return self.out_proj.infer(merged)


class TransformerEncoderLayer(Module):
    """Post-norm transformer encoder block: MHSA + position-wise FFN."""

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        ffn_dim: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        ffn_dim = ffn_dim if ffn_dim is not None else 4 * model_dim
        self.attention = MultiHeadSelfAttention(model_dim, num_heads, rng=rng)
        self.norm1 = LayerNorm(model_dim)
        self.norm2 = LayerNorm(model_dim)
        self.ffn_in = Linear(model_dim, ffn_dim, rng=rng)
        self.ffn_out = Linear(ffn_dim, model_dim, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = self.norm1(x + self.attention(x, mask=mask))
        x = self.norm2(x + self.ffn_out(self.ffn_in(x).relu()))
        return x

    def infer(self, x: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        x = self.norm1.infer(x + self.attention.infer(x, mask=mask))
        hidden = inference.relu_nd(self.ffn_in.infer(x))
        x = self.norm2.infer(x + self.ffn_out.infer(hidden))
        return x


class InducedSetAttention(Module):
    """SetRank-style induced multi-head self-attention block (IMSAB).

    A small set of learned inducing points attends over the input set, and
    the input then attends over the induced summary — giving a
    permutation-equivariant encoder with cost linear in list length.
    """

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        num_inducing: int = 4,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.inducing = Parameter(
            rng.normal(0.0, 0.1, size=(num_inducing, model_dim))
        )
        self.attend_to_set = MultiHeadSelfAttention(model_dim, num_heads, rng=rng)
        self.attend_to_induced = MultiHeadSelfAttention(model_dim, num_heads, rng=rng)
        self.norm = LayerNorm(model_dim)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        batch = x.shape[0]
        num_inducing, model_dim = self.inducing.shape
        seed = self.inducing.reshape(1, num_inducing, model_dim) + Tensor(
            np.zeros((batch, num_inducing, model_dim))
        )
        induced = self.attend_to_set(seed, mask=mask, keys=x)
        out = self.attend_to_induced(x, keys=induced)
        return self.norm(x + out)


class GatedLocalAttention(Module):
    """SRGA-style attention with a unidirectional (causal) branch, a local
    windowed branch, and a learned gate fusing them.

    The causal branch models the top-down browsing behavior; the local branch
    models interactions between neighboring items (window of +-``window``).
    """

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        window: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.causal_attn = MultiHeadSelfAttention(model_dim, num_heads, rng=rng)
        self.local_attn = MultiHeadSelfAttention(model_dim, num_heads, rng=rng)
        self.gate = Linear(2 * model_dim, model_dim, rng=rng)
        self.norm = LayerNorm(model_dim)

    def _structural_softmax(
        self, attn_module: MultiHeadSelfAttention, x: Tensor, allowed: np.ndarray
    ) -> Tensor:
        q = attn_module._split_heads(attn_module.q_proj(x))
        k = attn_module._split_heads(attn_module.k_proj(x))
        v = attn_module._split_heads(attn_module.v_proj(x))
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(attn_module.head_dim))
        attn = F.masked_softmax(scores, allowed[None, None, :, :], axis=-1)
        context = attn @ v
        batch, _, time, _ = context.shape
        merged = context.transpose(0, 2, 1, 3).reshape(
            batch, time, attn_module.model_dim
        )
        return attn_module.out_proj(merged)

    def forward(self, x: Tensor) -> Tensor:
        time = x.shape[1]
        causal = np.tril(np.ones((time, time), dtype=bool))
        offsets = np.abs(np.arange(time)[:, None] - np.arange(time)[None, :])
        local = offsets <= self.window
        causal_out = self._structural_softmax(self.causal_attn, x, causal)
        local_out = self._structural_softmax(self.local_attn, x, local)
        gate = self.gate(Tensor.concatenate([causal_out, local_out], axis=2)).sigmoid()
        fused = gate * causal_out + (1.0 - gate) * local_out
        return self.norm(x + fused)
