"""Loss functions used across the re-ranking models.

- pointwise BCE (RAPID, Eq. 11; DLCM/PRM variants),
- pairwise hinge / BPR (DESA, SVMRank),
- listwise softmax cross entropy (an alternative listwise objective).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor, as_tensor

__all__ = [
    "pointwise_bce",
    "pointwise_bce_with_logits",
    "pairwise_hinge",
    "pairwise_bpr",
    "listwise_softmax_ce",
    "attention_rank_loss",
]


def pointwise_bce(
    probs: Tensor, clicks: np.ndarray, mask: np.ndarray | None = None
) -> Tensor:
    """Paper Eq. 11: BCE between predicted attraction and observed clicks.

    ``mask`` marks valid (non-padded) positions of each list.
    """
    weight = None if mask is None else np.asarray(mask, dtype=np.float64)
    return F.binary_cross_entropy(probs, clicks, weight=weight)


def pointwise_bce_with_logits(
    logits: Tensor, clicks: np.ndarray, mask: np.ndarray | None = None
) -> Tensor:
    weight = None if mask is None else np.asarray(mask, dtype=np.float64)
    return F.binary_cross_entropy_with_logits(logits, clicks, weight=weight)


def _pair_matrices(
    scores: Tensor, clicks: np.ndarray, mask: np.ndarray | None
) -> tuple[Tensor, np.ndarray]:
    """Score differences s_i - s_j and indicator of (clicked_i, unclicked_j)."""
    scores = as_tensor(scores)
    clicks = np.asarray(clicks, dtype=np.float64)
    valid = (
        np.ones_like(clicks, dtype=bool)
        if mask is None
        else np.asarray(mask, dtype=bool)
    )
    pos = (clicks > 0.5) & valid
    neg = (clicks <= 0.5) & valid
    pair_mask = pos[:, :, None] & neg[:, None, :]
    batch, length = scores.shape
    diff = scores.reshape(batch, length, 1) - scores.reshape(batch, 1, length)
    return diff, pair_mask.astype(np.float64)


def pairwise_hinge(
    scores: Tensor,
    clicks: np.ndarray,
    mask: np.ndarray | None = None,
    margin: float = 1.0,
) -> Tensor:
    """Mean hinge loss over all (clicked, unclicked) pairs in each list."""
    diff, pair_mask = _pair_matrices(scores, clicks, mask)
    hinge = (Tensor(np.full(diff.shape, margin)) - diff).relu()
    total = max(float(pair_mask.sum()), 1.0)
    return (hinge * Tensor(pair_mask)).sum() * (1.0 / total)


def pairwise_bpr(
    scores: Tensor, clicks: np.ndarray, mask: np.ndarray | None = None
) -> Tensor:
    """Bayesian personalized ranking: -log sigmoid(s_pos - s_neg)."""
    diff, pair_mask = _pair_matrices(scores, clicks, mask)
    loss = -(diff.sigmoid().clip(1e-12, 1.0)).log()
    total = max(float(pair_mask.sum()), 1.0)
    return (loss * Tensor(pair_mask)).sum() * (1.0 / total)


def listwise_softmax_ce(
    scores: Tensor, clicks: np.ndarray, mask: np.ndarray | None = None
) -> Tensor:
    """Softmax cross entropy against the click distribution of each list."""
    clicks = np.asarray(clicks, dtype=np.float64)
    if mask is not None:
        log_probs = F.masked_softmax(scores, mask).clip(1e-12, 1.0).log()
        clicks = clicks * np.asarray(mask, dtype=np.float64)
    else:
        log_probs = scores.log_softmax(axis=-1)
    totals = clicks.sum(axis=-1, keepdims=True)
    target = np.divide(clicks, totals, out=np.zeros_like(clicks), where=totals > 0)
    per_list = -(Tensor(target) * log_probs).sum(axis=-1)
    return per_list.mean()


def attention_rank_loss(
    scores: Tensor, clicks: np.ndarray, mask: np.ndarray | None = None
) -> Tensor:
    """DLCM's attention rank loss: cross entropy between the softmax of the
    scores and the softmax-normalized relevance (clicks)."""
    return listwise_softmax_ce(scores, clicks, mask=mask)
