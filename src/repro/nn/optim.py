"""Optimizers: SGD (with momentum) and Adam (the paper's optimizer)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimizer holding a list of parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing: slot buffers are keyed by parameter position, which
    # is stable because ``Module.parameters()`` iterates depth-first over
    # ordered dicts.  ``repro.resilience.checkpoint`` persists these
    # dicts so a resumed run continues the exact optimizer trajectory.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Json/np-serializable optimizer state (hyper-params + slots)."""
        return {"lr": float(self.lr)}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])

    def _load_slots(self, name: str, target: list, source) -> None:
        source = list(source)
        if len(source) != len(target):
            raise ValueError(
                f"optimizer state mismatch: {len(source)} {name} slot(s) "
                f"for {len(target)} parameter(s)"
            )
        for index, (slot, saved) in enumerate(zip(target, source)):
            saved = np.asarray(saved, dtype=slot.dtype)
            if saved.shape != slot.shape:
                raise ValueError(
                    f"optimizer {name}[{index}] shape {saved.shape} != "
                    f"parameter shape {slot.shape}"
                )
            slot[...] = saved


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._load_slots("velocity", self._velocity, state["velocity"])


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["step"] = int(self._step)
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._step = int(state["step"])
        self._load_slots("m", self._m, state["m"])
        self._load_slots("v", self._v, state["v"])


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm.
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad = param.grad * scale
    return total
