"""Sans-io request coalescing: the deterministic core of the batcher.

The Bi-LSTM history encoder and the per-topic encoders batch naturally
across users (``data/batching.py`` pads and masks), so N concurrent
single-user requests cost barely more than one once coalesced.  This
module is the *decision logic only* — no event loop, no sleeps, no
threads — so every coalescing decision is a pure function of (arrival
order, injectable clock), replayable in tests with a
:class:`~repro.serve.clock.ManualClock` and a seeded arrival schedule.
The asyncio wrapper (:class:`~repro.serve.service.RerankService`) drives
it; tests drive it directly.

Rules, in decision order:

1. Requests group by an opaque ``key`` — the service uses
   ``(tenant, list_length)``: one tenant's model per forward pass, and
   equal-length lists so padding never changes a row's arrays relative
   to serving that request alone (the bitwise-identity contract).
2. A group *closes full* the moment it reaches ``max_batch_size``.
3. An open group *closes on window*: :meth:`due` releases it once the
   clock passes ``opened_at + max_wait_s`` (the window opens at the
   group's first request — later arrivals ride the remaining window and
   never extend it, so p99 queueing delay is bounded by ``max_wait_s``).
4. Admission control: at most ``max_pending`` requests may be queued;
   :meth:`submit` raises :class:`QueueFullError` beyond that and the
   caller sheds load (the service turns this into a rejection or a
   passthrough slate, per policy).

Telemetry: the ``serve.batch_size`` histogram (+ windowed twin), the
``serve.batcher.{submitted,shed}`` counters, and the
``serve.batcher.pending`` gauge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Hashable

from ..obs import get_registry
from ..obs import windows as _windows

__all__ = ["Batch", "BatcherCore", "QueueFullError"]


class QueueFullError(RuntimeError):
    """Admission control rejected a request: the pending queue is full."""

    def __init__(self, pending: int, max_pending: int) -> None:
        super().__init__(
            f"batcher queue full ({pending} pending >= {max_pending})"
        )
        self.pending = pending
        self.max_pending = max_pending


@dataclass
class Batch:
    """One closed group, ready for a batched forward pass."""

    key: Hashable
    seqs: list[int]  # submission sequence numbers, arrival order
    payloads: list  # caller payloads, same order
    opened_at: float
    closed_at: float
    reason: str  # "full" | "window" | "flush"

    @property
    def size(self) -> int:
        return len(self.seqs)


@dataclass
class _Group:
    opened_at: float
    seqs: list[int] = field(default_factory=list)
    payloads: list = field(default_factory=list)


class BatcherCore:
    """Deterministic coalescing state machine (see module docstring)."""

    def __init__(
        self,
        max_batch_size: int = 16,
        max_wait_ms: float = 2.0,
        max_pending: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1000.0
        self.max_pending = max_pending
        self._clock = clock
        self._groups: dict[Hashable, _Group] = {}  # insertion = opening order
        self._ready: list[Batch] = []  # closed-full, awaiting collection
        self._pending = 0
        self._seq = 0

    # -- state ---------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests submitted but not yet released in a batch."""
        return self._pending

    def next_deadline(self) -> float | None:
        """Earliest instant a window close becomes due (None when idle).

        Full groups already sitting in the ready list are due *now*.
        """
        if self._ready:
            return self._clock()
        if not self._groups:
            return None
        oldest = min(group.opened_at for group in self._groups.values())
        return oldest + self.max_wait_s

    # -- submission ----------------------------------------------------
    def submit(self, key: Hashable, payload) -> int:
        """Queue one request; returns its sequence number.

        Raises :class:`QueueFullError` when admission control rejects it.
        """
        registry = get_registry()
        if self._pending >= self.max_pending:
            registry.counter("serve.batcher.shed").inc()
            raise QueueFullError(self._pending, self.max_pending)
        seq = self._seq
        self._seq += 1
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _Group(opened_at=self._clock())
        group.seqs.append(seq)
        group.payloads.append(payload)
        self._pending += 1
        registry.counter("serve.batcher.submitted").inc()
        registry.gauge("serve.batcher.pending").set(self._pending)
        if len(group.seqs) >= self.max_batch_size:
            self._close(key, group, "full")
        return seq

    # -- release -------------------------------------------------------
    def due(self) -> list[Batch]:
        """Release every closed-full group plus expired-window groups.

        Order is deterministic: full groups in closing order, then window
        groups in opening order.
        """
        now = self._clock()
        released = self._ready
        self._ready = []
        for key in [
            k
            for k, g in self._groups.items()
            if now - g.opened_at >= self.max_wait_s
        ]:
            released.append(self._close(key, self._groups[key], "window"))
        self._account(released)
        return released

    def flush(self) -> list[Batch]:
        """Release everything pending regardless of the clock (drain)."""
        released = self._ready
        self._ready = []
        for key in list(self._groups):
            released.append(self._close(key, self._groups[key], "flush"))
        self._account(released)
        return released

    # -- internals -----------------------------------------------------
    def _close(self, key: Hashable, group: _Group, reason: str) -> Batch:
        del self._groups[key]
        batch = Batch(
            key=key,
            seqs=group.seqs,
            payloads=group.payloads,
            opened_at=group.opened_at,
            closed_at=self._clock(),
            reason=reason,
        )
        if reason == "full":
            self._ready.append(batch)
        return batch

    def _account(self, released: list[Batch]) -> None:
        if not released:
            return
        registry = get_registry()
        for batch in released:
            self._pending -= batch.size
            registry.histogram("serve.batch_size").observe(batch.size)
            _windows.observe("serve.batch_size", batch.size)
        registry.gauge("serve.batcher.pending").set(self._pending)
