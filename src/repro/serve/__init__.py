"""Online serving layer: batched multi-tenant re-ranking behind a cache.

The deployed systems RAPID competes with (PRM at Taobao, Huawei's live
diversified re-ranker) coalesce concurrent user requests into batched
forward passes behind strict latency budgets.  This package turns the
hardened library into that serving system:

- :mod:`repro.serve.clock` — :class:`ManualClock`, the injectable
  virtual clock every serving component accepts so coalescing windows,
  TTL expiry, and load generation replay deterministically in tests;
- :mod:`repro.serve.cache` — :class:`SlateCache`, a TTL + LRU slate
  cache keyed on ``(tenant, user, candidate-set hash)`` with full-key
  collision discrimination and invalidation-on-history-update;
- :mod:`repro.serve.batcher` — :class:`BatcherCore`, the sans-io
  coalescing state machine (group by ``(tenant, list_length)``, close on
  size or window, bounded admission queue);
- :mod:`repro.serve.service` — :class:`RerankService`, the asyncio
  request loop wiring admission control → cache → batcher → batched
  ``Reranker.rerank`` (typically a
  :class:`~repro.resilience.degrade.ResilientReranker`) → ``repro.obs``;
- :mod:`repro.serve.loadgen` — Zipfian closed-loop load generation over
  millions of distinct virtual users, in wall-clock mode (benchmarks)
  or virtual-time mode (deterministic tests).

See DESIGN.md §11 for the architecture and TESTING.md for the
fake-clock/seeded-scheduler test contract.
"""

from .batcher import Batch, BatcherCore, QueueFullError
from .cache import SlateCache
from .clock import ManualClock
from .loadgen import LoadGenerator, LoadReport, ZipfianWorkload
from .service import (
    RerankService,
    ServeRequest,
    ServeResult,
    ServiceOverloaded,
    ServingTenant,
)

__all__ = [
    "Batch",
    "BatcherCore",
    "QueueFullError",
    "SlateCache",
    "ManualClock",
    "LoadGenerator",
    "LoadReport",
    "ZipfianWorkload",
    "RerankService",
    "ServeRequest",
    "ServeResult",
    "ServiceOverloaded",
    "ServingTenant",
]
