"""The asyncio rerank service: admission → cache → batcher → model → obs.

One :class:`RerankService` fronts any number of *tenants* — independent
(model, catalog, population, histories) worlds sharing the process, the
batcher, and the cache (cache keys are tenant-qualified).  A request
travels:

1. **admission control** — the batcher's bounded queue; beyond
   ``max_pending`` the request is shed per ``shed_policy``: ``"reject"``
   raises :class:`ServiceOverloaded` (the client retries elsewhere),
   ``"passthrough"`` serves the initial ranking unchanged — degraded but
   valid, the same last-resort slate the resilience layer uses;
2. **slate cache** — an exact-identity hit (user, candidates, scores,
   tenant) skips the model entirely;
3. **batcher** — requests coalesce by ``(tenant, list_length)`` until
   the group is full or its window expires (:mod:`repro.serve.batcher`);
4. **batched rerank** — one ``build_batch`` + one ``Reranker.rerank``
   per group.  Wrap the tenant's model in a
   :class:`~repro.resilience.degrade.ResilientReranker` to get
   deadlines, circuit breaking, and RAPID→MMR→passthrough fallback under
   the service;
5. **observability** — ``serve.request_ms`` (registry + windowed
   p50/p95/p99), ``serve.requests{source=}``, the batcher's batch-size
   histogram, cache hit counters, and an optional
   :class:`~repro.obs.slo.SLOMonitor` fed every request outcome.

Determinism contract: the clock is injectable and the service only acts
when driven — ``await service.drain()`` (tests, virtual-time load
generation) or the background dispatcher started by ``start()``
(production, the only place a real timer exists).  Given the same
arrival order and clock schedule, batch compositions and served slates
replay exactly.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..data.batching import RerankBatch, build_batch
from ..data.schema import Catalog, Population, RankingRequest
from ..obs import get_registry
from ..obs import windows as _windows
from ..rerank.base import Reranker
from ..resilience.degrade import ResilientReranker
from .batcher import BatcherCore, QueueFullError
from .cache import SlateCache

__all__ = [
    "ServeRequest",
    "ServeResult",
    "ServingTenant",
    "ServiceOverloaded",
    "RerankService",
]


class ServiceOverloaded(RuntimeError):
    """Admission control shed this request (``shed_policy="reject"``)."""


@dataclass
class ServeRequest:
    """One user's rerank request as it arrives at the service edge.

    ``cache_user`` is the *identity* used for slate caching and history
    bookkeeping; it defaults to ``user_id`` but load generators map
    millions of virtual users onto a finite feature population while
    keeping distinct cache identities.
    """

    user_id: int
    items: np.ndarray
    initial_scores: np.ndarray
    tenant: str = "default"
    cache_user: int | None = None

    def __post_init__(self) -> None:
        self.items = np.asarray(self.items, dtype=np.int64)
        self.initial_scores = np.asarray(self.initial_scores, dtype=np.float64)
        if self.cache_user is None:
            self.cache_user = int(self.user_id)

    @property
    def list_length(self) -> int:
        return int(self.items.size)


@dataclass
class ServeResult:
    """The served slate plus how it was produced."""

    permutation: np.ndarray  # (L,) best-first indices into the request
    ranked_items: np.ndarray  # (L,) item ids in served order
    source: str  # "batched" | "cache" | "shed"
    batch_size: int  # forward-pass batch (1 for cache/shed)
    latency_ms: float
    seq: int  # batcher sequence number (-1 for cache/shed)


@dataclass
class ServingTenant:
    """One tenant's model and world: everything a forward pass needs."""

    reranker: Reranker
    catalog: Catalog
    population: Population
    histories: list
    topic_history_length: int = 5
    flat_history_length: int = 20
    name: str = field(default="default")

    def build(self, requests: "list[ServeRequest]") -> RerankBatch:
        return build_batch(
            [
                RankingRequest(r.user_id, r.items, r.initial_scores)
                for r in requests
            ],
            self.catalog,
            self.population,
            self.histories,
            topic_history_length=self.topic_history_length,
            flat_history_length=self.flat_history_length,
        )


@dataclass
class _Pending:
    request: ServeRequest
    future: asyncio.Future
    submitted_at: float


class RerankService:
    """Batched multi-tenant rerank serving (see module docstring).

    Parameters
    ----------
    tenants:
        A single :class:`ServingTenant` or a name → tenant mapping.
    cache:
        A :class:`SlateCache`, or ``None`` to disable caching.
    max_batch_size / max_wait_ms / max_pending:
        Coalescing and admission parameters (:class:`BatcherCore`).
    shed_policy:
        ``"reject"`` or ``"passthrough"`` (see module docstring).
    clock:
        Monotonic-seconds callable shared by latency accounting and the
        batcher; inject a :class:`~repro.serve.clock.ManualClock` in
        tests.
    slo_monitor:
        Optional :class:`~repro.obs.slo.SLOMonitor`; each request records
        (latency, shed-or-failed) and burn rates re-evaluate per request.
    """

    def __init__(
        self,
        tenants: "ServingTenant | Mapping[str, ServingTenant]",
        cache: SlateCache | None = None,
        max_batch_size: int = 16,
        max_wait_ms: float = 2.0,
        max_pending: int = 1024,
        shed_policy: str = "reject",
        clock: Callable[[], float] = time.monotonic,
        slo_monitor=None,
    ) -> None:
        if shed_policy not in ("reject", "passthrough"):
            raise ValueError("shed_policy must be 'reject' or 'passthrough'")
        if isinstance(tenants, ServingTenant):
            tenants = {tenants.name: tenants}
        if not tenants:
            raise ValueError("at least one tenant is required")
        self.tenants = dict(tenants)
        self.cache = cache
        self.shed_policy = shed_policy
        self._clock = clock
        self.slo_monitor = slo_monitor
        self.batcher = BatcherCore(
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            max_pending=max_pending,
            clock=clock,
        )
        self._wake: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    async def rerank(self, request: ServeRequest) -> ServeResult:
        """Serve one request; always returns a valid slate or sheds."""
        start = self._clock()
        tenant = self.tenants.get(request.tenant)
        if tenant is None:
            raise KeyError(f"unknown tenant {request.tenant!r}")
        if self.cache is not None:
            slate = self.cache.get(
                request.cache_user,
                request.items,
                request.initial_scores,
                tenant=request.tenant,
            )
            if slate is not None:
                return self._finish(request, slate, "cache", 1, -1, start)
        try:
            loop = asyncio.get_running_loop()
            future: asyncio.Future = loop.create_future()
            seq = self.batcher.submit(
                (request.tenant, request.list_length),
                _Pending(request, future, start),
            )
        except QueueFullError as error:
            return self._shed(request, start, error)
        if self._wake is not None:
            self._wake.set()
        permutation, batch_size = await future
        if self.cache is not None:
            self.cache.put(
                request.cache_user,
                request.items,
                request.initial_scores,
                permutation,
                tenant=request.tenant,
            )
        return self._finish(request, permutation, "batched", batch_size, seq, start)

    def _shed(
        self, request: ServeRequest, start: float, error: QueueFullError
    ) -> ServeResult:
        get_registry().counter(
            "serve.requests", tenant=request.tenant, source="shed"
        ).inc()
        if self.slo_monitor is not None:
            self.slo_monitor.record(error=True)
            self.slo_monitor.evaluate()
        if self.shed_policy == "reject":
            raise ServiceOverloaded(str(error)) from error
        slate = np.arange(request.list_length)
        return self._finish(
            request, slate, "shed", 1, -1, start, count_request=False
        )

    def _finish(
        self,
        request: ServeRequest,
        permutation: np.ndarray,
        source: str,
        batch_size: int,
        seq: int,
        start: float,
        count_request: bool = True,
    ) -> ServeResult:
        latency_ms = 1000.0 * (self._clock() - start)
        if count_request:
            get_registry().counter(
                "serve.requests", tenant=request.tenant, source=source
            ).inc()
            get_registry().histogram(
                "serve.request_ms", tenant=request.tenant
            ).observe(latency_ms)
            _windows.observe("serve.request_ms", latency_ms, tenant=request.tenant)
            _windows.mark("serve.request_rate", tenant=request.tenant)
            if self.slo_monitor is not None:
                self.slo_monitor.record(latency_ms=latency_ms, error=False)
                self.slo_monitor.evaluate()
        return ServeResult(
            permutation=permutation,
            ranked_items=request.items[permutation],
            source=source,
            batch_size=batch_size,
            latency_ms=latency_ms,
            seq=seq,
        )

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def serve_due(self) -> int:
        """Run the forward pass for every due group; returns rows served."""
        return self._serve(self.batcher.due())

    async def drain(self) -> int:
        """Flush everything pending regardless of the clock (tests/shutdown).

        Yields to the loop first so ``rerank`` coroutines created in the
        same tick get to submit before the flush.
        """
        await asyncio.sleep(0)
        return self._serve(self.batcher.flush())

    def _serve(self, batches) -> int:
        served = 0
        for batch in batches:
            tenant = self.tenants[batch.key[0]]
            pendings: "list[_Pending]" = batch.payloads
            try:
                rerank_batch = tenant.build([p.request for p in pendings])
                permutations = tenant.reranker.rerank(rerank_batch)
            except Exception as error:  # noqa: BLE001 - fail the waiters, not the loop
                for pending in pendings:
                    if not pending.future.done():
                        pending.future.set_exception(error)
                continue
            for row, pending in enumerate(pendings):
                if not pending.future.done():
                    pending.future.set_result((permutations[row], batch.size))
            served += batch.size
        return served

    # ------------------------------------------------------------------
    # Background dispatcher (production mode; tests drive drain() instead)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the background dispatcher (idempotent)."""
        if self._dispatcher is not None:
            return
        self._wake = asyncio.Event()
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    async def stop(self) -> None:
        """Stop the dispatcher and drain anything still queued."""
        if self._dispatcher is None:
            return
        task, self._dispatcher = self._dispatcher, None
        self._wake.set()
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        self._wake = None
        await self.drain()

    async def _dispatch_loop(self) -> None:
        while True:
            deadline = self.batcher.next_deadline()
            if deadline is None:
                await self._wake.wait()
                self._wake.clear()
                continue
            delay = deadline - self._clock()
            if delay > 0:
                # Real-time only: the window timer.  Wakes early when a
                # submission fills a batch.
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=delay)
                except asyncio.TimeoutError:
                    pass
            self._wake.clear()
            self.serve_due()

    # ------------------------------------------------------------------
    # State-changing control plane
    # ------------------------------------------------------------------
    def update_history(
        self, user_id: int, new_items, tenant: str = "default"
    ) -> None:
        """Append click/consumption feedback and invalidate cached slates.

        The user's next request re-runs the model against the updated
        history — a stale slate is never served across this boundary.
        """
        serving = self.tenants[tenant]
        new_items = np.asarray(new_items, dtype=np.int64)
        serving.histories[user_id] = np.concatenate(
            [np.asarray(serving.histories[user_id], dtype=np.int64), new_items]
        )
        if self.cache is not None:
            self.cache.invalidate_user(user_id, tenant=tenant)
        get_registry().counter("serve.history_updates", tenant=tenant).inc()

    def swap_model(self, reranker: Reranker, tenant: str = "default") -> Reranker:
        """Swap a tenant's model mid-flight; returns the old one.

        When the tenant runs behind a :class:`ResilientReranker`, the
        wrapper stays (breaker state and fallbacks intact) and only its
        primary is swapped — which also fires
        :func:`repro.nn.inference.invalidate_caches` on both models, so
        in-place-mutated weights can never serve stale cached casts.
        Every cached slate for the tenant is dropped either way.
        """
        serving = self.tenants[tenant]
        if isinstance(serving.reranker, ResilientReranker):
            old = serving.reranker.swap_primary(reranker)
        else:
            old = serving.reranker
            serving.reranker = reranker
        if self.cache is not None:
            self.cache.clear(tenant=tenant)
        get_registry().counter("serve.model_swaps", tenant=tenant).inc()
        return old
