"""Injectable clocks for the serving layer.

Every serving component (batcher, cache, load generator, SLO monitors)
takes a ``clock`` callable returning monotonic seconds — ``time.monotonic``
in production, a :class:`ManualClock` in tests.  With a manual clock there
is not a single wall-clock sleep anywhere in the serving test suite: a
test *advances* time explicitly, so every coalescing-window close, TTL
expiry, and EWMA decay is a deterministic function of the scripted
schedule.  This is the same contract the circuit breaker
(:class:`~repro.resilience.degrade.CircuitBreaker`) and the windowed
metrics (:mod:`repro.obs.windows`) already follow.
"""

from __future__ import annotations

__all__ = ["ManualClock"]


class ManualClock:
    """A monotonic clock that only moves when told to.

    Callable (``clock()`` returns the current virtual time in seconds) so
    it drops into every ``clock=time.monotonic`` parameter in the repo.
    ``sleep`` advances time — handing ``clock.sleep`` to code expecting a
    sleeper (e.g. :func:`repro.resilience.chaos.chaos`) turns waits into
    instantaneous, replayable jumps.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; rejects negative jumps (clock is monotonic)."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot move backwards")
        self._now += seconds
        return self._now

    def advance_to(self, deadline: float) -> float:
        """Jump to ``deadline`` if it is in the future; no-op otherwise."""
        if deadline > self._now:
            self._now = deadline
        return self._now

    def sleep(self, seconds: float) -> None:
        """Sleeper-shaped alias for :meth:`advance`."""
        self.advance(seconds)
