"""Closed-loop load generation: Zipfian traffic from millions of users.

Production rerank traffic is heavy-tailed: a small set of very active
users dominates request volume while a long tail of near-cold users keeps
arriving.  :class:`ZipfianWorkload` reproduces that shape — virtual user
``k`` (rank order) is drawn with probability ∝ ``(k+1)^-s`` over up to
millions of *distinct* virtual identities, each mapped onto the finite
feature population for the forward pass while keeping its own cache
identity (``ServeRequest.cache_user``).  A virtual user's candidate list
is a deterministic function of its identity (a per-user seeded RNG), so
hot users re-issue identical requests — the regime a slate cache exists
for — and cold users miss, exactly as in live serving.

:class:`LoadGenerator` drives a :class:`~repro.serve.service
.RerankService` closed-loop (a fixed number of in-flight requests; each
completion immediately issues the next) in two modes:

- :meth:`run` — wall clock, against a started service (the benchmark
  path: ``benchmarks/bench_serve.py`` gates p99 and requests/sec);
- :meth:`run_virtual` — a :class:`~repro.serve.clock.ManualClock` is
  advanced to each batching deadline and the service is drained
  explicitly: no sleeps, no timers, bit-replayable — the smoke-tier
  serving tests run the full closed loop this way in milliseconds.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from .clock import ManualClock
from .service import RerankService, ServeRequest, ServiceOverloaded

__all__ = ["ZipfianWorkload", "LoadGenerator", "LoadReport"]


class ZipfianWorkload:
    """Seeded request source over a bounded-Zipf virtual-user population.

    Parameters
    ----------
    catalog / population:
        The tenant's world; candidate items and forward-pass users come
        from here.
    num_virtual_users:
        Distinct cache identities (rank 0 = hottest).  Millions are fine:
        the rank distribution is one cumulative array.
    exponent:
        Zipf exponent ``s``; ~1.1 matches typical recsys traffic skew.
    list_length:
        Candidates per request.
    rescore_probability:
        Chance a request carries freshly-drawn initial scores instead of
        the user's stable ones — upstream-ranker churn, forcing a cache
        miss for an otherwise-hot request.
    """

    def __init__(
        self,
        catalog,
        population,
        num_virtual_users: int = 1_000_000,
        exponent: float = 1.1,
        list_length: int = 50,
        tenant: str = "default",
        rescore_probability: float = 0.0,
        seed: int = 0,
    ) -> None:
        if num_virtual_users < 1:
            raise ValueError("num_virtual_users must be >= 1")
        num_items = catalog.features.shape[0]
        if list_length > num_items:
            raise ValueError("list_length exceeds catalog size")
        self.catalog = catalog
        self.num_users = population.features.shape[0]
        self.num_items = num_items
        self.num_virtual_users = num_virtual_users
        self.list_length = list_length
        self.tenant = tenant
        self.rescore_probability = rescore_probability
        self.seed = seed
        self._rng = np.random.default_rng(np.random.SeedSequence((seed, 0xA11)))
        ranks = np.arange(1, num_virtual_users + 1, dtype=np.float64)
        weights = ranks**-exponent
        self._cumulative = np.cumsum(weights / weights.sum())

    def sample_virtual_user(self) -> int:
        """One virtual user id, Zipf-distributed by rank."""
        u = self._rng.random()
        return int(np.searchsorted(self._cumulative, u, side="right"))

    def request_for(self, virtual_user: int) -> ServeRequest:
        """The (stable) request this virtual user issues."""
        user_rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, 0xC0FFEE, virtual_user))
        )
        items = user_rng.choice(
            self.num_items, size=self.list_length, replace=False
        )
        scores = user_rng.normal(size=self.list_length)
        if (
            self.rescore_probability > 0.0
            and self._rng.random() < self.rescore_probability
        ):
            scores = self._rng.normal(size=self.list_length)
        return ServeRequest(
            user_id=virtual_user % self.num_users,
            items=items,
            initial_scores=scores,
            tenant=self.tenant,
            cache_user=virtual_user,
        )

    def request(self) -> ServeRequest:
        return self.request_for(self.sample_virtual_user())


@dataclass
class LoadReport:
    """Aggregate outcome of one closed-loop run."""

    requests: int
    duration_s: float
    latencies_ms: np.ndarray
    sources: dict = field(default_factory=dict)
    shed: int = 0

    @property
    def requests_per_sec(self) -> float:
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        if self.latencies_ms.size == 0:
            return 0.0
        return float(np.percentile(self.latencies_ms, q))

    @property
    def p50_ms(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_ms(self) -> float:
        return self.latency_percentile(95)

    @property
    def p99_ms(self) -> float:
        return self.latency_percentile(99)

    @property
    def cache_hit_rate(self) -> float:
        served = sum(self.sources.values())
        return self.sources.get("cache", 0) / served if served else 0.0

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "duration_s": round(self.duration_s, 4),
            "requests_per_sec": round(self.requests_per_sec, 2),
            "p50_ms": round(self.p50_ms, 4),
            "p95_ms": round(self.p95_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "shed": self.shed,
            "sources": dict(sorted(self.sources.items())),
        }


class LoadGenerator:
    """Closed-loop driver: ``concurrency`` requests always in flight."""

    def __init__(
        self,
        service: RerankService,
        workload: ZipfianWorkload,
        concurrency: int = 32,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.service = service
        self.workload = workload
        self.concurrency = concurrency

    async def _one(self, request: ServeRequest, outcomes: list) -> None:
        try:
            result = await self.service.rerank(request)
        except ServiceOverloaded:
            outcomes.append(("shed", None))
        else:
            outcomes.append((result.source, result.latency_ms))

    async def run(self, num_requests: int) -> LoadReport:
        """Wall-clock closed loop against a *started* service."""
        outcomes: list = []
        remaining = num_requests
        started = time.perf_counter()

        async def worker() -> None:
            nonlocal remaining
            while remaining > 0:
                remaining -= 1
                await self._one(self.workload.request(), outcomes)

        await asyncio.gather(
            *(worker() for _ in range(min(self.concurrency, num_requests)))
        )
        return self._report(outcomes, time.perf_counter() - started)

    async def run_virtual(
        self, num_requests: int, clock: ManualClock
    ) -> LoadReport:
        """Deterministic closed loop on a manual clock (no timers).

        The service must *not* have a running dispatcher: this driver
        advances ``clock`` to each batching deadline and serves due
        groups itself, so the whole run is a replayable function of the
        workload seed.
        """
        outcomes: list = []
        issued = 0
        tasks: set[asyncio.Task] = set()
        loop = asyncio.get_running_loop()
        started = clock.now
        while issued < num_requests or tasks:
            while issued < num_requests and len(tasks) < self.concurrency:
                request = self.workload.request()
                tasks.add(loop.create_task(self._one(request, outcomes)))
                issued += 1
            # Two ticks: one to enter rerank(), one for cache-hit tasks to
            # finish resolving.
            await asyncio.sleep(0)
            await asyncio.sleep(0)
            deadline = self.service.batcher.next_deadline()
            if deadline is not None:
                clock.advance_to(deadline)
                self.service.serve_due()
                await asyncio.sleep(0)
            done = {t for t in tasks if t.done()}
            for task in done:
                task.result()  # propagate unexpected failures to the test
            tasks -= done
        return self._report(outcomes, max(clock.now - started, 1e-12))

    @staticmethod
    def _report(outcomes: list, duration_s: float) -> LoadReport:
        sources: dict = {}
        latencies = []
        shed = 0
        for source, latency_ms in outcomes:
            if source == "shed" and latency_ms is None:
                shed += 1
                continue
            sources[source] = sources.get(source, 0) + 1
            if latency_ms is not None:
                latencies.append(latency_ms)
        return LoadReport(
            requests=len(outcomes),
            duration_s=duration_s,
            latencies_ms=np.asarray(latencies, dtype=np.float64),
            sources=sources,
            shed=shed,
        )
