"""Slate cache: TTL + LRU over ``(tenant, user, candidate-set)`` keys.

A re-ranked slate is a pure function of (model weights, user history,
candidate list with its initial scores).  Between history updates and
model swaps that function is stable, so hot users — Zipfian traffic makes
a few users *very* hot — can be answered without a forward pass.  The
cache therefore keys on the full request identity and is invalidated by
the two events that change the function:

- ``invalidate_user`` — the user's history changed (the service calls
  this from ``update_history``); every slate cached for that user is
  dropped, so a stale slate is never served after new feedback arrives;
- ``clear`` — the model changed (``ResilientReranker.swap_primary``
  swaps weights mid-flight; the service clears the tenant's slates).

Keys are hashed to a compact digest for the index, but **collisions are
distinguished by full-key comparison**: each digest bucket chains
``(full_key, entry)`` pairs and a lookup compares the candidate ids and
initial scores byte-for-byte before declaring a hit.  The hash function
is injectable precisely so tests can force collisions and prove the
discrimination (``hash_fn=lambda payload: 0``).

Eviction is LRU over digest buckets (a hit refreshes recency); expiry is
TTL against an injectable clock, so tests advance a
:class:`~repro.serve.clock.ManualClock` instead of sleeping.  Telemetry:
``serve.cache.{hits,misses,expired,evictions,invalidations}`` counters
and the ``serve.cache.size`` gauge.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Callable

import numpy as np

from ..obs import get_registry

__all__ = ["SlateCache", "candidate_digest"]


def candidate_digest(payload: bytes) -> int:
    """Stable 64-bit digest of a packed request key (default hash_fn)."""
    return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")


class _Entry:
    __slots__ = ("slate", "stored_at")

    def __init__(self, slate: np.ndarray, stored_at: float) -> None:
        self.slate = slate
        self.stored_at = stored_at


class SlateCache:
    """Bounded TTL cache mapping request identity → served permutation.

    Parameters
    ----------
    capacity:
        Maximum number of digest buckets kept (LRU eviction beyond it).
    ttl_s:
        Entry lifetime in seconds; ``None`` disables expiry.
    clock:
        Monotonic-seconds callable (injectable for tests).
    hash_fn:
        ``bytes -> int`` digest used for the bucket index.  Injectable so
        tests can force collisions; correctness never depends on it.
    """

    def __init__(
        self,
        capacity: int = 4096,
        ttl_s: float | None = 30.0,
        clock: Callable[[], float] = time.monotonic,
        hash_fn: Callable[[bytes], int] = candidate_digest,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (or None to disable)")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._clock = clock
        self._hash = hash_fn
        self._lock = threading.Lock()
        # digest bucket -> [(full_key, entry), ...] chained on collision
        self._buckets: "OrderedDict[tuple, list[tuple[bytes, _Entry]]]" = (
            OrderedDict()
        )
        # (tenant, user) -> bucket keys, for invalidation-on-history-update
        self._by_user: dict[tuple, set[tuple]] = {}

    # -- keying --------------------------------------------------------
    @staticmethod
    def _full_key(user_id: int, items, scores, tenant: str) -> bytes:
        """The complete request identity, as canonical bytes.

        Initial scores are part of the identity: the same candidate set
        re-scored by the upstream ranker is a different request, and the
        cached slate would be wrong for it.
        """
        items = np.ascontiguousarray(np.asarray(items, dtype=np.int64))
        scores = np.ascontiguousarray(np.asarray(scores, dtype=np.float64))
        head = f"{tenant}\x00{user_id}\x00{items.size}\x00".encode()
        return head + items.tobytes() + scores.tobytes()

    def _bucket_key(self, user_id: int, tenant: str, payload: bytes) -> tuple:
        return (tenant, user_id, self._hash(payload))

    # -- core ops ------------------------------------------------------
    def get(
        self, user_id: int, items, scores, tenant: str = "default"
    ) -> np.ndarray | None:
        """The cached slate for this exact request, or ``None``."""
        payload = self._full_key(user_id, items, scores, tenant)
        bucket_key = self._bucket_key(user_id, tenant, payload)
        with self._lock:
            chain = self._buckets.get(bucket_key)
            if chain is None:
                self._count("misses")
                return None
            for full_key, entry in chain:
                if full_key != payload:
                    continue
                if (
                    self.ttl_s is not None
                    and self._clock() - entry.stored_at >= self.ttl_s
                ):
                    chain.remove((full_key, entry))
                    if not chain:
                        self._drop_bucket(bucket_key)
                    self._count("expired")
                    self._count("misses")
                    return None
                self._buckets.move_to_end(bucket_key)
                self._count("hits")
                return entry.slate.copy()
            self._count("misses")
            return None

    def put(
        self, user_id: int, items, scores, slate, tenant: str = "default"
    ) -> None:
        """Cache ``slate`` for this exact request (replaces any prior)."""
        payload = self._full_key(user_id, items, scores, tenant)
        bucket_key = self._bucket_key(user_id, tenant, payload)
        entry = _Entry(np.array(slate, copy=True), self._clock())
        with self._lock:
            chain = self._buckets.get(bucket_key)
            if chain is None:
                chain = self._buckets[bucket_key] = []
                self._by_user.setdefault((tenant, user_id), set()).add(bucket_key)
            else:
                chain[:] = [(k, e) for k, e in chain if k != payload]
            chain.append((payload, entry))
            self._buckets.move_to_end(bucket_key)
            while len(self._buckets) > self.capacity:
                evicted_key = next(iter(self._buckets))
                self._drop_bucket(evicted_key)
                self._count("evictions")
            self._publish_size()

    def invalidate_user(self, user_id: int, tenant: str = "default") -> int:
        """Drop every slate cached for ``user_id`` (history changed)."""
        with self._lock:
            keys = self._by_user.pop((tenant, user_id), set())
            for bucket_key in keys:
                self._buckets.pop(bucket_key, None)
            if keys:
                self._count("invalidations", len(keys))
                self._publish_size()
            return len(keys)

    def clear(self, tenant: str | None = None) -> None:
        """Drop everything (or one tenant's entries) — e.g. on model swap."""
        with self._lock:
            if tenant is None:
                self._buckets.clear()
                self._by_user.clear()
            else:
                doomed = [k for k in self._buckets if k[0] == tenant]
                for bucket_key in doomed:
                    del self._buckets[bucket_key]
                for user_key in [u for u in self._by_user if u[0] == tenant]:
                    del self._by_user[user_key]
            self._publish_size()

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return sum(len(chain) for chain in self._buckets.values())

    def hit_rate(self) -> float:
        """Lifetime hit fraction from the registry counters (0 when cold)."""
        registry = get_registry()
        hits = registry.counter("serve.cache.hits").value
        misses = registry.counter("serve.cache.misses").value
        total = hits + misses
        return hits / total if total else 0.0

    # -- internals (lock held) -----------------------------------------
    def _drop_bucket(self, bucket_key: tuple) -> None:
        self._buckets.pop(bucket_key, None)
        user_key = (bucket_key[0], bucket_key[1])
        keys = self._by_user.get(user_key)
        if keys is not None:
            keys.discard(bucket_key)
            if not keys:
                del self._by_user[user_key]

    @staticmethod
    def _count(event: str, amount: int = 1) -> None:
        get_registry().counter(f"serve.cache.{event}").inc(amount)

    def _publish_size(self) -> None:
        get_registry().gauge("serve.cache.size").set(len(self._buckets))
