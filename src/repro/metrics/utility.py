"""Utility metrics: click@k, ndcg@k, rev@k (paper Sec. IV-B2).

All functions accept per-request arrays ordered by the re-ranked position
(index 0 = top of the list) and average across requests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["clicks_at_k", "ndcg_at_k", "revenue_at_k"]


def _as_rows(values: Sequence[np.ndarray] | np.ndarray) -> list[np.ndarray]:
    if isinstance(values, np.ndarray) and values.ndim == 2:
        return [values[i] for i in range(len(values))]
    return [np.asarray(v, dtype=np.float64) for v in values]


def clicks_at_k(clicks: Sequence[np.ndarray] | np.ndarray, k: int) -> float:
    """Mean total clicks in the top-k: ``(1/n) sum_l sum_{i<=k} y_l(v_i)``.

    Accepts realized binary clicks or expected per-position click
    probabilities (the low-variance evaluation mode).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rows = _as_rows(clicks)
    return float(np.mean([row[:k].sum() for row in rows]))


def ndcg_at_k(relevance: Sequence[np.ndarray] | np.ndarray, k: int) -> float:
    """Mean NDCG@k with gains ``rel_i`` and log2 position discounts.

    The ideal ranking is computed per request from the same relevance
    vector (over the *whole* list, so a model is rewarded for pulling
    relevant items into the top-k).  Requests with no positive relevance
    contribute 0.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rows = _as_rows(relevance)
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    scores = []
    for row in rows:
        top = row[:k]
        dcg = float((top * discounts[: len(top)]).sum())
        ideal_order = np.sort(row)[::-1][:k]
        idcg = float((ideal_order * discounts[: len(ideal_order)]).sum())
        scores.append(dcg / idcg if idcg > 0 else 0.0)
    return float(np.mean(scores))


def revenue_at_k(
    clicks: Sequence[np.ndarray] | np.ndarray,
    bids: Sequence[np.ndarray] | np.ndarray,
    k: int,
) -> float:
    """Mean bid-weighted clicks: ``(1/n) sum_l sum_{i<=k} b_l(v_i) y_l(v_i)``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    click_rows = _as_rows(clicks)
    bid_rows = _as_rows(bids)
    if len(click_rows) != len(bid_rows):
        raise ValueError("clicks and bids must describe the same requests")
    totals = [
        float((c[:k] * b[: len(c[:k])]).sum())
        for c, b in zip(click_rows, bid_rows)
    ]
    return float(np.mean(totals))
