"""Satisfaction metric satis@k under the DCM (paper Sec. IV-B2).

``satis@k = 1 - (1/n) sum_l prod_{i<=k} (1 - eps_l(i) * phi_l(v_i))`` —
the probability the user leaves satisfied within the top-k.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["satis_at_k"]


def satis_at_k(
    attraction: Sequence[np.ndarray],
    termination: Sequence[np.ndarray] | np.ndarray,
    k: int,
) -> float:
    """Average satisfied-exit probability within the top-k positions.

    Parameters
    ----------
    attraction:
        Per-request attraction probabilities ``phi_l(v_i)`` in ranked order.
    termination:
        Per-request (or shared) termination probabilities ``eps_l(i)``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    shared_eps = isinstance(termination, np.ndarray) and np.asarray(
        termination
    ).ndim == 1
    values = []
    for index, phi in enumerate(attraction):
        phi = np.asarray(phi, dtype=np.float64)[:k]
        eps = np.asarray(
            termination if shared_eps else termination[index], dtype=np.float64
        )[: len(phi)]
        values.append(1.0 - float(np.prod(1.0 - eps * phi)))
    return float(np.mean(values))
