"""Diversity metric: div@k, the expected number of covered topics.

``div@k = (1/n) sum_l sum_j c_{l,j}(S_{1:k})`` with the probabilistic
coverage ``c_j(S) = 1 - prod_{v in S}(1 - tau_v^j)`` (paper Eq. 4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["topic_coverage", "div_at_k"]


def topic_coverage(coverage: np.ndarray) -> np.ndarray:
    """Probabilistic coverage ``c(G)`` of an item set.

    Parameters
    ----------
    coverage:
        (|G|, m) coverage rows of the items in the set.

    Returns
    -------
    (m,): per-topic probability that at least one item covers the topic.
    """
    coverage = np.asarray(coverage, dtype=np.float64)
    if coverage.ndim != 2:
        raise ValueError("coverage must be (items, topics)")
    return 1.0 - np.prod(1.0 - coverage, axis=0)


def div_at_k(list_coverages: Sequence[np.ndarray], k: int) -> float:
    """Mean summed topic coverage of the top-k of each re-ranked list."""
    if k < 1:
        raise ValueError("k must be >= 1")
    totals = [float(topic_coverage(np.asarray(cov)[:k]).sum()) for cov in list_coverages]
    return float(np.mean(totals))
