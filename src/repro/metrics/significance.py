"""Statistical significance testing for model comparisons (paper's t-tests)."""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = ["paired_t_test", "is_significant_improvement"]


def paired_t_test(
    scores_a: np.ndarray, scores_b: np.ndarray
) -> tuple[float, float]:
    """Two-sided paired t-test; returns (t statistic, p-value).

    Degenerate inputs (fewer than two pairs, or identical scores) return
    ``(0.0, 1.0)`` instead of NaN so callers can compare safely.
    """
    a = np.asarray(scores_a, dtype=np.float64)
    b = np.asarray(scores_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("paired test requires aligned score arrays")
    if a.size < 2 or np.allclose(a, b):
        return 0.0, 1.0
    diff = a - b
    if np.std(diff) < 1e-12:
        # Constant nonzero difference: zero variance, unbounded t statistic.
        return float(np.sign(diff.mean()) * np.inf), 0.0
    t_stat, p_value = stats.ttest_rel(a, b)
    if np.isnan(p_value):
        return 0.0, 1.0
    return float(t_stat), float(p_value)


def is_significant_improvement(
    candidate: np.ndarray, baseline: np.ndarray, alpha: float = 0.05
) -> bool:
    """True when candidate's mean exceeds baseline's with p < alpha."""
    t_stat, p_value = paired_t_test(candidate, baseline)
    return bool(t_stat > 0 and p_value < alpha)
