"""Evaluation metrics: utility (click/ndcg/rev), diversity, satisfaction."""

from .diversity import div_at_k, topic_coverage
from .satisfaction import satis_at_k
from .significance import is_significant_improvement, paired_t_test
from .utility import clicks_at_k, ndcg_at_k, revenue_at_k

__all__ = [
    "clicks_at_k",
    "div_at_k",
    "is_significant_improvement",
    "ndcg_at_k",
    "paired_t_test",
    "revenue_at_k",
    "satis_at_k",
    "topic_coverage",
]
