"""MovieLens-20M-like synthetic dataset builder.

MovieLens items belong to 20 genres; the paper uses the normalized multi-hot
genre vector as topic coverage ``tau``.  We mirror that: each synthetic
movie gets 1-3 genres, normalized, while keeping the generator's hidden
user-preference structure so personalized diversification is learnable.

The number of genres is configurable (default 20 as in the paper; the test
and benchmark profiles use 8 to keep per-topic behavior sequences populated
at small scale).
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import make_rng
from .synthetic import SyntheticWorld, WorldConfig

__all__ = ["MOVIELENS_SCALES", "make_movielens_world"]

MOVIELENS_SCALES: dict[str, dict] = {
    "tiny": {"num_users": 40, "num_items": 150, "num_topics": 6, "history_length": 24},
    "small": {"num_users": 120, "num_items": 360, "num_topics": 8, "history_length": 36},
    "full": {"num_users": 400, "num_items": 1200, "num_topics": 20, "history_length": 60},
}


def make_movielens_world(scale: str = "small", seed: int = 0) -> SyntheticWorld:
    """Build the MovieLens-like world: multi-hot normalized genre coverage."""
    if scale not in MOVIELENS_SCALES:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(MOVIELENS_SCALES)}"
        )
    dims = MOVIELENS_SCALES[scale]
    config = WorldConfig(
        num_users=dims["num_users"],
        num_items=dims["num_items"],
        num_topics=dims["num_topics"],
        history_length=dims["history_length"],
        seed=seed,
    )
    # Genres must reflect what the movie *is*: the primary genre is the
    # item's latent topic cluster (as in real MovieLens, where genres and
    # content coincide), plus 0-2 random secondary genres, normalized.
    base = SyntheticWorld(config)
    rng = make_rng(seed + 1)
    num_items, num_topics = dims["num_items"], dims["num_topics"]
    coverage = np.zeros((num_items, num_topics))
    for item, primary in enumerate(base.item_topic_assignment):
        genres = {int(primary)}
        for extra in rng.choice(num_topics, size=int(rng.integers(0, 3)), replace=False):
            genres.add(int(extra))
        coverage[item, sorted(genres)] = 1.0 / len(genres)
    return SyntheticWorld(config, coverage=coverage)
