"""Taobao-like synthetic dataset builder.

The real Taobao dump (987,994 users / 4.2M items / 100M interactions,
9,439 raw categories clustered to 5 topics by GMM) is not redistributable.
This builder reproduces its pipeline shape at configurable scale: item
latents are clustered into **5 topics with a from-scratch GMM** and the
(sharpened) responsibilities become the soft topic coverage ``tau`` — the
same construction the paper applies to Taobao's category space.
"""

from __future__ import annotations

import numpy as np

from .synthetic import SyntheticWorld, WorldConfig
from .topics import gmm_coverage

__all__ = ["TAOBAO_SCALES", "make_taobao_world"]

TAOBAO_SCALES: dict[str, dict] = {
    "tiny": {"num_users": 40, "num_items": 120, "history_length": 20},
    "small": {"num_users": 120, "num_items": 300, "history_length": 30},
    "full": {"num_users": 400, "num_items": 1000, "history_length": 40},
}


def make_taobao_world(scale: str = "small", seed: int = 0) -> SyntheticWorld:
    """Build the Taobao-like world: 5 GMM topics, soft coverage."""
    if scale not in TAOBAO_SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(TAOBAO_SCALES)}")
    dims = TAOBAO_SCALES[scale]
    config = WorldConfig(
        num_users=dims["num_users"],
        num_items=dims["num_items"],
        num_topics=5,
        history_length=dims["history_length"],
        seed=seed,
    )
    # First materialize item latents with a throwaway world, then cluster
    # them with the GMM to obtain soft coverage, exactly like the paper
    # clusters Taobao's 9,439 categories into 5 topics.
    base = SyntheticWorld(config)
    # Soft responsibilities (no sharpening): items genuinely straddle
    # topics, which keeps the leave-one-out marginal diversity of Eq. 5
    # informative (with near-one-hot coverage it degenerates to ~0).
    coverage = gmm_coverage(
        base.item_latent, num_topics=5, sharpen=1.0, seed=seed + 1
    )
    world = SyntheticWorld(config, coverage=coverage)
    return world
