"""Topic-coverage construction.

The paper derives the item topic coverage ``tau`` differently per dataset:

- **Taobao**: thousands of raw categories are clustered into ``m = 5`` topics
  with Gaussian Mixture Models; we implement a small diagonal-covariance EM
  GMM from scratch and use its (optionally sharpened) responsibilities as
  soft coverage.
- **MovieLens**: the normalized multi-hot genre vector.
- **App Store**: a one-hot category indicator.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import make_rng

__all__ = [
    "GaussianMixture",
    "gmm_coverage",
    "multihot_coverage",
    "onehot_coverage",
]


class GaussianMixture:
    """Diagonal-covariance Gaussian mixture fitted with EM.

    A minimal but complete implementation: k-means++-style seeding, standard
    E/M updates, log-likelihood monitoring, and responsibility prediction.
    """

    def __init__(
        self,
        n_components: int,
        max_iter: int = 100,
        tol: float = 1e-4,
        reg_covar: float = 1e-6,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.reg_covar = reg_covar
        self._rng = make_rng(seed)
        self.means_: np.ndarray | None = None
        self.variances_: np.ndarray | None = None
        self.weights_: np.ndarray | None = None
        self.converged_ = False

    # ------------------------------------------------------------------
    def _init_means(self, x: np.ndarray) -> np.ndarray:
        """k-means++ seeding: spread initial means across the data."""
        n = len(x)
        means = np.empty((self.n_components, x.shape[1]))
        means[0] = x[self._rng.integers(n)]
        dist = ((x - means[0]) ** 2).sum(axis=1)
        for k in range(1, self.n_components):
            total = dist.sum()
            if total <= 0:
                means[k] = x[self._rng.integers(n)]
            else:
                means[k] = x[self._rng.choice(n, p=dist / total)]
            dist = np.minimum(dist, ((x - means[k]) ** 2).sum(axis=1))
        return means

    def _log_prob(self, x: np.ndarray) -> np.ndarray:
        """(n, k) log N(x | mu_k, diag(var_k)) + log pi_k."""
        diff = x[:, None, :] - self.means_[None, :, :]
        log_det = np.log(self.variances_).sum(axis=1)
        quad = (diff**2 / self.variances_[None, :, :]).sum(axis=2)
        d = x.shape[1]
        log_gauss = -0.5 * (d * np.log(2 * np.pi) + log_det[None, :] + quad)
        return log_gauss + np.log(self.weights_)[None, :]

    def fit(self, x: np.ndarray) -> "GaussianMixture":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("GMM input must be 2-D")
        n, d = x.shape
        if n < self.n_components:
            raise ValueError("need at least one point per component")
        self.means_ = self._init_means(x)
        self.variances_ = np.full((self.n_components, d), x.var(axis=0) + 1e-3)
        self.weights_ = np.full(self.n_components, 1.0 / self.n_components)

        previous_ll = -np.inf
        for _ in range(self.max_iter):
            log_prob = self._log_prob(x)
            log_norm = _logsumexp(log_prob, axis=1)
            resp = np.exp(log_prob - log_norm[:, None])
            ll = log_norm.mean()

            nk = resp.sum(axis=0) + 1e-10
            self.weights_ = nk / n
            self.means_ = (resp.T @ x) / nk[:, None]
            diff_sq = (x[:, None, :] - self.means_[None, :, :]) ** 2
            self.variances_ = (
                np.einsum("nk,nkd->kd", resp, diff_sq) / nk[:, None] + self.reg_covar
            )

            if abs(ll - previous_ll) < self.tol:
                self.converged_ = True
                break
            previous_ll = ll
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Posterior responsibilities (n, k); rows sum to 1."""
        if self.means_ is None:
            raise RuntimeError("fit the mixture before predicting")
        x = np.asarray(x, dtype=np.float64)
        log_prob = self._log_prob(x)
        return np.exp(log_prob - _logsumexp(log_prob, axis=1)[:, None])

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)


def _logsumexp(a: np.ndarray, axis: int) -> np.ndarray:
    peak = a.max(axis=axis, keepdims=True)
    return (np.log(np.exp(a - peak).sum(axis=axis)) + peak.squeeze(axis))


def gmm_coverage(
    item_latent: np.ndarray,
    num_topics: int,
    sharpen: float = 2.0,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Taobao-style coverage: GMM responsibilities over item latents.

    ``sharpen`` > 1 raises responsibilities to a power and renormalizes so
    most items concentrate on one topic while retaining soft mass —
    mirroring the e-commerce regime where items mostly have one category.
    """
    mixture = GaussianMixture(num_topics, seed=seed).fit(item_latent)
    resp = mixture.predict_proba(item_latent)
    if sharpen != 1.0:
        resp = resp**sharpen
        resp = resp / resp.sum(axis=1, keepdims=True)
    return resp


def multihot_coverage(
    num_items: int,
    num_topics: int,
    min_topics: int = 1,
    max_topics: int = 3,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """MovieLens-style coverage: normalized multi-hot genre vectors."""
    if not 1 <= min_topics <= max_topics <= num_topics:
        raise ValueError("require 1 <= min_topics <= max_topics <= num_topics")
    rng = make_rng(seed)
    coverage = np.zeros((num_items, num_topics))
    for item in range(num_items):
        count = rng.integers(min_topics, max_topics + 1)
        genres = rng.choice(num_topics, size=count, replace=False)
        coverage[item, genres] = 1.0 / count
    return coverage


def onehot_coverage(
    num_items: int,
    num_topics: int,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """App Store-style coverage: each app belongs to exactly one category."""
    rng = make_rng(seed)
    assignment = rng.integers(0, num_topics, size=num_items)
    coverage = np.zeros((num_items, num_topics))
    coverage[np.arange(num_items), assignment] = 1.0
    return coverage
