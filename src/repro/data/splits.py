"""Dataset partitioning helpers.

The paper splits each public dataset into behavior history, initial-ranker
training, re-ranking training, and test partitions (chronologically for
Taobao, 2:3:4:1 per user for MovieLens).  Our generators produce the
partitions directly, so this module only needs generic request-level and
interaction-level splitters used by the pipeline and the tests.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from ..utils.rng import make_rng

__all__ = ["train_test_split", "ratio_split"]

T = TypeVar("T")


def train_test_split(
    items: Sequence[T],
    test_fraction: float = 0.2,
    seed: int | np.random.Generator | None = 0,
) -> tuple[list[T], list[T]]:
    """Random split of a sequence into (train, test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    order = np.arange(len(items))
    make_rng(seed).shuffle(order)
    cut = int(round(len(items) * (1.0 - test_fraction)))
    if cut in (0, len(items)):
        raise ValueError("split produced an empty partition; adjust fraction/size")
    train = [items[i] for i in order[:cut]]
    test = [items[i] for i in order[cut:]]
    return train, test


def ratio_split(
    items: Sequence[T],
    ratios: Sequence[float],
) -> list[list[T]]:
    """Deterministic in-order split by ratio, e.g. the paper's 2:3:4:1.

    Every partition is guaranteed at least one element when
    ``len(items) >= len(ratios)``.
    """
    ratios = np.asarray(ratios, dtype=np.float64)
    if np.any(ratios <= 0):
        raise ValueError("ratios must be positive")
    if len(items) < len(ratios):
        raise ValueError("not enough items for the requested partitions")
    bounds = np.cumsum(ratios) / ratios.sum()
    cuts = [int(round(b * len(items))) for b in bounds[:-1]]
    # Enforce monotone, non-empty partitions.
    adjusted: list[int] = []
    previous = 0
    remaining = len(ratios) - 1
    for cut in cuts:
        cut = max(cut, previous + 1)
        cut = min(cut, len(items) - remaining)
        adjusted.append(cut)
        previous = cut
        remaining -= 1
    pieces: list[list[T]] = []
    start = 0
    for cut in adjusted + [len(items)]:
        pieces.append(list(items[start:cut]))
        start = cut
    return pieces
