"""Dataset persistence: save/load worlds and request logs as ``.npz``.

Lets a generated semi-synthetic dataset (world + histories + click-labeled
requests) be frozen to disk so that every model in a comparison trains and
evaluates on byte-identical data, and so experiments can be shared.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .schema import Catalog, Population, RankingRequest

__all__ = [
    "save_catalog",
    "load_catalog",
    "save_population",
    "load_population",
    "save_requests",
    "load_requests",
    "save_histories",
    "load_histories",
]


def _ensure_npz(path: str | Path) -> Path:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def save_catalog(catalog: Catalog, path: str | Path) -> Path:
    path = _ensure_npz(path)
    payload = {"features": catalog.features, "coverage": catalog.coverage}
    if catalog.bids is not None:
        payload["bids"] = catalog.bids
    np.savez(path, **payload)
    return path


def load_catalog(path: str | Path) -> Catalog:
    with np.load(Path(path)) as archive:
        bids = archive["bids"] if "bids" in archive.files else None
        return Catalog(
            features=archive["features"], coverage=archive["coverage"], bids=bids
        )


def save_population(population: Population, path: str | Path) -> Path:
    path = _ensure_npz(path)
    np.savez(
        path,
        features=population.features,
        topic_preference=population.topic_preference,
        diversity_weight=population.diversity_weight,
        latent=population.latent,
    )
    return path


def load_population(path: str | Path) -> Population:
    with np.load(Path(path)) as archive:
        return Population(
            features=archive["features"],
            topic_preference=archive["topic_preference"],
            diversity_weight=archive["diversity_weight"],
            latent=archive["latent"],
        )


def save_requests(requests: list[RankingRequest], path: str | Path) -> Path:
    """Persist equal-length requests as stacked arrays."""
    path = _ensure_npz(path)
    if not requests:
        raise ValueError("cannot save an empty request list")
    lengths = {r.list_length for r in requests}
    if len(lengths) != 1:
        raise ValueError("save_requests requires equal-length lists")
    has_clicks = all(r.clicks is not None for r in requests)
    payload = {
        "user_ids": np.array([r.user_id for r in requests], dtype=np.int64),
        "items": np.vstack([r.items for r in requests]),
        "initial_scores": np.vstack([r.initial_scores for r in requests]),
        "fully_observed": np.array(
            [r.fully_observed for r in requests], dtype=bool
        ),
    }
    if has_clicks:
        payload["clicks"] = np.vstack([r.clicks for r in requests])
    np.savez(path, **payload)
    return path


def load_requests(path: str | Path) -> list[RankingRequest]:
    with np.load(Path(path)) as archive:
        clicks = archive["clicks"] if "clicks" in archive.files else None
        return [
            RankingRequest(
                user_id=int(archive["user_ids"][i]),
                items=archive["items"][i],
                initial_scores=archive["initial_scores"][i],
                clicks=None if clicks is None else clicks[i],
                fully_observed=bool(archive["fully_observed"][i]),
            )
            for i in range(len(archive["user_ids"]))
        ]


def save_histories(histories: list[np.ndarray], path: str | Path) -> Path:
    """Persist variable-length histories via padding + length vector."""
    path = _ensure_npz(path)
    lengths = np.array([len(h) for h in histories], dtype=np.int64)
    width = int(lengths.max(initial=0))
    padded = np.full((len(histories), max(width, 1)), -1, dtype=np.int64)
    for row, history in enumerate(histories):
        padded[row, : len(history)] = history
    np.savez(path, padded=padded, lengths=lengths)
    return path


def load_histories(path: str | Path) -> list[np.ndarray]:
    with np.load(Path(path)) as archive:
        padded = archive["padded"]
        lengths = archive["lengths"]
        return [padded[i, : lengths[i]].copy() for i in range(len(lengths))]
