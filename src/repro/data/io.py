"""Dataset persistence: save/load worlds and request logs as ``.npz``.

Lets a generated semi-synthetic dataset (world + histories + click-labeled
requests) be frozen to disk so that every model in a comparison trains and
evaluates on byte-identical data, and so experiments can be shared.

Durability: every save goes through
:func:`repro.utils.atomicio.atomic_savez` (write-temp + fsync +
``os.replace``), so a crash mid-save can never leave a torn dataset file —
readers see the previous complete file or the new one.  Loads and saves
run under :data:`repro.resilience.retry.DEFAULT_IO_POLICY` (transient
``OSError``/injected faults are retried with jittered backoff; schema and
value errors stay fatal) and pass the ``data.load`` / ``data.save`` chaos
fault points, so the whole persistence path is exercised by fault-injection
tests.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..resilience.chaos import faultpoint
from ..resilience.retry import DEFAULT_IO_POLICY, call_with_retry
from ..utils.atomicio import atomic_savez
from .schema import Catalog, Population, RankingRequest

__all__ = [
    "save_catalog",
    "load_catalog",
    "save_population",
    "load_population",
    "save_requests",
    "load_requests",
    "save_histories",
    "load_histories",
]


def _ensure_npz(path: str | Path) -> Path:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    return path


def _save(path: str | Path, payload: dict) -> Path:
    """One retried, atomic, fault-point-guarded archive write."""
    path = _ensure_npz(path)

    def attempt() -> Path:
        faultpoint("data.save")
        return atomic_savez(path, payload)

    return call_with_retry(attempt, policy=DEFAULT_IO_POLICY, site="data.save")


def _load(path: str | Path, reader) -> object:
    """One retried, fault-point-guarded archive read.

    ``reader(archive)`` must materialize everything it needs — the archive
    is closed when it returns, and a fresh attempt reopens the file.
    """

    def attempt():
        faultpoint("data.load")
        with np.load(Path(path)) as archive:
            return reader(archive)

    return call_with_retry(attempt, policy=DEFAULT_IO_POLICY, site="data.load")


def save_catalog(catalog: Catalog, path: str | Path) -> Path:
    payload = {"features": catalog.features, "coverage": catalog.coverage}
    if catalog.bids is not None:
        payload["bids"] = catalog.bids
    return _save(path, payload)


def load_catalog(path: str | Path) -> Catalog:
    def reader(archive) -> Catalog:
        bids = archive["bids"] if "bids" in archive.files else None
        return Catalog(
            features=archive["features"], coverage=archive["coverage"], bids=bids
        )

    return _load(path, reader)


def save_population(population: Population, path: str | Path) -> Path:
    return _save(
        path,
        {
            "features": population.features,
            "topic_preference": population.topic_preference,
            "diversity_weight": population.diversity_weight,
            "latent": population.latent,
        },
    )


def load_population(path: str | Path) -> Population:
    def reader(archive) -> Population:
        return Population(
            features=archive["features"],
            topic_preference=archive["topic_preference"],
            diversity_weight=archive["diversity_weight"],
            latent=archive["latent"],
        )

    return _load(path, reader)


def save_requests(requests: list[RankingRequest], path: str | Path) -> Path:
    """Persist equal-length requests as stacked arrays."""
    if not requests:
        raise ValueError("cannot save an empty request list")
    lengths = {r.list_length for r in requests}
    if len(lengths) != 1:
        raise ValueError("save_requests requires equal-length lists")
    has_clicks = all(r.clicks is not None for r in requests)
    payload = {
        "user_ids": np.array([r.user_id for r in requests], dtype=np.int64),
        "items": np.vstack([r.items for r in requests]),
        "initial_scores": np.vstack([r.initial_scores for r in requests]),
        "fully_observed": np.array(
            [r.fully_observed for r in requests], dtype=bool
        ),
    }
    if has_clicks:
        payload["clicks"] = np.vstack([r.clicks for r in requests])
    return _save(path, payload)


def load_requests(path: str | Path) -> list[RankingRequest]:
    def reader(archive) -> list[RankingRequest]:
        clicks = archive["clicks"] if "clicks" in archive.files else None
        return [
            RankingRequest(
                user_id=int(archive["user_ids"][i]),
                items=archive["items"][i],
                initial_scores=archive["initial_scores"][i],
                clicks=None if clicks is None else clicks[i],
                fully_observed=bool(archive["fully_observed"][i]),
            )
            for i in range(len(archive["user_ids"]))
        ]

    return _load(path, reader)


def save_histories(histories: list[np.ndarray], path: str | Path) -> Path:
    """Persist variable-length histories via padding + length vector."""
    lengths = np.array([len(h) for h in histories], dtype=np.int64)
    width = int(lengths.max(initial=0))
    padded = np.full((len(histories), max(width, 1)), -1, dtype=np.int64)
    for row, history in enumerate(histories):
        padded[row, : len(history)] = history
    return _save(path, {"padded": padded, "lengths": lengths})


def load_histories(path: str | Path) -> list[np.ndarray]:
    def reader(archive) -> list[np.ndarray]:
        padded = archive["padded"]
        lengths = archive["lengths"]
        return [padded[i, : lengths[i]].copy() for i in range(len(lengths))]

    return _load(path, reader)
