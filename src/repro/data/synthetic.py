"""Synthetic user/item world with ground-truth relevance and diversity taste.

The public Taobao / MovieLens datasets are used *semi-synthetically* in the
paper: raw interactions only seed an initial ranker and a DCM click
simulator.  Since the raw dumps are not redistributable (and unavailable
offline), we generate a world with the same statistical structure the
pipeline depends on:

- items carry latent embeddings clustered by topic, observable features
  ``x_v``, and a topic coverage ``tau_v``;
- users carry latent tastes, observable features ``x_u``, a hidden
  preference distribution ``theta*`` over topics (narrow ↔ broad,
  Dirichlet-distributed with per-user concentration), and a hidden per-topic
  diversity weight ``rho`` that grows with taste breadth — exactly the
  personalization signal RAPID is designed to recover;
- ground-truth attraction combines latent affinity and topic affinity, so
  both collaborative and topical information are predictive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import make_rng
from .schema import Catalog, Population

__all__ = ["WorldConfig", "SyntheticWorld"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


@dataclass(frozen=True)
class WorldConfig:
    """Knobs of the synthetic world generator."""

    num_users: int = 200
    num_items: int = 500
    num_topics: int = 5
    latent_dim: int = 8
    user_feature_dim: int = 8
    item_feature_dim: int = 8
    feature_noise: float = 1.0
    relevance_latent_weight: float = 3.5
    relevance_topic_weight: float = 2.0
    relevance_bias: float = -2.5
    concentration_low: float = 0.15
    concentration_high: float = 3.0
    history_length: int = 30
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.num_users, self.num_items, self.num_topics) < 1:
            raise ValueError("world sizes must be positive")
        if self.num_items < 2 * self.num_topics:
            raise ValueError("need at least two items per topic")


class SyntheticWorld:
    """A fully specified recommendation universe.

    Parameters
    ----------
    config:
        World dimensions and generative knobs.
    coverage:
        Optional pre-built (num_items, m) coverage; when omitted, items get
        topic-clustered latents and soft coverage is the cluster membership.
    """

    def __init__(
        self, config: WorldConfig, coverage: np.ndarray | None = None
    ) -> None:
        self.config = config
        self._rng = make_rng(config.seed)
        self._build_items(coverage)
        self._build_users()
        self._relevance_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    # World construction
    # ------------------------------------------------------------------
    def _build_items(self, coverage: np.ndarray | None) -> None:
        cfg = self.config
        rng = self._rng
        # Topic centroids in latent space; items scatter around their topics.
        centroids = rng.normal(0.0, 1.0, size=(cfg.num_topics, cfg.latent_dim))
        assignment = rng.integers(0, cfg.num_topics, size=cfg.num_items)
        item_latent = centroids[assignment] + rng.normal(
            0.0, 0.45, size=(cfg.num_items, cfg.latent_dim)
        )
        if coverage is None:
            coverage = np.zeros((cfg.num_items, cfg.num_topics))
            coverage[np.arange(cfg.num_items), assignment] = 1.0
        coverage = np.asarray(coverage, dtype=np.float64)
        if coverage.shape != (cfg.num_items, cfg.num_topics):
            raise ValueError(
                f"coverage shape {coverage.shape} does not match "
                f"({cfg.num_items}, {cfg.num_topics})"
            )
        projection = rng.normal(
            0.0, 1.0, size=(cfg.latent_dim, cfg.item_feature_dim)
        ) / np.sqrt(cfg.latent_dim)
        features = item_latent @ projection + rng.normal(
            0.0, cfg.feature_noise, size=(cfg.num_items, cfg.item_feature_dim)
        )
        self.item_latent = item_latent
        self.item_topic_assignment = assignment
        self.catalog = Catalog(features=features, coverage=coverage)

    def _build_users(self) -> None:
        cfg = self.config
        rng = self._rng
        # Per-user Dirichlet concentration: log-uniform between narrow and
        # broad; low concentration -> focused users, high -> diverse users.
        log_low, log_high = np.log(cfg.concentration_low), np.log(
            cfg.concentration_high
        )
        concentration = np.exp(
            rng.uniform(log_low, log_high, size=cfg.num_users)
        )
        theta = np.vstack(
            [
                rng.dirichlet(np.full(cfg.num_topics, c))
                for c in concentration
            ]
        )
        # Hidden taste embedding: mixture of the topic centroids the user
        # likes, so latent affinity and topic affinity are consistent.
        centroids = np.vstack(
            [
                self.item_latent[self.item_topic_assignment == j].mean(axis=0)
                for j in range(cfg.num_topics)
            ]
        )
        latent = theta @ centroids + rng.normal(
            0.0, 0.3, size=(cfg.num_users, cfg.latent_dim)
        )
        # Diversity weight rho: broad users (high taste entropy) want more
        # diversity, concentrated on the topics they actually like.
        entropy = -(theta * np.log(theta + 1e-12)).sum(axis=1)
        max_entropy = np.log(cfg.num_topics)
        breadth = entropy / max_entropy  # in [0, 1]
        rho = (0.2 + 0.8 * breadth)[:, None] * theta * cfg.num_topics
        rho = np.clip(rho, 0.0, 1.0)

        projection = rng.normal(
            0.0, 1.0, size=(cfg.latent_dim, cfg.user_feature_dim)
        ) / np.sqrt(cfg.latent_dim)
        features = latent @ projection + rng.normal(
            0.0, cfg.feature_noise, size=(cfg.num_users, cfg.user_feature_dim)
        )
        self.user_breadth = breadth
        self.population = Population(
            features=features,
            topic_preference=theta,
            diversity_weight=rho,
            latent=latent,
        )

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def relevance_matrix(self) -> np.ndarray:
        """(num_users, num_items) ground-truth attraction alpha(u, v)."""
        if self._relevance_cache is None:
            cfg = self.config
            latent_term = (
                self.population.latent @ self.item_latent.T
            ) / np.sqrt(cfg.latent_dim)
            topic_term = (
                self.population.topic_preference @ self.catalog.coverage.T
            )
            logits = (
                cfg.relevance_latent_weight * latent_term
                + cfg.relevance_topic_weight * topic_term
                + cfg.relevance_bias
            )
            self._relevance_cache = _sigmoid(logits)
        return self._relevance_cache

    def relevance(self, user_ids: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        """Attraction probabilities for aligned (user, item) id arrays."""
        matrix = self.relevance_matrix()
        return matrix[np.asarray(user_ids), np.asarray(item_ids)]

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_histories(
        self, length: int | None = None, temperature: float = 0.25
    ) -> list[np.ndarray]:
        """Sample each user's positively-interacted item sequence.

        Items are drawn without replacement with probability proportional to
        ``alpha(u, .)^(1/temperature)`` — low temperature concentrates the
        history on the user's true tastes.
        """
        length = length if length is not None else self.config.history_length
        matrix = self.relevance_matrix()
        histories: list[np.ndarray] = []
        for user in range(self.config.num_users):
            weights = matrix[user] ** (1.0 / temperature)
            weights = weights / weights.sum()
            size = min(length, self.config.num_items)
            items = self._rng.choice(
                self.config.num_items, size=size, replace=False, p=weights
            )
            self._rng.shuffle(items)  # arbitrary time order
            histories.append(items.astype(np.int64))
        return histories

    def sample_ranker_training(
        self, num_interactions: int
    ) -> np.ndarray:
        """(n, 3) array of (user_id, item_id, click) for the initial ranker."""
        users = self._rng.integers(0, self.config.num_users, size=num_interactions)
        items = self._rng.integers(0, self.config.num_items, size=num_interactions)
        probs = self.relevance(users, items)
        clicks = (self._rng.random(num_interactions) < probs).astype(np.int64)
        return np.column_stack([users, items, clicks])

    def sample_candidate_sets(
        self,
        num_requests: int,
        list_length: int,
        relevant_fraction: float = 0.4,
        pool_size: int = 40,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw candidate sets: a blend of personally relevant and random items.

        Returns ``(user_ids (n,), candidates (n, L))``.  A fraction of each
        set comes from the user's top-``pool_size`` items (recall stage
        stand-in); the rest is drawn uniformly, giving the re-ranker genuine
        decisions to make.
        """
        if list_length > self.config.num_items:
            raise ValueError("list_length exceeds catalog size")
        matrix = self.relevance_matrix()
        user_ids = self._rng.integers(0, self.config.num_users, size=num_requests)
        candidates = np.empty((num_requests, list_length), dtype=np.int64)
        num_relevant = int(round(relevant_fraction * list_length))
        for row, user in enumerate(user_ids):
            top_pool = np.argsort(-matrix[user])[:pool_size]
            chosen = self._rng.choice(
                top_pool, size=min(num_relevant, len(top_pool)), replace=False
            )
            remaining = np.setdiff1d(
                np.arange(self.config.num_items), chosen, assume_unique=False
            )
            filler = self._rng.choice(
                remaining, size=list_length - len(chosen), replace=False
            )
            row_items = np.concatenate([chosen, filler])
            self._rng.shuffle(row_items)
            candidates[row] = row_items
        return user_ids, candidates
