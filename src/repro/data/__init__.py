"""Data substrate: schemas, synthetic worlds, dataset builders, batching."""

from .appstore import APPSTORE_SCALES, make_appstore_world
from .batching import (
    RerankBatch,
    build_batch,
    iterate_batches,
    normalized_initial_scores,
    split_history_by_topic,
)
from .io import (
    load_catalog,
    load_histories,
    load_population,
    load_requests,
    save_catalog,
    save_histories,
    save_population,
    save_requests,
)
from .movielens import MOVIELENS_SCALES, make_movielens_world
from .schema import Catalog, Population, RankingRequest, RerankDataset
from .splits import ratio_split, train_test_split
from .synthetic import SyntheticWorld, WorldConfig
from .taobao import TAOBAO_SCALES, make_taobao_world
from .topics import GaussianMixture, gmm_coverage, multihot_coverage, onehot_coverage

__all__ = [
    "APPSTORE_SCALES",
    "Catalog",
    "GaussianMixture",
    "MOVIELENS_SCALES",
    "Population",
    "RankingRequest",
    "RerankBatch",
    "RerankDataset",
    "SyntheticWorld",
    "TAOBAO_SCALES",
    "WorldConfig",
    "build_batch",
    "gmm_coverage",
    "iterate_batches",
    "load_catalog",
    "load_histories",
    "load_population",
    "load_requests",
    "make_appstore_world",
    "make_movielens_world",
    "make_taobao_world",
    "multihot_coverage",
    "normalized_initial_scores",
    "onehot_coverage",
    "ratio_split",
    "save_catalog",
    "save_histories",
    "save_population",
    "save_requests",
    "split_history_by_topic",
    "train_test_split",
]
