"""App Store-like synthetic dataset builder.

The Huawei App Store dataset (202M requests, 3,249 apps, 23 one-hot
categories, bid prices, real logged clicks) is proprietary.  This builder
reproduces its distinguishing properties:

- one-hot topic coverage (each app belongs to exactly one category);
- per-item bid prices (lognormal), enabling the rev@k metric;
- clicks are *logged by a hidden behavioral model* (position-biased
  attraction with a diversity component) rather than re-simulated at
  evaluation time — matching the paper's "evaluate RAPID directly by
  real-world click-through data, without the click model".
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import make_rng
from .synthetic import SyntheticWorld, WorldConfig

__all__ = ["APPSTORE_SCALES", "make_appstore_world"]

APPSTORE_SCALES: dict[str, dict] = {
    "tiny": {"num_users": 40, "num_items": 140, "num_topics": 6, "history_length": 24},
    "small": {"num_users": 120, "num_items": 320, "num_topics": 8, "history_length": 36},
    "full": {"num_users": 400, "num_items": 1000, "num_topics": 23, "history_length": 50},
}


def make_appstore_world(scale: str = "small", seed: int = 0) -> SyntheticWorld:
    """Build the App Store-like world: one-hot categories plus bid prices."""
    if scale not in APPSTORE_SCALES:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(APPSTORE_SCALES)}"
        )
    dims = APPSTORE_SCALES[scale]
    config = WorldConfig(
        num_users=dims["num_users"],
        num_items=dims["num_items"],
        num_topics=dims["num_topics"],
        history_length=dims["history_length"],
        seed=seed,
    )
    # Each app's category is its latent topic cluster (categories describe
    # content, so they must align with the latent structure users react to).
    base = SyntheticWorld(config)
    coverage = np.zeros((dims["num_items"], dims["num_topics"]))
    coverage[np.arange(dims["num_items"]), base.item_topic_assignment] = 1.0
    world = SyntheticWorld(config, coverage=coverage)
    rng = make_rng(seed + 2)
    world.catalog.bids = rng.lognormal(mean=0.0, sigma=0.5, size=dims["num_items"])
    return world
