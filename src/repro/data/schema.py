"""Core datatypes shared by the data, click, ranking, and evaluation layers.

The semi-synthetic protocol of the paper (Sec. IV-A/IV-B) works with:

- a *catalog* of items, each with a feature vector ``x_v`` and a topic
  coverage vector ``tau_v`` in [0, 1]^m;
- a *population* of users, each with a feature vector ``x_u``, a hidden
  preference distribution over topics, and a hidden per-topic diversity
  weight ``rho`` (used by the DCM click simulator);
- *behavior histories*: time-ordered positively-interacted item ids;
- *ranking requests*: an initial list of L candidate item ids (sorted by an
  initial ranker) for a user, plus clicks once simulated/logged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..utils.validation import check_probability_matrix

__all__ = ["Catalog", "Population", "RankingRequest", "RerankDataset"]


@dataclass
class Catalog:
    """The item universe.

    Attributes
    ----------
    features:
        (num_items, q_v) item feature matrix ``x_v``.
    coverage:
        (num_items, m) topic-coverage matrix ``tau``; entry ``tau[v, j]`` is
        the probability item ``v`` covers topic ``j``.
    bids:
        Optional (num_items,) bid prices — only the App Store dataset uses
        them (for rev@k).
    """

    features: np.ndarray
    coverage: np.ndarray
    bids: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.coverage = check_probability_matrix(self.coverage, "coverage")
        if len(self.features) != len(self.coverage):
            raise ValueError(
                "features and coverage must describe the same number of items"
            )
        if self.bids is not None:
            self.bids = np.asarray(self.bids, dtype=np.float64)
            if len(self.bids) != len(self.features):
                raise ValueError("bids must have one entry per item")

    @property
    def num_items(self) -> int:
        return len(self.features)

    @property
    def num_topics(self) -> int:
        return self.coverage.shape[1]

    @property
    def feature_dim(self) -> int:
        return self.features.shape[1]

    def dominant_topics(self) -> np.ndarray:
        """Hard topic assignment: argmax of each item's coverage."""
        return self.coverage.argmax(axis=1)


@dataclass
class Population:
    """The user universe with hidden (ground-truth) preference structure.

    Attributes
    ----------
    features:
        (num_users, q_u) observable user features ``x_u``.
    topic_preference:
        (num_users, m) hidden preference distribution over topics (rows sum
        to 1).  Drives both relevance and the personalized diversity weight.
    diversity_weight:
        (num_users, m) hidden per-topic diversity weights ``rho`` used by the
        DCM attraction probability (Sec. IV-B1).
    latent:
        (num_users, d) hidden taste embedding used by the ground-truth
        relevance function.
    """

    features: np.ndarray
    topic_preference: np.ndarray
    diversity_weight: np.ndarray
    latent: np.ndarray

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.topic_preference = np.asarray(self.topic_preference, dtype=np.float64)
        self.diversity_weight = np.asarray(self.diversity_weight, dtype=np.float64)
        self.latent = np.asarray(self.latent, dtype=np.float64)
        lengths = {
            len(self.features),
            len(self.topic_preference),
            len(self.diversity_weight),
            len(self.latent),
        }
        if len(lengths) != 1:
            raise ValueError("all population arrays must have the same length")

    @property
    def num_users(self) -> int:
        return len(self.features)

    @property
    def feature_dim(self) -> int:
        return self.features.shape[1]

    @classmethod
    def concat(cls, parts: "list[Population] | tuple[Population, ...]") -> "Population":
        """Stack user blocks into one population (user ids renumber in order).

        The sharded generator (:mod:`repro.dist.shard`) builds users in
        independent per-shard blocks; concatenating shards ``0..S-1`` in
        shard order yields the full population with user ``i`` of shard
        ``s`` living at global row ``offset_s + i``.
        """
        if not parts:
            raise ValueError("need at least one population to concatenate")
        return cls(
            features=np.concatenate([p.features for p in parts]),
            topic_preference=np.concatenate([p.topic_preference for p in parts]),
            diversity_weight=np.concatenate([p.diversity_weight for p in parts]),
            latent=np.concatenate([p.latent for p in parts]),
        )


@dataclass
class RankingRequest:
    """One re-ranking request: a user, an initial list, and (optional) clicks.

    Attributes
    ----------
    user_id:
        Index into the population.
    items:
        (L,) candidate item ids in initial-ranker order (position 0 ranked
        first).
    initial_scores:
        (L,) scores assigned by the initial ranker.
    clicks:
        (L,) binary click feedback on the initial list, if simulated/logged.
    fully_observed:
        True when the click labels carry no examination censoring (the
        simulator logged the attraction outcome for every position); False
        for realistic sessions where positions after a satisfied exit are
        censored.
    """

    user_id: int
    items: np.ndarray
    initial_scores: np.ndarray
    clicks: np.ndarray | None = None
    fully_observed: bool = False

    def __post_init__(self) -> None:
        self.items = np.asarray(self.items, dtype=np.int64)
        self.initial_scores = np.asarray(self.initial_scores, dtype=np.float64)
        if self.items.ndim != 1:
            raise ValueError("items must be a 1-D id array")
        if self.items.shape != self.initial_scores.shape:
            raise ValueError("items and initial_scores must align")
        if self.clicks is not None:
            self.clicks = np.asarray(self.clicks, dtype=np.float64)
            if self.clicks.shape != self.items.shape:
                raise ValueError("clicks must align with items")

    @property
    def list_length(self) -> int:
        return len(self.items)


@dataclass
class RerankDataset:
    """A full semi-synthetic dataset in the paper's four-way split.

    Attributes
    ----------
    catalog, population:
        The item/user universes.
    histories:
        Per-user time-ordered item-id lists (the behavior history split).
    ranker_train:
        (user_id, item_id, label) interactions for training initial rankers.
    rerank_train / test:
        Lists of :class:`RankingRequest` (clicks filled in by the click
        simulator or logged).
    name:
        Dataset identifier ("taobao", "movielens", "appstore").
    """

    catalog: Catalog
    population: Population
    histories: list[np.ndarray]
    ranker_train: np.ndarray
    rerank_train: list[RankingRequest] = field(default_factory=list)
    test: list[RankingRequest] = field(default_factory=list)
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if len(self.histories) != self.population.num_users:
            raise ValueError("one history per user is required")

    def history_of(self, user_id: int) -> np.ndarray:
        return self.histories[user_id]
