"""Batch assembly for re-ranking models.

A :class:`RerankBatch` carries every dense array the models need: user and
item features, topic coverage of the initial list, initial-ranker scores,
clicks, validity masks, and the user behavior history in two views — the
flat sequence (used by DIN-style models) and the per-topic split sequences
(used by RAPID's personalized diversity estimator, paper Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..utils.rng import make_rng
from .schema import Catalog, Population, RankingRequest

__all__ = [
    "RerankBatch",
    "split_history_by_topic",
    "build_batch",
    "iterate_batches",
    "normalized_initial_scores",
]


@dataclass
class RerankBatch:
    """Dense, padded arrays for a batch of ranking requests.

    Shapes use B = batch, L = list length, m = topics, D = per-topic history
    length, H = flat history length, q_u / q_v = feature dims.
    """

    user_ids: np.ndarray  # (B,)
    user_features: np.ndarray  # (B, q_u)
    item_ids: np.ndarray  # (B, L)
    item_features: np.ndarray  # (B, L, q_v)
    coverage: np.ndarray  # (B, L, m)
    initial_scores: np.ndarray  # (B, L)
    clicks: np.ndarray  # (B, L)
    mask: np.ndarray  # (B, L) bool
    history_features: np.ndarray  # (B, H, q_v)
    history_mask: np.ndarray  # (B, H) bool
    topic_history_features: np.ndarray  # (B, m, D, q_v)
    topic_history_mask: np.ndarray  # (B, m, D) bool
    bids: np.ndarray | None = None  # (B, L)
    observed: np.ndarray | None = None  # (B, L) bool: surely-examined (DCM)

    def __post_init__(self) -> None:
        if self.observed is None:
            self.observed = self.mask.copy()

    @property
    def training_mask(self) -> np.ndarray:
        """Valid positions whose click label is unbiased under the DCM."""
        return self.mask & self.observed

    @property
    def batch_size(self) -> int:
        return len(self.user_ids)

    @property
    def list_length(self) -> int:
        return self.item_ids.shape[1]

    @property
    def num_topics(self) -> int:
        return self.coverage.shape[2]


def normalized_initial_scores(batch: RerankBatch) -> np.ndarray:
    """Per-list z-scored initial-ranker scores (B, L).

    Raw ranker logits live on arbitrary scales (DIN logits vs LambdaMART
    margins); normalizing per list keeps the feature comparable across
    initial rankers and training runs.  Padded positions get 0.
    """
    scores = batch.initial_scores
    if batch.mask.all():
        # Fixed-length lists (the serving common case): nanmean/nanstd
        # delegate to mean/std when no NaNs are present, so skipping the
        # NaN-blend allocations is bitwise-identical and ~3x cheaper.
        mean = scores.mean(axis=1, keepdims=True)
        std = scores.std(axis=1, keepdims=True)
        return (scores - mean) / np.where(std > 1e-8, std, 1.0)
    masked = np.where(batch.mask, scores, np.nan)
    mean = np.nanmean(masked, axis=1, keepdims=True)
    std = np.nanstd(masked, axis=1, keepdims=True)
    normalized = (scores - mean) / np.where(std > 1e-8, std, 1.0)
    return np.where(batch.mask, normalized, 0.0)


def split_history_by_topic(
    history: np.ndarray,
    coverage: np.ndarray,
    num_topics: int,
    max_length: int,
    membership_threshold: float = 0.25,
) -> tuple[np.ndarray, np.ndarray]:
    """Split a flat behavior history into per-topic sequences (Sec. III-C).

    An item joins topic ``j``'s sequence if its coverage of ``j`` is at
    least ``membership_threshold`` or ``j`` is its dominant topic.  Each
    sequence keeps the **most recent** ``max_length`` items, preserving time
    order.  Returns ``(ids (m, D), mask (m, D))`` with -1 padding ids.
    """
    history = np.asarray(history, dtype=np.int64)
    ids = np.full((num_topics, max_length), -1, dtype=np.int64)
    mask = np.zeros((num_topics, max_length), dtype=bool)
    if history.size == 0:
        return ids, mask
    item_cov = coverage[history]  # (H, m)
    dominant = item_cov.argmax(axis=1)
    for topic in range(num_topics):
        member = (item_cov[:, topic] >= membership_threshold) | (dominant == topic)
        topical = history[member][-max_length:]
        if topical.size:
            ids[topic, : len(topical)] = topical
            mask[topic, : len(topical)] = True
    return ids, mask


def build_batch(
    requests: Sequence[RankingRequest],
    catalog: Catalog,
    population: Population,
    histories: Sequence[np.ndarray],
    topic_history_length: int = 5,
    flat_history_length: int = 20,
) -> RerankBatch:
    """Assemble a :class:`RerankBatch` from raw requests.

    Lists may have different lengths; shorter lists are zero-padded and
    masked.  Histories are truncated to the most recent entries.
    """
    if not requests:
        raise ValueError("cannot build a batch from zero requests")
    batch = len(requests)
    length = max(r.list_length for r in requests)
    num_topics = catalog.num_topics
    q_v = catalog.feature_dim

    user_ids = np.array([r.user_id for r in requests], dtype=np.int64)
    item_ids = np.zeros((batch, length), dtype=np.int64)
    item_features = np.zeros((batch, length, q_v))
    coverage = np.zeros((batch, length, num_topics))
    initial_scores = np.zeros((batch, length))
    clicks = np.zeros((batch, length))
    mask = np.zeros((batch, length), dtype=bool)
    observed = np.zeros((batch, length), dtype=bool)
    bids = np.zeros((batch, length)) if catalog.bids is not None else None

    hist_features = np.zeros((batch, flat_history_length, q_v))
    hist_mask = np.zeros((batch, flat_history_length), dtype=bool)
    topic_features = np.zeros((batch, num_topics, topic_history_length, q_v))
    topic_mask = np.zeros((batch, num_topics, topic_history_length), dtype=bool)

    for row, request in enumerate(requests):
        n = request.list_length
        item_ids[row, :n] = request.items
        item_features[row, :n] = catalog.features[request.items]
        coverage[row, :n] = catalog.coverage[request.items]
        initial_scores[row, :n] = request.initial_scores
        if request.clicks is not None:
            clicks[row, :n] = request.clicks
        mask[row, :n] = True
        # DCM observation prefix: with no click, the user examined every
        # position; with clicks, positions after the last click may not
        # have been examined (the session may have terminated there), so
        # their zero labels are censored, not negatives.  Fully-observed
        # requests (simulator-logged attraction outcomes) carry no
        # censoring at all.
        if (
            not request.fully_observed
            and request.clicks is not None
            and request.clicks.max() > 0.5
        ):
            last_click = int(np.flatnonzero(request.clicks > 0.5)[-1])
            observed[row, : last_click + 1] = True
        else:
            observed[row, :n] = True
        if bids is not None:
            bids[row, :n] = catalog.bids[request.items]

        history = np.asarray(histories[request.user_id], dtype=np.int64)
        recent = history[-flat_history_length:]
        if recent.size:
            hist_features[row, : len(recent)] = catalog.features[recent]
            hist_mask[row, : len(recent)] = True
        topic_ids, t_mask = split_history_by_topic(
            history, catalog.coverage, num_topics, topic_history_length
        )
        valid = topic_ids >= 0
        topic_features[row][valid] = catalog.features[topic_ids[valid]]
        topic_mask[row] = t_mask

    return RerankBatch(
        user_ids=user_ids,
        user_features=population.features[user_ids],
        item_ids=item_ids,
        item_features=item_features,
        coverage=coverage,
        initial_scores=initial_scores,
        clicks=clicks,
        mask=mask,
        observed=observed,
        history_features=hist_features,
        history_mask=hist_mask,
        topic_history_features=topic_features,
        topic_history_mask=topic_mask,
        bids=bids,
    )


def iterate_batches(
    requests: Sequence[RankingRequest],
    catalog: Catalog,
    population: Population,
    histories: Sequence[np.ndarray],
    batch_size: int,
    shuffle: bool = True,
    seed: int | np.random.Generator | None = 0,
    topic_history_length: int = 5,
    flat_history_length: int = 20,
) -> Iterator[RerankBatch]:
    """Yield :class:`RerankBatch` objects covering ``requests`` once."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    order = np.arange(len(requests))
    if shuffle:
        make_rng(seed).shuffle(order)
    for start in range(0, len(order), batch_size):
        chunk = [requests[i] for i in order[start : start + batch_size]]
        yield build_batch(
            chunk,
            catalog,
            population,
            histories,
            topic_history_length=topic_history_length,
            flat_history_length=flat_history_length,
        )
