"""Autograd fuzzer: seeded random programs with shrinking.

Per-op gradient tests cannot catch *interaction* bugs — a broadcast inside
a softmax feeding a fused LSTM step, a reduction after advanced indexing.
The fuzzer generates random straight-line programs over the Tensor op
vocabulary (elementwise math, broadcasting, slicing, gather, reductions,
shape ops, concatenation/stacking, ``where``, and the fused recurrent
kernels registered via ``register_custom_op``) and checks every program
with the differential oracle: fused vs composed dispatch forward + backward
agreement, central finite differences as an implementation-independent
gradient oracle, and bitwise tape-vs-no-tape forward equality (the op
table's straight-through dispatch must not change a single computed value).

Everything is derived from integer seeds, so a failure is a *value*: the
:class:`Program` that reproduces it.  :func:`shrink` then greedily deletes
ops while the failure persists, yielding a minimal reproducing program
whose remaining op names localize the bug (see
``tests/test_testing_fuzz.py`` for the injected-kernel-bug demonstration).

Command line::

    python -m repro.testing.fuzz --smoke          # 200 seeded programs
    python -m repro.testing.fuzz --count 1000 --seed-base 7 --verbose

Exit status is nonzero when any program fails; the shrunken reproduction
and its structured diff are printed.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from ..nn.kernels import fused_enabled, zero_state
from ..nn.tensor import Tensor
from .oracle import DiffReport, differential_check

__all__ = [
    "OpCall",
    "Program",
    "FuzzFailure",
    "OP_VOCABULARY",
    "generate_program",
    "build_function",
    "check_program",
    "shrink",
    "fuzz",
    "main",
]

_HIDDEN = 3  # hidden width used by the recurrent macro ops
_TIME = 3  # scan length used by the recurrent macro ops


def _aux_rng(program_seed: int, index: int) -> np.random.Generator:
    """Deterministic generator for op ``index``'s auxiliary constants."""
    return np.random.default_rng([program_seed, index])


# ----------------------------------------------------------------------
# Op vocabulary.  Each op maps (t, rng, param) -> Tensor and must accept
# any 2-D float input; auxiliary constants are drawn from ``rng`` (fully
# determined by the program seed and op position, so every execution mode
# and finite-difference evaluation sees identical constants).  Inputs are
# kept bounded (clips, smoothed divisors) so finite differences stay
# well-conditioned across arbitrary compositions.
# ----------------------------------------------------------------------


def _op_tanh(t, rng, param):
    return t.tanh()


def _op_sigmoid(t, rng, param):
    return t.sigmoid()


def _op_relu(t, rng, param):
    return (t + 0.05).relu()


def _op_exp(t, rng, param):
    return t.clip(-3.0, 3.0).exp() * 0.1


def _op_log(t, rng, param):
    return (t * t + 1.0).log()


def _op_abs(t, rng, param):
    return (t + 0.01).abs()


def _op_square(t, rng, param):
    return t**2


def _op_softmax(t, rng, param):
    return t.softmax(axis=-1)


def _op_log_softmax(t, rng, param):
    return t.log_softmax(axis=-1)


def _op_sum(t, rng, param):
    return t.sum(axis=param % 2, keepdims=True)


def _op_mean(t, rng, param):
    return t.mean(axis=param % 2, keepdims=True)


def _op_max(t, rng, param):
    return t.max(axis=param % 2, keepdims=True)


def _op_slice(t, rng, param):
    rows, cols = t.shape
    if param % 2 == 0:
        return t[:, : max(1, (cols + 1) // 2)]
    return t[:, :: 2] if cols > 1 else t[:, :]


def _op_gather(t, rng, param):
    rows = t.shape[0]
    index = rng.integers(0, rows, size=rows + 1)  # repeats exercise np.add.at
    return t[index]


def _op_matmul(t, rng, param):
    cols = t.shape[1]
    aux = rng.normal(size=(cols, 2 + param % 3)) * 0.5
    return t @ Tensor(aux)


def _op_add_broadcast(t, rng, param):
    aux = rng.normal(size=(1, t.shape[1])) * 0.5
    return t + Tensor(aux)


def _op_mul_broadcast(t, rng, param):
    aux = rng.normal(size=(t.shape[0], 1)) * 0.5 + 1.0
    return t * Tensor(aux)


def _op_div(t, rng, param):
    aux = rng.normal(size=(1, t.shape[1]))
    return t / (Tensor(aux * aux) + 1.5)


def _op_rsub(t, rng, param):
    return 1.5 - t


def _op_where(t, rng, param):
    cond = rng.random(t.shape) < 0.5
    aux = rng.normal(size=t.shape) * 0.5
    return Tensor.where(cond, t, Tensor(aux))


def _op_concat(t, rng, param):
    aux = rng.normal(size=(1, t.shape[1])) * 0.5
    return Tensor.concatenate([t, t * 0.5 + Tensor(aux)], axis=1)


def _op_stack(t, rng, param):
    return Tensor.stack([t, t + 1.0], axis=0).mean(axis=0)


def _op_reshape(t, rng, param):
    rows, cols = t.shape
    return t.reshape(rows * cols).reshape(rows, cols)


def _op_transpose(t, rng, param):
    return t.transpose()


def _op_lstm_cell(t, rng, param):
    from ..nn.layers.recurrent import _lstm_step

    batch, cols = t.shape
    w = Tensor(rng.normal(size=(cols, 4 * _HIDDEN)) * 0.5)
    h0 = Tensor(rng.normal(size=(batch, _HIDDEN)) * 0.5)
    c0 = Tensor(rng.normal(size=(batch, _HIDDEN)) * 0.5)
    mask = None
    if param % 2:
        mask = rng.random(batch) < 0.75
        mask[0] = True
    h1, c1 = _lstm_step(t @ w, h0, c0, mask)
    return h1 + c1 * 0.5


def _op_gru_cell(t, rng, param):
    from ..nn.layers.recurrent import _gru_step

    batch, cols = t.shape
    w_i = Tensor(rng.normal(size=(cols, 3 * _HIDDEN)) * 0.5)
    w_h = Tensor(rng.normal(size=(cols, 3 * _HIDDEN)) * 0.5)
    h0 = Tensor(rng.normal(size=(batch, _HIDDEN)) * 0.5)
    mask = None
    if param % 2:
        mask = rng.random(batch) < 0.75
        mask[0] = True
    return _gru_step(t @ w_i, t @ w_h, h0, mask)


def _scan_inputs(t, rng, gates_per_step: int):
    batch, cols = t.shape
    projections = [
        t @ Tensor(rng.normal(size=(cols, gates_per_step * _HIDDEN)) * 0.5)
        for _ in range(_TIME)
    ]
    gi = Tensor.stack(projections, axis=1)  # (batch, _TIME, gates*_HIDDEN)
    w_hh = Tensor(rng.normal(size=(gates_per_step * _HIDDEN, _HIDDEN)) * 0.4)
    mask = rng.random((batch, _TIME)) < 0.8
    mask[:, 0] = True
    return gi, w_hh, mask


def _op_lstm_scan(t, rng, param):
    from ..nn.layers.recurrent import _lstm_step, _time_steps

    gi, w_hh, mask = _scan_inputs(t, rng, 4)
    if fused_enabled():
        outputs = Tensor.lstm_scan_fused(gi, w_hh, mask)
        return outputs.mean(axis=1)
    batch = t.shape[0]
    steps = _time_steps(gi, _TIME)
    h = zero_state(batch, _HIDDEN)
    c = zero_state(batch, _HIDDEN)
    collected = []
    for step in range(_TIME):
        gates = steps[step] + h @ w_hh.T
        h, c = _lstm_step(gates, h, c, mask[:, step])
        collected.append(h)
    return Tensor.stack(collected, axis=1).mean(axis=1)


def _op_gru_scan(t, rng, param):
    from ..nn.layers.recurrent import _gru_step, _time_steps

    gi, w_hh, mask = _scan_inputs(t, rng, 3)
    if fused_enabled():
        outputs = Tensor.gru_scan_fused(gi, w_hh, mask)
        return outputs.mean(axis=1)
    batch = t.shape[0]
    steps = _time_steps(gi, _TIME)
    h = zero_state(batch, _HIDDEN)
    collected = []
    for step in range(_TIME):
        gh = h @ w_hh.T
        h = _gru_step(steps[step], gh, h, mask[:, step])
        collected.append(h)
    return Tensor.stack(collected, axis=1).mean(axis=1)


OP_VOCABULARY: dict[str, Callable] = {
    "tanh": _op_tanh,
    "sigmoid": _op_sigmoid,
    "relu": _op_relu,
    "exp": _op_exp,
    "log": _op_log,
    "abs": _op_abs,
    "square": _op_square,
    "softmax": _op_softmax,
    "log_softmax": _op_log_softmax,
    "sum": _op_sum,
    "mean": _op_mean,
    "max": _op_max,
    "slice": _op_slice,
    "gather": _op_gather,
    "matmul": _op_matmul,
    "add_broadcast": _op_add_broadcast,
    "mul_broadcast": _op_mul_broadcast,
    "div": _op_div,
    "rsub": _op_rsub,
    "where": _op_where,
    "concat": _op_concat,
    "stack": _op_stack,
    "reshape": _op_reshape,
    "transpose": _op_transpose,
    "lstm_cell": _op_lstm_cell,
    "gru_cell": _op_gru_cell,
    "lstm_scan": _op_lstm_scan,
    "gru_scan": _op_gru_scan,
}

RECURRENT_OPS = ("lstm_cell", "gru_cell", "lstm_scan", "gru_scan")


@dataclass(frozen=True)
class OpCall:
    """One vocabulary op with its small integer parameter."""

    name: str
    param: int = 0


@dataclass(frozen=True)
class Program:
    """A seeded straight-line program; the seed pins input and constants."""

    seed: int
    shape: tuple[int, int]
    ops: tuple[OpCall, ...]

    def describe(self) -> str:
        chain = " -> ".join(f"{op.name}({op.param})" for op in self.ops)
        return f"Program(seed={self.seed}, shape={self.shape}): x -> {chain or 'x'}"


def generate_program(
    seed: int,
    max_ops: int = 6,
    include_recurrent: bool = True,
) -> Program:
    """Generate the program for ``seed`` (pure function of its arguments)."""
    rng = np.random.default_rng(seed)
    shape = (int(rng.integers(1, 4)), int(rng.integers(2, 5)))
    names = [n for n in OP_VOCABULARY if include_recurrent or n not in RECURRENT_OPS]
    count = int(rng.integers(1, max_ops + 1))
    ops = []
    for _ in range(count):
        # Bias toward the fused recurrent macros: they are the ops with
        # hand-written backwards, i.e. where the bugs live.
        if include_recurrent and rng.random() < 0.25:
            name = RECURRENT_OPS[int(rng.integers(len(RECURRENT_OPS)))]
        else:
            name = names[int(rng.integers(len(names)))]
        ops.append(OpCall(name, int(rng.integers(0, 8))))
    return Program(seed, shape, tuple(ops))


def build_function(program: Program):
    """Return ``(fn, input_arrays)`` for the differential oracle."""

    def fn(x: Tensor) -> Tensor:
        t = x
        for index, op in enumerate(program.ops):
            t = OP_VOCABULARY[op.name](t, _aux_rng(program.seed, index), op.param)
        return t

    x_data = np.random.default_rng([program.seed, 987]).normal(
        size=program.shape
    ) * 0.8
    return fn, (x_data,)


def check_program(program: Program, **tolerances) -> DiffReport:
    """Differential-check one program (fused vs composed vs finite differences)."""
    fn, arrays = build_function(program)
    report = differential_check(
        fn, arrays, name=program.describe(), input_names=("x",), **tolerances
    )
    return report


def shrink(
    program: Program,
    is_failing: Callable[[Program], bool] | None = None,
) -> Program:
    """Greedily delete ops while the program still fails (ddmin-lite).

    Every subsequence of a straight-line program is itself a valid program
    (all ops are shape-agnostic), so shrinking is a sequence-minimization:
    repeatedly drop any single op whose removal preserves the failure.
    The result is 1-minimal — no single further deletion still fails.
    """
    if is_failing is None:
        is_failing = lambda p: not check_program(p).passed  # noqa: E731
    ops = list(program.ops)
    changed = True
    while changed:
        changed = False
        for index in range(len(ops)):
            candidate = replace(
                program, ops=tuple(ops[:index] + ops[index + 1 :])
            )
            if is_failing(candidate):
                del ops[index]
                changed = True
                break
    return replace(program, ops=tuple(ops))


@dataclass
class FuzzFailure:
    """A failing program plus its shrunken minimal reproduction."""

    program: Program
    report: DiffReport
    shrunken: Program
    shrunken_report: DiffReport

    def format(self) -> str:
        return "\n".join(
            [
                f"original: {self.program.describe()}",
                f"shrunken: {self.shrunken.describe()}",
                self.shrunken_report.format(),
            ]
        )


def fuzz(
    count: int = 200,
    seed_base: int = 0,
    max_ops: int = 6,
    include_recurrent: bool = True,
    shrink_failures: bool = True,
    **tolerances,
) -> list[FuzzFailure]:
    """Check ``count`` seeded programs; returns the (shrunken) failures."""
    failures: list[FuzzFailure] = []
    for offset in range(count):
        program = generate_program(
            seed_base + offset, max_ops=max_ops, include_recurrent=include_recurrent
        )
        report = check_program(program, **tolerances)
        if report.passed:
            continue
        shrunken = (
            shrink(program, lambda p: not check_program(p, **tolerances).passed)
            if shrink_failures
            else program
        )
        failures.append(
            FuzzFailure(
                program,
                report,
                shrunken,
                check_program(shrunken, **tolerances),
            )
        )
    return failures


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description="Differential autograd fuzzer (fused vs composed vs "
        "finite differences).",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fixed 200-program smoke tier (seeds 0..199)",
    )
    parser.add_argument("--count", type=int, default=50)
    parser.add_argument("--seed-base", type=int, default=0)
    parser.add_argument("--max-ops", type=int, default=6)
    parser.add_argument(
        "--no-recurrent",
        action="store_true",
        help="exclude the fused recurrent macro ops",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    count = 200 if args.smoke else args.count
    seed_base = 0 if args.smoke else args.seed_base

    failures = fuzz(
        count=count,
        seed_base=seed_base,
        max_ops=args.max_ops,
        include_recurrent=not args.no_recurrent,
    )
    if args.verbose or failures:
        print(
            f"fuzz: {count} programs from seed {seed_base}, "
            f"{len(failures)} failure(s)"
        )
    for failure in failures:
        print()
        print(failure.format())
    if not failures:
        print(
            f"OK: {count} random programs agree across "
            "fused/composed/fd/no-tape"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
