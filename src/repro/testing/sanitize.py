"""Opt-in numerical sanitizer for the autograd op-dispatch surface.

A NaN born inside a softmax three layers deep surfaces as "the final loss
is NaN" — every op between cause and symptom is a suspect.  The sanitizer
hooks the same dispatch point as the ``repro.obs`` op profiler (every op in
:data:`repro.nn.tensor.PROFILED_OPS`, including registered custom/fused
kernels) and inspects each op's forward outputs and each backward closure's
incoming gradient.  The *first* offending value raises
:class:`NumericalError` naming the originating op, the phase, the kind of
trap (nan / inf / denormal / grad magnitude), and the offending shape — so
the blast site, not the crater, is in the traceback.

Strictly opt-in: nothing is patched at import time and the disabled-path
cost is zero (gated by ``benchmarks/bench_sanitizer_overhead.py``).
Usage::

    with sanitize():                     # trap NaN/Inf mid-graph
        loss = model(batch); loss.backward()

    with assert_finite():                # alias with assertion framing
        metrics = evaluate(model, world)

    with assert_deterministic(seed=0):   # bitwise run-to-run reproducibility
        train(model, world)              # first run records, later runs compare

Each trap also increments the ``sanitizer.traps{op=,kind=}`` counter and
emits a ``sanitizer.trap`` run-log event before raising, so observability
pipelines see the event even when the exception is swallowed upstream.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager

import numpy as np

__all__ = [
    "NumericalError",
    "SanitizerConfig",
    "enable_sanitizer",
    "disable_sanitizer",
    "is_sanitizer_enabled",
    "sanitize",
    "assert_finite",
    "assert_deterministic",
    "reset_determinism_fingerprints",
]


class NumericalError(FloatingPointError):
    """A trapped numerical anomaly, annotated with its originating op.

    Attributes mirror the message so tests and tooling can assert on the
    trap structurally instead of parsing strings.
    """

    def __init__(self, op: str, phase: str, kind: str, shape: tuple, detail: str):
        self.op = op
        self.phase = phase
        self.kind = kind
        self.shape = shape
        self.detail = detail
        super().__init__(
            f"numerical sanitizer trapped {kind} in {phase} of op "
            f"{op!r} (shape={shape}): {detail}"
        )


class SanitizerConfig:
    """What the sanitizer traps.  NaN and Inf are always trapped."""

    def __init__(
        self,
        trap_denormal: bool = False,
        max_grad: float | None = None,
    ) -> None:
        self.trap_denormal = trap_denormal
        self.max_grad = max_grad


_lock = threading.Lock()
_originals: dict[str, object] = {}
_enabled = False
_config = SanitizerConfig()
# assert_deterministic: seed -> recorded fingerprint from the first run.
_fingerprints: dict[int, str] = {}


def is_sanitizer_enabled() -> bool:
    return _enabled


def _trap(op: str, phase: str, kind: str, array: np.ndarray, detail: str) -> None:
    """Record the trap in obs, then raise."""
    from ..obs.metrics import get_registry
    from ..obs.runlog import get_run_logger

    shape = tuple(np.shape(array))
    get_registry().counter("sanitizer.traps", op=op, kind=kind).inc()
    logger = get_run_logger()
    if logger.active:
        logger.log(
            "sanitizer.trap", op=op, phase=phase, kind=kind,
            shape=list(shape), detail=detail,
        )
    raise NumericalError(op, phase, kind, shape, detail)


def _check_array(op: str, phase: str, value, config: SanitizerConfig) -> None:
    data = np.asarray(value)
    if not np.issubdtype(data.dtype, np.floating):
        return
    if np.isnan(data).any():
        count = int(np.isnan(data).sum())
        _trap(op, phase, "nan", data, f"{count}/{data.size} element(s) NaN")
    if np.isinf(data).any():
        count = int(np.isinf(data).sum())
        _trap(op, phase, "inf", data, f"{count}/{data.size} element(s) Inf")
    if config.trap_denormal and data.size:
        finite = data[np.isfinite(data)]
        nonzero = finite[finite != 0.0]
        if nonzero.size:
            tiny = np.finfo(data.dtype).tiny
            denormal = np.abs(nonzero) < tiny
            if denormal.any():
                _trap(
                    op, phase, "denormal", data,
                    f"{int(denormal.sum())} subnormal element(s), "
                    f"min |x| = {float(np.abs(nonzero).min()):.3e}",
                )
    if phase == "backward" and config.max_grad is not None and data.size:
        peak = float(np.abs(data).max())
        if peak > config.max_grad:
            _trap(
                op, phase, "grad_magnitude", data,
                f"max |grad| = {peak:.3e} exceeds limit {config.max_grad:.3e}",
            )


def _wrap_op(name: str, fn):
    from ..nn.tensor import Tensor

    op = name.strip("_")

    def _hook(result) -> None:
        if not isinstance(result, Tensor):
            return
        _check_array(op, "forward", result.data, _config)
        inner = result._backward
        if inner is not None and not getattr(inner, "_sanitized", False):

            parents = result._parents

            def sanitized_backward(grad):
                # Module-level re-check: graphs built while enabled may run
                # backward after disable (or vice versa); the flag, not the
                # closure's build-time state, decides.
                if _enabled:
                    _check_array(op, "backward", grad, _config)
                inner(grad)
                if _enabled:
                    # Grads this op *produced*: leaf parents never run a
                    # wrapped closure of their own, so inspect what was
                    # just accumulated into them.
                    for parent in parents:
                        if parent.grad is not None:
                            _check_array(op, "backward", parent.grad, _config)

            sanitized_backward._sanitized = True
            result._backward = sanitized_backward

    def sanitized(*args, **kwargs):
        out = fn(*args, **kwargs)
        if _enabled:
            if isinstance(out, tuple):
                for element in out:
                    _hook(element)
            else:
                _hook(out)
        return out

    sanitized._sanitizer_op = op
    sanitized._sanitizer_original = fn
    return sanitized


def enable_sanitizer(
    trap_denormal: bool = False,
    max_grad: float | None = None,
) -> None:
    """Patch the trap hook onto every op in ``PROFILED_OPS`` (idempotent).

    ``trap_denormal`` additionally traps subnormal (gradual-underflow)
    outputs — a leading indicator of vanishing signals.  ``max_grad`` traps
    any backward gradient whose magnitude exceeds the limit (exploding
    gradients) before it propagates further.
    """
    global _enabled, _config
    from ..nn.tensor import install_op_wrappers

    with _lock:
        _config = SanitizerConfig(trap_denormal=trap_denormal, max_grad=max_grad)
        if _enabled:
            return
        _enabled = True
    _originals.update(install_op_wrappers(_wrap_op))


def disable_sanitizer() -> None:
    """Restore the unpatched ops (idempotent)."""
    global _enabled
    from ..nn.tensor import restore_ops

    with _lock:
        if not _enabled:
            return
        _enabled = False
    restore_ops(_originals)
    _originals.clear()


@contextmanager
def sanitize(trap_denormal: bool = False, max_grad: float | None = None):
    """Enable the sanitizer for a block; restores the prior state on exit."""
    was_enabled = _enabled
    enable_sanitizer(trap_denormal=trap_denormal, max_grad=max_grad)
    try:
        yield
    finally:
        if not was_enabled:
            disable_sanitizer()


@contextmanager
def assert_finite():
    """Assert no op in the block produces NaN/Inf forward or backward.

    Alias of :func:`sanitize` with default traps, named for test intent:
    ``with assert_finite(): evaluate(model, world)``.
    """
    with sanitize():
        yield


def reset_determinism_fingerprints() -> None:
    """Forget recorded :func:`assert_deterministic` fingerprints."""
    _fingerprints.clear()


@contextmanager
def assert_deterministic(seed: int):
    """Assert the block's op-level outputs are bitwise run-to-run identical.

    Every op output inside the block is folded into a rolling SHA-1 over
    its raw bytes (shape + dtype + data).  The first block executed with a
    given ``seed`` records the fingerprint; later blocks with the same seed
    compare and raise :class:`NumericalError` (kind ``nondeterminism``) on
    mismatch.  Use around a seeded train/eval run to prove the whole
    computation — not just the final metric — is reproducible::

        for attempt in range(2):
            np.random.seed(0)
            with assert_deterministic(seed=0):
                run_training(config)
    """
    from ..nn.tensor import Tensor, install_op_wrappers, restore_ops

    digest = hashlib.sha1()

    def _fold(result) -> None:
        if not isinstance(result, Tensor):
            return
        data = np.ascontiguousarray(result.data)
        digest.update(str(data.shape).encode())
        digest.update(str(data.dtype).encode())
        digest.update(data.tobytes())

    def make_wrapper(name: str, fn):
        def fingerprinted(*args, **kwargs):
            out = fn(*args, **kwargs)
            if isinstance(out, tuple):
                for element in out:
                    _fold(element)
            else:
                _fold(out)
            return out

        return fingerprinted

    if _enabled:
        raise RuntimeError(
            "assert_deterministic cannot nest inside an active sanitizer "
            "(both patch the op-dispatch surface); disable one of them"
        )
    originals = install_op_wrappers(make_wrapper)
    try:
        yield
    finally:
        restore_ops(originals)
    fingerprint = digest.hexdigest()
    previous = _fingerprints.get(seed)
    if previous is None:
        _fingerprints[seed] = fingerprint
    elif previous != fingerprint:
        raise NumericalError(
            "<run>", "replay", "nondeterminism", (),
            f"op-stream fingerprint {fingerprint[:12]} != recorded "
            f"{previous[:12]} for seed {seed}",
        )
