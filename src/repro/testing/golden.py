"""Golden-slate regression store for re-ranker outputs.

Metric-level tests (``alpha-NDCG went up``) tolerate silent behavioral
drift: a re-ranker can emit different slates with near-identical aggregate
scores.  Golden files pin the *actual outputs* — permutations and per-item
scores for a fixed seeded world — as JSON under ``tests/golden/``, so any
change to slate composition is a visible, reviewable diff.

Workflow (see TESTING.md):

- first run / intentional behavior change::

      PYTHONPATH=src python -m pytest tests/test_golden_rerankers.py --update-golden

  rewrites the snapshots; commit the JSON diff alongside the code change.
- normal runs compare against the stored snapshot: integer payloads
  (permutations) must match exactly, float payloads (scores) to
  ``rtol``/``atol``.  A missing snapshot raises :class:`MissingGolden`
  with the update command; a divergence raises :class:`GoldenMismatch`
  with a structured path-by-path diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = ["GoldenStore", "GoldenMismatch", "MissingGolden"]


class MissingGolden(AssertionError):
    """No snapshot on disk for this name (and updating is off)."""


class GoldenMismatch(AssertionError):
    """Stored snapshot and current payload diverge beyond tolerance."""

    def __init__(self, name: str, diffs: list[str]):
        self.name = name
        self.diffs = diffs
        shown = diffs[:20]
        lines = [f"golden mismatch for {name!r} ({len(diffs)} difference(s)):"]
        lines += [f"  {d}" for d in shown]
        if len(diffs) > len(shown):
            lines.append(f"  ... and {len(diffs) - len(shown)} more")
        lines.append("if intentional, refresh with: pytest --update-golden")
        super().__init__("\n".join(lines))


def _canonical(value):
    """Convert a payload to pure JSON types (numpy arrays -> nested lists)."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, np.ndarray):
        return _canonical(value.tolist())
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


class GoldenStore:
    """Read/write/compare golden snapshots in ``directory``.

    ``update=True`` (the ``--update-golden`` pytest flag) rewrites
    snapshots instead of comparing.  Floats compare with
    ``abs(a-b) <= atol + rtol*|b|``; ints, strings, bools, and structure
    compare exactly.
    """

    def __init__(
        self,
        directory: str | Path,
        update: bool = False,
        rtol: float = 1e-7,
        atol: float = 1e-9,
    ) -> None:
        self.directory = Path(directory)
        self.update = update
        self.rtol = rtol
        self.atol = atol

    def path_for(self, name: str) -> Path:
        return self.directory / f"{name}.json"

    def check(self, name: str, payload) -> None:
        """Compare ``payload`` against the stored snapshot (or record it)."""
        payload = _canonical(payload)
        path = self.path_for(name)
        if self.update:
            self.directory.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            return
        if not path.exists():
            raise MissingGolden(
                f"no golden snapshot {path}; record it with: "
                "PYTHONPATH=src python -m pytest --update-golden "
                "(then commit the JSON)"
            )
        stored = json.loads(path.read_text(encoding="utf-8"))
        diffs: list[str] = []
        self._diff(stored, payload, "$", diffs)
        if diffs:
            raise GoldenMismatch(name, diffs)

    def _diff(self, stored, current, path: str, diffs: list[str]) -> None:
        if isinstance(stored, dict) or isinstance(current, dict):
            if not (isinstance(stored, dict) and isinstance(current, dict)):
                diffs.append(f"{path}: type {type(stored).__name__} != "
                             f"{type(current).__name__}")
                return
            for key in sorted(set(stored) | set(current)):
                if key not in stored:
                    diffs.append(f"{path}.{key}: only in current payload")
                elif key not in current:
                    diffs.append(f"{path}.{key}: only in stored golden")
                else:
                    self._diff(stored[key], current[key], f"{path}.{key}", diffs)
            return
        if isinstance(stored, list) or isinstance(current, list):
            if not (isinstance(stored, list) and isinstance(current, list)):
                diffs.append(f"{path}: type {type(stored).__name__} != "
                             f"{type(current).__name__}")
                return
            if len(stored) != len(current):
                diffs.append(f"{path}: length {len(stored)} != {len(current)}")
                return
            for i, (s, c) in enumerate(zip(stored, current)):
                self._diff(s, c, f"{path}[{i}]", diffs)
            return
        # bool is an int subclass: compare exactly and before the float branch.
        if isinstance(stored, bool) or isinstance(current, bool):
            if stored is not current:
                diffs.append(f"{path}: {stored!r} != {current!r}")
            return
        if isinstance(stored, float) or isinstance(current, float):
            if not (isinstance(stored, (int, float))
                    and isinstance(current, (int, float))):
                diffs.append(f"{path}: {stored!r} != {current!r}")
                return
            a, b = float(stored), float(current)
            if a != b:  # covers NaN != NaN -> flagged, and exact matches
                if np.isnan(a) and np.isnan(b):
                    return
                if abs(a - b) > self.atol + self.rtol * abs(b):
                    diffs.append(
                        f"{path}: {a!r} != {b!r} "
                        f"(abs err {abs(a - b):.3e} > tol)"
                    )
            return
        if stored != current:
            diffs.append(f"{path}: {stored!r} != {current!r}")
