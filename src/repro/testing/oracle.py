"""Differential-testing engine for the autograd stack.

The engine answers one question about any differentiable computation: do
the fused dispatch path, the composed (``REPRO_NN_FUSED=0``) path, and a
central finite-difference oracle agree on its values and gradients?  Each
comparison produces a :class:`DiffRow` (max absolute / relative error and
max ULP distance) and the rows roll up into a :class:`DiffReport` — a
structured diff that names the op and the quantity that diverged, which is
what turns "the loss is wrong" into "``lstm_cell_fused`` backward, input
``gates``, 3.2e-1 relative error".

The fused kernels register their own randomized test cases in
``repro.nn.kernels.ORACLE_CASES``; :func:`check_all_kernels` replays them
all, so any new fused op is covered by adding one registration next to its
definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..nn.kernels import use_fused
from ..nn.tensor import Tensor

__all__ = [
    "DiffRow",
    "DiffReport",
    "DivergenceError",
    "max_ulp_diff",
    "compare_arrays",
    "finite_difference_grad",
    "differential_check",
    "assert_equivalent",
    "check_kernel",
    "check_all_kernels",
]


class DivergenceError(AssertionError):
    """Raised when two execution paths disagree beyond tolerance."""


def max_ulp_diff(a: np.ndarray, b: np.ndarray) -> float:
    """Maximum ULP (units in the last place) distance between two arrays.

    Uses the monotonic int64 reinterpretation of IEEE-754 doubles, so the
    distance counts representable floats between the values.  Returns
    ``inf`` when NaNs/Infs are present in only one of the arrays (or at
    different positions), and 0 for bitwise-equal arrays.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        return float("inf")
    bad_a = ~np.isfinite(a)
    bad_b = ~np.isfinite(b)
    if bad_a.any() or bad_b.any():
        # NaN/Inf only match when bit-identical in both arrays.
        if (bad_a != bad_b).any() or not np.array_equal(
            a[bad_a].view(np.int64), b[bad_b].view(np.int64)
        ):
            return float("inf")
    mask = np.int64(0x7FFFFFFFFFFFFFFF)
    bits_a = np.ascontiguousarray(a).view(np.int64)
    bits_b = np.ascontiguousarray(b).view(np.int64)
    order_a = np.where(bits_a < 0, bits_a ^ mask, bits_a)
    order_b = np.where(bits_b < 0, bits_b ^ mask, bits_b)
    good = np.isfinite(a)
    if not good.any():
        return 0.0
    order_a, order_b = order_a[good], order_b[good]
    # Same-sign orders subtract exactly in int64 (no overflow possible);
    # opposite signs could overflow, but there the distance is astronomical
    # anyway, so float64 rounding on |a| + |b| is harmless.  Subtracting
    # *before* any float cast is what keeps 1-ULP gaps between large
    # orders (|order| > 2**53) exact.
    same_sign = (order_a >= 0) == (order_b >= 0)
    diff = np.where(
        same_sign,
        np.abs(order_a - order_b).astype(np.float64),
        np.abs(order_a.astype(np.float64)) + np.abs(order_b.astype(np.float64)),
    )
    return float(diff.max())


@dataclass(frozen=True)
class DiffRow:
    """One compared quantity (an output or a gradient) of a divergence check."""

    quantity: str
    shape: tuple[int, ...]
    max_abs_err: float
    max_rel_err: float
    max_ulp: float
    rtol: float
    atol: float
    ok: bool

    def format(self) -> str:
        status = "ok  " if self.ok else "FAIL"
        return (
            f"{status} {self.quantity:<28s} shape={str(self.shape):<14s} "
            f"abs={self.max_abs_err:.3e} rel={self.max_rel_err:.3e} "
            f"ulp={self.max_ulp:.3g} (rtol={self.rtol:g}, atol={self.atol:g})"
        )


@dataclass
class DiffReport:
    """Structured diff produced by :func:`differential_check`."""

    name: str
    rows: list[DiffRow] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(row.ok for row in self.rows)

    @property
    def failures(self) -> list[DiffRow]:
        return [row for row in self.rows if not row.ok]

    @property
    def worst(self) -> DiffRow | None:
        """The failing row with the largest relative error (None if passing)."""
        failures = self.failures
        if not failures:
            return None
        return max(failures, key=lambda row: row.max_rel_err)

    def format(self) -> str:
        header = f"differential check {self.name!r}: " + (
            "PASS" if self.passed else f"{len(self.failures)} divergence(s)"
        )
        return "\n".join([header] + ["  " + row.format() for row in self.rows])


def compare_arrays(
    quantity: str,
    a: np.ndarray | None,
    b: np.ndarray | None,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> DiffRow:
    """Compare two arrays into a :class:`DiffRow` (``None`` matches ``None``)."""
    if a is None or b is None:
        ok = a is None and b is None
        return DiffRow(quantity, (), 0.0 if ok else float("inf"),
                       0.0 if ok else float("inf"),
                       0.0 if ok else float("inf"), rtol, atol, ok)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        return DiffRow(quantity, a.shape, float("inf"), float("inf"),
                       float("inf"), rtol, atol, False)
    abs_err = np.abs(a - b)
    denom = np.maximum(np.maximum(np.abs(a), np.abs(b)), np.finfo(np.float64).tiny)
    with np.errstate(invalid="ignore"):
        rel_err = abs_err / denom
    finite = np.isfinite(a) & np.isfinite(b)
    max_abs = float(abs_err[finite].max()) if finite.any() else 0.0
    max_rel = float(rel_err[finite].max()) if finite.any() else 0.0
    within = abs_err <= atol + rtol * denom
    ok = bool(within[finite].all()) if finite.any() else True
    ulp = max_ulp_diff(a, b)
    if (~finite).any() and ulp == float("inf"):
        ok = False  # NaN/Inf present in one path but not (identically) the other
    return DiffRow(quantity, a.shape, max_abs, max_rel, ulp, rtol, atol, ok)


def finite_difference_grad(
    fn: Callable[..., float],
    arrays: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite differences of scalar ``fn(*arrays)`` wrt ``arrays[index]``."""
    arrays = [np.array(a, dtype=np.float64, copy=True) for a in arrays]
    target = arrays[index]
    grad = np.zeros_like(target)
    flat = target.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*arrays))
        flat[i] = original - eps
        minus = float(fn(*arrays))
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def _run(
    fn: Callable[..., Tensor | tuple[Tensor, ...]],
    arrays: Sequence[np.ndarray],
    fused: bool,
) -> tuple[list[np.ndarray], list[np.ndarray | None]]:
    """Evaluate ``fn`` under one dispatch path; return outputs and grads.

    The scalar objective backpropagated is the sum of all outputs, so a
    single pass yields a comparable gradient for every input.
    """
    tensors = [Tensor(np.array(a, dtype=np.float64, copy=True), requires_grad=True)
               for a in arrays]
    with use_fused(fused):
        out = fn(*tensors)
    outputs = list(out) if isinstance(out, tuple) else [out]
    loss = outputs[0].sum()
    for extra in outputs[1:]:
        loss = loss + extra.sum()
    loss.backward()
    return (
        [np.array(o.data, copy=True) for o in outputs],
        [None if t.grad is None else np.array(t.grad, copy=True) for t in tensors],
    )


def differential_check(
    fn: Callable[..., Tensor | tuple[Tensor, ...]],
    arrays: Sequence[np.ndarray],
    name: str = "fn",
    input_names: Sequence[str] | None = None,
    forward_rtol: float = 0.0,
    forward_atol: float = 0.0,
    grad_rtol: float = 1e-9,
    grad_atol: float = 1e-11,
    fd: bool = True,
    fd_eps: float = 1e-6,
    fd_rtol: float = 1e-3,
    fd_atol: float = 1e-5,
) -> DiffReport:
    """Run ``fn`` under fused and composed dispatch plus a finite-difference oracle.

    ``fn`` receives one ``Tensor`` per entry of ``arrays`` and returns a
    tensor (or tuple of tensors); the objective compared is the sum of all
    outputs.  Three comparisons feed the report:

    - ``forward[...]`` — fused vs composed output values.  The default
      zero tolerances assert *bitwise* equality, which the fused kernels
      guarantee by construction (DESIGN.md §7);
    - ``grad[...] fused-vs-composed`` — analytic gradients of both paths
      (tight, but not bitwise: backward summation order differs);
    - ``grad[...] fused-vs-fd`` — fused-path gradients against central
      finite differences, an oracle independent of both graph
      implementations (loose: FD truncation error).
    """
    input_names = list(input_names) if input_names is not None else [
        f"x{i}" for i in range(len(arrays))
    ]
    report = DiffReport(name)
    fused_out, fused_grads = _run(fn, arrays, fused=True)
    composed_out, composed_grads = _run(fn, arrays, fused=False)
    for i, (a, b) in enumerate(zip(fused_out, composed_out)):
        label = "forward" if len(fused_out) == 1 else f"forward[{i}]"
        report.rows.append(compare_arrays(label, a, b, forward_rtol, forward_atol))
    for label, a, b in zip(input_names, fused_grads, composed_grads):
        report.rows.append(
            compare_arrays(f"grad[{label}] fused-vs-composed", a, b,
                           grad_rtol, grad_atol)
        )
    if fd:
        def objective(*raw: np.ndarray) -> float:
            outs, _ = _run_forward_only(fn, raw)
            return sum(float(o.sum()) for o in outs)

        for i, label in enumerate(input_names):
            if fused_grads[i] is None:
                continue
            numeric = finite_difference_grad(objective, arrays, i, eps=fd_eps)
            report.rows.append(
                compare_arrays(f"grad[{label}] fused-vs-fd",
                               fused_grads[i], numeric, fd_rtol, fd_atol)
            )
    return report


def _run_forward_only(
    fn: Callable[..., Tensor | tuple[Tensor, ...]],
    arrays: Sequence[np.ndarray],
) -> tuple[list[np.ndarray], None]:
    """Forward values of ``fn`` on the fused path without building a graph."""
    from ..nn.tensor import no_grad

    tensors = [Tensor(a) for a in arrays]
    with no_grad(), use_fused(True):
        out = fn(*tensors)
    outputs = list(out) if isinstance(out, tuple) else [out]
    return [o.data for o in outputs], None


def assert_equivalent(
    fn: Callable[..., Tensor | tuple[Tensor, ...]],
    arrays: Sequence[np.ndarray],
    name: str = "fn",
    **tolerances,
) -> DiffReport:
    """:func:`differential_check`, raising :class:`DivergenceError` on failure."""
    report = differential_check(fn, arrays, name=name, **tolerances)
    if not report.passed:
        raise DivergenceError(report.format())
    return report


def check_kernel(name: str, seed: int = 0, **tolerances) -> DiffReport:
    """Run the registered oracle case for one fused kernel.

    Cases are registered in ``repro.nn.kernels.ORACLE_CASES`` next to the
    kernels themselves; ``seed`` feeds the case's input generator.
    """
    from ..nn.kernels import ORACLE_CASES

    if name not in ORACLE_CASES:
        raise KeyError(
            f"no oracle case registered for {name!r}; "
            f"known: {sorted(ORACLE_CASES)}"
        )
    fn, arrays, input_names = ORACLE_CASES[name](np.random.default_rng(seed))
    return differential_check(
        fn, arrays, name=name, input_names=input_names, **tolerances
    )


def check_all_kernels(seed: int = 0, **tolerances) -> dict[str, DiffReport]:
    """Replay every registered kernel oracle case; returns reports by name."""
    from ..nn.kernels import ORACLE_CASES

    return {
        name: check_kernel(name, seed=seed, **tolerances)
        for name in sorted(ORACLE_CASES)
    }
