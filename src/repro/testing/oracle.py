"""Differential-testing engine for the autograd stack.

The engine answers one question about any differentiable computation: do
the fused dispatch path, the composed (``REPRO_NN_FUSED=0``) path, and a
central finite-difference oracle agree on its values and gradients?  Each
comparison produces a :class:`DiffRow` (max absolute / relative error and
max ULP distance) and the rows roll up into a :class:`DiffReport` — a
structured diff that names the op and the quantity that diverged, which is
what turns "the loss is wrong" into "``lstm_cell_fused`` backward, input
``gates``, 3.2e-1 relative error".

The fused kernels register their own randomized test cases in
``repro.nn.kernels.ORACLE_CASES``; :func:`check_all_kernels` replays them
all, so any new fused op is covered by adding one registration next to its
definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..nn.kernels import use_fused
from ..nn.tensor import Tensor

__all__ = [
    "DiffRow",
    "DiffReport",
    "DivergenceError",
    "max_ulp_diff",
    "max_ulp_diff_in_dtype",
    "compare_arrays",
    "finite_difference_grad",
    "differential_check",
    "assert_equivalent",
    "check_kernel",
    "check_all_kernels",
    "check_infer_kernel",
    "check_all_infer_kernels",
]


class DivergenceError(AssertionError):
    """Raised when two execution paths disagree beyond tolerance."""


def max_ulp_diff(a: np.ndarray, b: np.ndarray) -> float:
    """Maximum ULP (units in the last place) distance between two arrays.

    Uses the monotonic int64 reinterpretation of IEEE-754 doubles, so the
    distance counts representable floats between the values.  Returns
    ``inf`` when NaNs/Infs are present in only one of the arrays (or at
    different positions), and 0 for bitwise-equal arrays.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        return float("inf")
    bad_a = ~np.isfinite(a)
    bad_b = ~np.isfinite(b)
    if bad_a.any() or bad_b.any():
        # NaN/Inf only match when bit-identical in both arrays.
        if (bad_a != bad_b).any() or not np.array_equal(
            a[bad_a].view(np.int64), b[bad_b].view(np.int64)
        ):
            return float("inf")
    mask = np.int64(0x7FFFFFFFFFFFFFFF)
    bits_a = np.ascontiguousarray(a).view(np.int64)
    bits_b = np.ascontiguousarray(b).view(np.int64)
    order_a = np.where(bits_a < 0, bits_a ^ mask, bits_a)
    order_b = np.where(bits_b < 0, bits_b ^ mask, bits_b)
    good = np.isfinite(a)
    if not good.any():
        return 0.0
    order_a, order_b = order_a[good], order_b[good]
    # Same-sign orders subtract exactly in int64 (no overflow possible);
    # opposite signs could overflow, but there the distance is astronomical
    # anyway, so float64 rounding on |a| + |b| is harmless.  Subtracting
    # *before* any float cast is what keeps 1-ULP gaps between large
    # orders (|order| > 2**53) exact.
    same_sign = (order_a >= 0) == (order_b >= 0)
    diff = np.where(
        same_sign,
        np.abs(order_a - order_b).astype(np.float64),
        np.abs(order_a.astype(np.float64)) + np.abs(order_b.astype(np.float64)),
    )
    return float(diff.max())


def max_ulp_diff_in_dtype(
    a: np.ndarray, b: np.ndarray, dtype=np.float32, zero_atol: float = 0.0
) -> float:
    """ULP distance measured in ``dtype`` (both arrays are cast first).

    The inference path computes in float32, so "how many representable
    floats apart" is only meaningful on the float32 grid — measuring the
    float64 distance of a float32 result against a float64 reference would
    count the cast itself as millions of ULPs.

    ``zero_atol`` is the near-zero escape: positions whose *absolute*
    difference is within it are treated as equal.  ULP spacing shrinks
    with magnitude, so an output that cancels toward zero (a centered
    value, a dot product, a recurrent blend crossing sign) can be
    thousands of ULPs from the reference while being ~1e-7 in absolute
    terms; those positions are the atol row's job, not this one's.  A
    structural bug (wrong gate order, dropped mask) produces O(1)
    absolute differences and still registers as astronomical.
    """
    dtype = np.dtype(dtype)
    if dtype == np.dtype(np.float64) and zero_atol == 0.0:
        return max_ulp_diff(a, b)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"unsupported dtype {dtype}")
    a = np.ascontiguousarray(np.asarray(a, dtype=dtype))
    b = np.ascontiguousarray(np.asarray(b, dtype=dtype))
    if a.shape != b.shape:
        return float("inf")
    int_t = np.int32 if dtype == np.dtype(np.float32) else np.int64
    if not (np.isfinite(a).all() and np.isfinite(b).all()):
        same = np.array_equal(a.view(int_t), b.view(int_t))
        return 0.0 if same else float("inf")
    if a.size == 0:
        return 0.0
    sign_mask = int_t(0x7FFFFFFF if int_t is np.int32 else 0x7FFFFFFFFFFFFFFF)
    bits_a = a.view(int_t)
    bits_b = b.view(int_t)
    order_a = np.where(bits_a < 0, bits_a ^ sign_mask, bits_a).astype(np.float64)
    order_b = np.where(bits_b < 0, bits_b ^ sign_mask, bits_b).astype(np.float64)
    diff = np.abs(order_a - order_b)
    if zero_atol > 0.0:
        diff[np.abs(a.astype(np.float64) - b.astype(np.float64)) <= zero_atol] = 0.0
    return float(diff.max())


@dataclass(frozen=True)
class DiffRow:
    """One compared quantity (an output or a gradient) of a divergence check."""

    quantity: str
    shape: tuple[int, ...]
    max_abs_err: float
    max_rel_err: float
    max_ulp: float
    rtol: float
    atol: float
    ok: bool

    def format(self) -> str:
        status = "ok  " if self.ok else "FAIL"
        return (
            f"{status} {self.quantity:<28s} shape={str(self.shape):<14s} "
            f"abs={self.max_abs_err:.3e} rel={self.max_rel_err:.3e} "
            f"ulp={self.max_ulp:.3g} (rtol={self.rtol:g}, atol={self.atol:g})"
        )


@dataclass
class DiffReport:
    """Structured diff produced by :func:`differential_check`."""

    name: str
    rows: list[DiffRow] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(row.ok for row in self.rows)

    @property
    def failures(self) -> list[DiffRow]:
        return [row for row in self.rows if not row.ok]

    @property
    def worst(self) -> DiffRow | None:
        """The failing row with the largest relative error (None if passing)."""
        failures = self.failures
        if not failures:
            return None
        return max(failures, key=lambda row: row.max_rel_err)

    def format(self) -> str:
        header = f"differential check {self.name!r}: " + (
            "PASS" if self.passed else f"{len(self.failures)} divergence(s)"
        )
        return "\n".join([header] + ["  " + row.format() for row in self.rows])


def compare_arrays(
    quantity: str,
    a: np.ndarray | None,
    b: np.ndarray | None,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> DiffRow:
    """Compare two arrays into a :class:`DiffRow` (``None`` matches ``None``)."""
    if a is None or b is None:
        ok = a is None and b is None
        return DiffRow(quantity, (), 0.0 if ok else float("inf"),
                       0.0 if ok else float("inf"),
                       0.0 if ok else float("inf"), rtol, atol, ok)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        return DiffRow(quantity, a.shape, float("inf"), float("inf"),
                       float("inf"), rtol, atol, False)
    abs_err = np.abs(a - b)
    denom = np.maximum(np.maximum(np.abs(a), np.abs(b)), np.finfo(np.float64).tiny)
    with np.errstate(invalid="ignore"):
        rel_err = abs_err / denom
    finite = np.isfinite(a) & np.isfinite(b)
    max_abs = float(abs_err[finite].max()) if finite.any() else 0.0
    max_rel = float(rel_err[finite].max()) if finite.any() else 0.0
    within = abs_err <= atol + rtol * denom
    ok = bool(within[finite].all()) if finite.any() else True
    ulp = max_ulp_diff(a, b)
    if (~finite).any() and ulp == float("inf"):
        ok = False  # NaN/Inf present in one path but not (identically) the other
    return DiffRow(quantity, a.shape, max_abs, max_rel, ulp, rtol, atol, ok)


def finite_difference_grad(
    fn: Callable[..., float],
    arrays: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite differences of scalar ``fn(*arrays)`` wrt ``arrays[index]``."""
    arrays = [np.array(a, dtype=np.float64, copy=True) for a in arrays]
    target = arrays[index]
    grad = np.zeros_like(target)
    flat = target.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*arrays))
        flat[i] = original - eps
        minus = float(fn(*arrays))
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def _run(
    fn: Callable[..., Tensor | tuple[Tensor, ...]],
    arrays: Sequence[np.ndarray],
    fused: bool,
) -> tuple[list[np.ndarray], list[np.ndarray | None]]:
    """Evaluate ``fn`` under one dispatch path; return outputs and grads.

    The scalar objective backpropagated is the sum of all outputs, so a
    single pass yields a comparable gradient for every input.
    """
    tensors = [Tensor(np.array(a, dtype=np.float64, copy=True), requires_grad=True)
               for a in arrays]
    with use_fused(fused):
        out = fn(*tensors)
    outputs = list(out) if isinstance(out, tuple) else [out]
    loss = outputs[0].sum()
    for extra in outputs[1:]:
        loss = loss + extra.sum()
    loss.backward()
    return (
        [np.array(o.data, copy=True) for o in outputs],
        [None if t.grad is None else np.array(t.grad, copy=True) for t in tensors],
    )


def differential_check(
    fn: Callable[..., Tensor | tuple[Tensor, ...]],
    arrays: Sequence[np.ndarray],
    name: str = "fn",
    input_names: Sequence[str] | None = None,
    forward_rtol: float = 0.0,
    forward_atol: float = 0.0,
    grad_rtol: float = 1e-9,
    grad_atol: float = 1e-11,
    fd: bool = True,
    fd_eps: float = 1e-6,
    fd_rtol: float = 1e-3,
    fd_atol: float = 1e-5,
    notape: bool = True,
) -> DiffReport:
    """Run ``fn`` under fused and composed dispatch plus a finite-difference oracle.

    ``fn`` receives one ``Tensor`` per entry of ``arrays`` and returns a
    tensor (or tuple of tensors); the objective compared is the sum of all
    outputs.  Four comparisons feed the report:

    - ``forward[...]`` — fused vs composed output values.  The default
      zero tolerances assert *bitwise* equality, which the fused kernels
      guarantee by construction (DESIGN.md §7);
    - ``grad[...] fused-vs-composed`` — analytic gradients of both paths
      (tight, but not bitwise: backward summation order differs);
    - ``grad[...] fused-vs-fd`` — fused-path gradients against central
      finite differences, an oracle independent of both graph
      implementations (loose: FD truncation error);
    - ``forward[...] tape-vs-notape`` — the taped forward against the same
      forward under ``no_grad`` (the op table's straight-through dispatch).
      Always bitwise: skipping graph construction must not change a single
      computed value.
    """
    input_names = list(input_names) if input_names is not None else [
        f"x{i}" for i in range(len(arrays))
    ]
    report = DiffReport(name)
    fused_out, fused_grads = _run(fn, arrays, fused=True)
    composed_out, composed_grads = _run(fn, arrays, fused=False)
    for i, (a, b) in enumerate(zip(fused_out, composed_out)):
        label = "forward" if len(fused_out) == 1 else f"forward[{i}]"
        report.rows.append(compare_arrays(label, a, b, forward_rtol, forward_atol))
    if notape:
        notape_out, _ = _run_forward_only(fn, arrays)
        for i, (a, b) in enumerate(zip(fused_out, notape_out)):
            label = (
                "forward tape-vs-notape"
                if len(fused_out) == 1
                else f"forward[{i}] tape-vs-notape"
            )
            report.rows.append(compare_arrays(label, a, b, 0.0, 0.0))
    for label, a, b in zip(input_names, fused_grads, composed_grads):
        report.rows.append(
            compare_arrays(f"grad[{label}] fused-vs-composed", a, b,
                           grad_rtol, grad_atol)
        )
    if fd:
        def objective(*raw: np.ndarray) -> float:
            outs, _ = _run_forward_only(fn, raw)
            return sum(float(o.sum()) for o in outs)

        for i, label in enumerate(input_names):
            if fused_grads[i] is None:
                continue
            numeric = finite_difference_grad(objective, arrays, i, eps=fd_eps)
            report.rows.append(
                compare_arrays(f"grad[{label}] fused-vs-fd",
                               fused_grads[i], numeric, fd_rtol, fd_atol)
            )
    return report


def _run_forward_only(
    fn: Callable[..., Tensor | tuple[Tensor, ...]],
    arrays: Sequence[np.ndarray],
) -> tuple[list[np.ndarray], None]:
    """Forward values of ``fn`` on the fused path without building a graph."""
    from ..nn.tensor import no_grad

    tensors = [Tensor(a) for a in arrays]
    with no_grad(), use_fused(True):
        out = fn(*tensors)
    outputs = list(out) if isinstance(out, tuple) else [out]
    return [o.data for o in outputs], None


def assert_equivalent(
    fn: Callable[..., Tensor | tuple[Tensor, ...]],
    arrays: Sequence[np.ndarray],
    name: str = "fn",
    **tolerances,
) -> DiffReport:
    """:func:`differential_check`, raising :class:`DivergenceError` on failure."""
    report = differential_check(fn, arrays, name=name, **tolerances)
    if not report.passed:
        raise DivergenceError(report.format())
    return report


def check_kernel(name: str, seed: int = 0, **tolerances) -> DiffReport:
    """Run the registered oracle case for one fused kernel.

    Cases are registered in ``repro.nn.kernels.ORACLE_CASES`` next to the
    kernels themselves; ``seed`` feeds the case's input generator.
    """
    from ..nn.kernels import ORACLE_CASES

    if name not in ORACLE_CASES:
        raise KeyError(
            f"no oracle case registered for {name!r}; "
            f"known: {sorted(ORACLE_CASES)}"
        )
    fn, arrays, input_names = ORACLE_CASES[name](np.random.default_rng(seed))
    return differential_check(
        fn, arrays, name=name, input_names=input_names, **tolerances
    )


def check_all_kernels(seed: int = 0, **tolerances) -> dict[str, DiffReport]:
    """Replay every registered kernel oracle case; returns reports by name."""
    from ..nn.kernels import ORACLE_CASES

    return {
        name: check_kernel(name, seed=seed, **tolerances)
        for name in sorted(ORACLE_CASES)
    }


def check_infer_kernel(
    name: str,
    seed: int = 0,
    rtol: float = 1e-5,
    atol: float = 1e-6,
    ulp_budget: float = 256.0,
) -> DiffReport:
    """Replay one inference-twin case against the float64 tape reference.

    Cases are registered in ``repro.nn.inference.INFER_CASES`` next to the
    kernels themselves.  Two rows per case:

    - ``infer-vs-tape`` — the fast-path output (cast back to float64)
      against the tape reference under explicit rtol/atol budgets.  The
      defaults assume float32: ~100x float32 eps of headroom at O(1)
      magnitudes;
    - ``infer-vs-tape (ulp)`` — ULP distance on the inference-dtype grid
      (:func:`max_ulp_diff_in_dtype`), applied only where the absolute
      difference exceeds a few dtype eps.  ULP spacing shrinks with
      magnitude, so outputs that cancel toward zero (dot products,
      centered values, recurrent blends crossing sign) land thousands of
      ULPs out while being ~1e-7 absolute; the near-zero escape hands
      those positions to the atol row and keeps this row's budget tight
      enough that a structural bug — wrong gate order, dropped mask,
      which produce O(1) absolute differences — cannot hide.
    """
    from ..nn import inference

    if name not in inference.INFER_CASES:
        raise KeyError(
            f"no inference-twin case registered for {name!r}; "
            f"known: {sorted(inference.INFER_CASES)}"
        )
    build = inference.INFER_CASES[name]
    reference_fn, infer_fn, arrays, _ = build(np.random.default_rng(seed))
    dtype = inference.infer_dtype()
    reference = reference_fn(
        *[np.array(a, dtype=np.float64, copy=True) for a in arrays]
    )
    fast = infer_fn(*[np.asarray(a).astype(dtype) for a in arrays])
    report = DiffReport(f"{name} (dispatch=infer, {dtype})")
    report.rows.append(
        compare_arrays("infer-vs-tape", np.asarray(fast, dtype=np.float64),
                       np.asarray(reference), rtol, atol)
    )
    # Escape floor below the magnitude row's own atol: any position it
    # excuses is already bounded tighter by the rtol/atol row above.
    zero_atol = float(16 * np.finfo(dtype).eps)
    ulp = max_ulp_diff_in_dtype(reference, fast, dtype, zero_atol=zero_atol)
    report.rows.append(
        DiffRow(
            "infer-vs-tape (ulp)",
            np.asarray(reference).shape,
            0.0,
            0.0,
            ulp,
            0.0,
            ulp_budget,  # atol column doubles as the ULP budget here
            ulp <= ulp_budget,
        )
    )
    return report


# Per-kernel ULP budgets (over the near-zero escape in
# :func:`check_infer_kernel`).  The default covers honest float32
# rounding through a handful of dependent operations; the recurrent
# scans accumulate rounding across every timestep *and* feed each step's
# rounded hidden state back into the next, so their drift compounds —
# still orders of magnitude below the millions of ULPs a structural bug
# produces.
INFER_ULP_DEFAULT_BUDGET = 256.0
INFER_ULP_BUDGETS: dict[str, float] = {
    "lstm_scan_fused": 4096.0,
    "gru_scan_fused": 4096.0,
}


def check_all_infer_kernels(seed: int = 0, **budgets) -> dict[str, DiffReport]:
    """Replay every inference-twin case; returns reports by name.

    Also asserts coverage: every fused kernel in ``ORACLE_CASES`` must have
    an inference twin, so adding a fused kernel without one fails loudly.
    """
    from ..nn import inference
    from ..nn.kernels import ORACLE_CASES

    missing = sorted(set(ORACLE_CASES) - set(inference.INFER_CASES))
    if missing:
        raise KeyError(
            f"fused kernels without an inference-twin case: {missing}; "
            "register one with repro.nn.inference.register_infer_case"
        )
    reports = {}
    for name in sorted(inference.INFER_CASES):
        kwargs = dict(budgets)
        kwargs.setdefault(
            "ulp_budget", INFER_ULP_BUDGETS.get(name, INFER_ULP_DEFAULT_BUDGET)
        )
        reports[name] = check_infer_kernel(name, seed=seed, **kwargs)
    return reports
