"""``repro.testing`` — reusable correctness layer for the RAPID stack.

The fused recurrent kernels (PR 2) and every future hot-path rewrite carry
hand-derived backward passes; a silent sign error or NaN there corrupts
every downstream table without failing any assertion.  This package gives
the test suite, the benchmarks, and future PRs one shared vocabulary for
catching such bugs automatically:

- :mod:`repro.testing.oracle` — differential-testing engine: run any
  function/Module under the fused and composed (``REPRO_NN_FUSED=0``)
  dispatch paths plus a central finite-difference oracle, and report
  max-ulp / relative-error divergence as a structured diff;
- :mod:`repro.testing.fuzz` — autograd fuzzer: seeded random programs over
  the Tensor op vocabulary (broadcasting, slicing, reductions, the fused
  recurrent kernels) with greedy shrinking to a minimal reproducing
  program (``python -m repro.testing.fuzz --smoke``);
- :mod:`repro.testing.sanitize` — opt-in numerical sanitizer hooked at the
  same op-dispatch surface as the ``repro.obs`` profiler: traps NaN / Inf
  / denormal outputs and out-of-range gradients mid-graph with the
  originating op and shapes (``assert_finite()``,
  ``assert_deterministic(seed)``);
- :mod:`repro.testing.golden` — golden-slate regression store: snapshot
  re-ranker outputs (permutations + scores) to ``tests/golden/*.json``
  with tolerance-aware comparison and a ``--update-golden`` pytest flag.

See ``TESTING.md`` at the repo root for the test tiers and workflows.
"""

from .golden import GoldenMismatch, GoldenStore, MissingGolden
from .oracle import (
    DiffReport,
    DiffRow,
    DivergenceError,
    assert_equivalent,
    check_all_kernels,
    check_kernel,
    compare_arrays,
    differential_check,
    finite_difference_grad,
    max_ulp_diff,
)
from .sanitize import (
    NumericalError,
    assert_deterministic,
    assert_finite,
    disable_sanitizer,
    enable_sanitizer,
    is_sanitizer_enabled,
    sanitize,
)

__all__ = [
    "DiffReport",
    "DiffRow",
    "DivergenceError",
    "GoldenMismatch",
    "GoldenStore",
    "MissingGolden",
    "NumericalError",
    "assert_deterministic",
    "assert_equivalent",
    "assert_finite",
    "check_all_kernels",
    "check_kernel",
    "compare_arrays",
    "differential_check",
    "disable_sanitizer",
    "enable_sanitizer",
    "finite_difference_grad",
    "is_sanitizer_enabled",
    "max_ulp_diff",
    "sanitize",
]
