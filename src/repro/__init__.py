"""Reproduction of "Personalized Diversification for Neural Re-ranking in
Recommendation" (RAPID, ICDE 2023).

Public API highlights
---------------------
- :mod:`repro.core` — the RAPID model (deterministic & probabilistic heads)
  and its trainer.
- :mod:`repro.rerank` — the ten baseline re-rankers of the paper.
- :mod:`repro.rankers` — DIN / SVMRank / LambdaMART initial rankers.
- :mod:`repro.data` — synthetic Taobao / MovieLens / App Store dataset
  builders (see DESIGN.md for the substitution rationale).
- :mod:`repro.click` — the Dependent Click Model simulator/estimator.
- :mod:`repro.metrics` — click@k, ndcg@k, div@k, satis@k, rev@k.
- :mod:`repro.theory` — linear RAPID bandit + regret analysis (Theorem 5.1).
- :mod:`repro.nn` — the from-scratch autograd / neural-net substrate.
- :mod:`repro.obs` — metrics registry, span tracing, JSONL run logs, and
  the autograd op profiler (``python -m repro.obs.report run.jsonl``).
- :mod:`repro.resilience` — chaos fault injection, durable
  checkpoint/resume for training, retry with backoff for data I/O, and
  the graceful-degradation ``ResilientReranker`` serving wrapper.
- :mod:`repro.serve` — the online layer: batched multi-tenant rerank
  service with request coalescing, slate cache with TTL + invalidation,
  admission control, and a closed-loop Zipfian load generator.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
