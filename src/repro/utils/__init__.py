"""Shared utilities: RNG management, timing, validation."""

from .rng import make_rng, spawn_rngs
from .timer import Stopwatch, Timings
from .validation import check_in_range, check_positive, check_probability_matrix

__all__ = [
    "Stopwatch",
    "Timings",
    "check_in_range",
    "check_positive",
    "check_probability_matrix",
    "make_rng",
    "spawn_rngs",
]
