"""Crash-safe file writes: temp file + fsync + atomic rename, with checksums.

POSIX ``rename(2)`` within one filesystem is atomic: readers see either the
old file or the complete new file, never a torn hybrid.  Every durable
artifact in this repo (datasets in ``repro.data.io``, module archives in
``repro.nn.serialization``, training checkpoints in
``repro.resilience.checkpoint``) funnels through :func:`atomic_write_bytes`
so that a crash mid-save — simulated by the chaos harness, delivered for
real by OOM killers — can never destroy the previous good copy.

Checksum sidecars (``<file>.sha256``) let loaders distinguish "file the
writer finished" from "bytes that happen to unzip": see
:func:`write_checksum_sidecar` / :func:`verify_checksum_sidecar`.
"""

from __future__ import annotations

import hashlib
import io
import os
import tempfile
from pathlib import Path

import numpy as np

__all__ = [
    "atomic_write_bytes",
    "atomic_savez",
    "sha256_of_file",
    "checksum_sidecar_path",
    "write_checksum_sidecar",
    "verify_checksum_sidecar",
]


def atomic_write_bytes(path: str | Path, payload: bytes, fsync: bool = True) -> Path:
    """Write ``payload`` to ``path`` atomically; returns the path.

    The bytes go to a temporary file in the same directory (same
    filesystem, so the final ``os.replace`` is a true atomic rename), are
    flushed and optionally ``fsync``-ed, and only then renamed over the
    destination.  On any failure the temp file is removed and the original
    ``path`` — if it existed — is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_directory(path.parent)
    return path


def _fsync_directory(directory: Path) -> None:
    """Flush the directory entry so the rename itself survives a crash."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fsync
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(dir_fd)


def atomic_savez(
    path: str | Path,
    arrays: dict[str, np.ndarray],
    fsync: bool = True,
    checksum: bool = False,
) -> Path:
    """``np.savez`` through :func:`atomic_write_bytes`.

    The archive is built in memory first, so a crash at any point leaves
    either the previous file or the complete new one.  With ``checksum``
    a ``<path>.sha256`` sidecar is written (after the data file, so a
    crash between the two is detected as a stale sidecar, not silent
    corruption).
    """
    path = Path(path)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    atomic_write_bytes(path, buffer.getvalue(), fsync=fsync)
    if checksum:
        write_checksum_sidecar(path, fsync=fsync)
    return path


def sha256_of_file(path: str | Path, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 digest of a file's contents."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        while chunk := handle.read(chunk_size):
            digest.update(chunk)
    return digest.hexdigest()


def checksum_sidecar_path(path: str | Path) -> Path:
    path = Path(path)
    return path.with_name(path.name + ".sha256")


def write_checksum_sidecar(path: str | Path, fsync: bool = True) -> Path:
    """Write ``<path>.sha256`` holding the file's digest (atomically)."""
    path = Path(path)
    line = f"{sha256_of_file(path)}  {path.name}\n"
    return atomic_write_bytes(
        checksum_sidecar_path(path), line.encode("ascii"), fsync=fsync
    )


def verify_checksum_sidecar(path: str | Path) -> bool | None:
    """Check ``path`` against its sidecar.

    Returns ``True`` (digest matches), ``False`` (mismatch — the file or
    the sidecar is corrupt/stale), or ``None`` when no sidecar exists.
    """
    sidecar = checksum_sidecar_path(path)
    if not sidecar.exists():
        return None
    recorded = sidecar.read_text(encoding="ascii", errors="replace").split()
    if not recorded:
        return False
    return recorded[0] == sha256_of_file(path)
