"""Input validation helpers shared across the library."""

from __future__ import annotations

import numpy as np

__all__ = ["check_probability_matrix", "check_positive", "check_in_range"]


def check_probability_matrix(tau: np.ndarray, name: str = "tau") -> np.ndarray:
    """Validate a topic-coverage matrix: entries must lie in [0, 1]."""
    tau = np.asarray(tau, dtype=np.float64)
    if tau.ndim != 2:
        raise ValueError(f"{name} must be 2-D (items x topics), got ndim={tau.ndim}")
    if np.any(tau < -1e-9) or np.any(tau > 1.0 + 1e-9):
        raise ValueError(f"{name} entries must be probabilities in [0, 1]")
    return np.clip(tau, 0.0, 1.0)


def check_positive(value: float, name: str) -> float:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_in_range(value: float, low: float, high: float, name: str) -> float:
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value
