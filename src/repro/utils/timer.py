"""Wall-clock timing utilities used by the efficiency study (Table VI)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "Timings"]


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class Timings:
    """Accumulates per-batch timings; reports mean milliseconds."""

    samples: list[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        self.samples.append(seconds)

    @property
    def total_seconds(self) -> float:
        return sum(self.samples)

    @property
    def mean_ms(self) -> float:
        if not self.samples:
            return 0.0
        return 1000.0 * sum(self.samples) / len(self.samples)
