"""Wall-clock timing utilities used by the efficiency study (Table VI).

Both classes are thin shims over ``repro.obs``: new code should record
straight into the metrics registry (``get_registry().histogram(...)``) or
open spans with ``repro.obs.trace``; :class:`Timings` remains for the
pre-observability call sites (``train_rapid(..., timings=...)`` and the
neural baselines) and is now backed by an observability
:class:`~repro.obs.metrics.Histogram`, which is where ``p95`` comes from.
"""

from __future__ import annotations

import time

from ..obs.metrics import Histogram

__all__ = ["Stopwatch", "Timings"]


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds.

    Re-entrant: instances can be reused sequentially and nested —
    each ``with`` level times its own region, and ``elapsed`` always holds
    the most recently exited level's duration.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._starts: list[float] = []

    def __enter__(self) -> "Stopwatch":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._starts:
            raise RuntimeError("Stopwatch.__exit__ without matching __enter__")
        self.elapsed = time.perf_counter() - self._starts.pop()


class Timings:
    """Accumulates per-batch timings (seconds in, milliseconds out).

    Thin shim over an observability histogram; pass ``histogram`` to share
    a registry-backed series, e.g.
    ``Timings(get_registry().histogram("train.batch_ms"))`` — note shared
    histograms store milliseconds, which is also what :meth:`add` records.
    """

    def __init__(self, histogram: Histogram | None = None) -> None:
        self._hist = histogram if histogram is not None else Histogram("timings")

    def add(self, seconds: float) -> None:
        self._hist.observe(1000.0 * seconds)

    @property
    def samples(self) -> list[float]:
        """Observed durations in seconds (pre-shim API)."""
        return [ms / 1000.0 for ms in self._hist._sorted]

    @property
    def total_seconds(self) -> float:
        return self._hist.sum / 1000.0

    @property
    def mean_ms(self) -> float:
        return self._hist.mean

    @property
    def p95(self) -> float:
        """95th-percentile duration in milliseconds (matches ``mean_ms``)."""
        return self._hist.p95
