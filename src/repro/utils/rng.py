"""Seeded random-generator helpers for reproducible experiments."""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator; pass through if one is given already."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed."""
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
