"""``repro.resilience`` — fault injection, durable checkpoints, serving guards.

Four cooperating pieces (each usable alone):

- :mod:`repro.resilience.chaos` — deterministic, seeded fault injection at
  named fault points planted through trainer / data I/O / rerank / eval
  (``faultpoint("data.load")``), with exception, latency-spike, and
  NaN-poisoning fault kinds; inert and near-zero-cost when disarmed;
- :mod:`repro.resilience.checkpoint` — durable training checkpoints
  (atomic write + SHA-256 sidecar + keep-last-k rotation + corrupt-file
  quarantine) that resume a killed ``train_rapid`` run bit-identically;
- :mod:`repro.resilience.retry` — generic retry with exponential backoff,
  decorrelated jitter, retryable-vs-fatal classification, and deadline
  budgets (applied to ``repro.data.io``);
- :mod:`repro.resilience.degrade` — :class:`ResilientReranker`: per-stage
  deadline, circuit breaker, and a RAPID → MMR → passthrough fallback
  chain so serving always returns a valid slate.

All failures raise subclasses of :class:`ResilienceError` (plus the typed
:class:`~repro.nn.serialization.CheckpointCorruptError` for unreadable
archives), and everything reports through ``repro.obs``
(``resilience.faults`` / ``resilience.retries`` / ``resilience.fallbacks``
/ ``resilience.breaker_state``).  See DESIGN.md §8.

``degrade`` is loaded lazily (PEP 562): it subclasses
:class:`repro.rerank.base.Reranker`, and ``rerank.base`` itself imports
:func:`faultpoint` from this package — eager loading would be a cycle.
"""

from __future__ import annotations

from ..nn.serialization import CheckpointCorruptError
from .chaos import (
    ChaosPlan,
    FaultSpec,
    chaos,
    chaos_active,
    clear_chaos,
    faultpoint,
    install_chaos,
)
from .checkpoint import (
    CheckpointConfig,
    CheckpointManager,
    TrainingCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from .errors import (
    CircuitOpenError,
    DeadlineExceeded,
    InjectedFault,
    ResilienceError,
    RetryBudgetExceeded,
)
from .retry import DEFAULT_IO_POLICY, RetryPolicy, call_with_retry, retry

__all__ = [
    "ChaosPlan",
    "CheckpointConfig",
    "CheckpointCorruptError",
    "CheckpointManager",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceeded",
    "DEFAULT_IO_POLICY",
    "FaultSpec",
    "InjectedFault",
    "ResilienceError",
    "ResilientReranker",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "TrainingCheckpoint",
    "call_with_retry",
    "chaos",
    "chaos_active",
    "clear_chaos",
    "default_fallback_chain",
    "faultpoint",
    "install_chaos",
    "load_checkpoint",
    "retry",
    "save_checkpoint",
]

_LAZY_DEGRADE = ("ResilientReranker", "CircuitBreaker", "default_fallback_chain")


def __getattr__(name: str):
    if name in _LAZY_DEGRADE or name == "degrade":
        import importlib

        degrade = importlib.import_module(".degrade", __name__)
        if name == "degrade":
            return degrade
        return getattr(degrade, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY_DEGRADE))
