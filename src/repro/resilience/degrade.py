"""Graceful-degradation serving: deadlines, circuit breaking, fallbacks.

Production re-rankers (PRM at Taobao, Huawei's live diversified re-ranker)
run behind strict latency budgets: when the neural model is slow, broken,
or numerically unstable, the surrounding system must still answer every
request with *some* valid slate.  :class:`ResilientReranker` wraps any
:class:`~repro.rerank.base.Reranker` with exactly that contract:

- **deadline** — a wall-clock budget applied to each stage; a stage whose
  answer arrives after the budget counts as a failure and the next stage
  serves (Python can't preempt a running call, so the overrun is detected
  on return — the degraded answer is deterministic either way).  Each
  fallback stage gets a fresh budget: the cheap stages exist precisely to
  answer after the primary has burned its slice, so the end-to-end tail
  is bounded by ``deadline_ms`` per stage, and repeated primary overruns
  open the breaker so later requests skip the slow stage entirely;
- **circuit breaker** — after ``failure_threshold`` consecutive primary
  failures the breaker *opens* and requests skip straight to the fallback
  (no doomed primary calls); after ``recovery_seconds`` it goes
  *half-open* and lets one probe through, closing again on success;
- **fallback chain** — RAPID → MMR → initial-ranking passthrough by
  default.  The final passthrough cannot fail, so ``rerank`` always
  returns a valid permutation.

Every stage's answer is validated (shape + per-row permutation) before
being served, so a buggy model returning garbage degrades instead of
propagating.  Telemetry: ``resilience.requests{reranker=}`` /
``resilience.fallbacks{reranker=,to=,reason=}`` counters, the
``resilience.breaker_state{breaker=}`` gauge (0 closed, 1 half-open,
2 open), and ``degrade.fallback`` / ``breaker.transition`` run-log events.
"""

from __future__ import annotations

import time

import numpy as np

from ..nn import inference as _nn_inference
from ..nn.module import Module as _NNModule
from ..obs import get_registry, get_run_logger
from ..obs import windows as _windows
from ..rerank.base import Reranker
from .errors import CircuitOpenError, DeadlineExceeded

__all__ = [
    "CircuitBreaker",
    "ResilientReranker",
    "default_fallback_chain",
    "BREAKER_STATE_CODES",
]

BREAKER_STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}


class CircuitBreaker:
    """Classic closed → open → half-open breaker over consecutive failures.

    The clock is injectable (``clock=time.monotonic``) so the state
    machine is unit-testable without sleeping.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_seconds: float = 30.0,
        half_open_successes: int = 1,
        name: str = "primary",
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1 or half_open_successes < 1:
            raise ValueError("thresholds must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.half_open_successes = half_open_successes
        self.name = name
        self._clock = clock
        self._state = "closed"
        self._consecutive_failures = 0
        self._half_open_successes_seen = 0
        self._opened_at = 0.0
        self._publish()

    @property
    def state(self) -> str:
        """Current state, applying the open → half-open timeout."""
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.recovery_seconds
        ):
            self._transition("half_open")
        return self._state

    def allow(self) -> bool:
        """May the guarded call proceed right now?"""
        return self.state != "open"

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state == "half_open":
            self._half_open_successes_seen += 1
            if self._half_open_successes_seen >= self.half_open_successes:
                self._transition("closed")

    def record_failure(self) -> None:
        state = self.state
        if state == "half_open":
            self._transition("open")
            return
        self._consecutive_failures += 1
        if state == "closed" and self._consecutive_failures >= self.failure_threshold:
            self._transition("open")

    def _transition(self, new_state: str) -> None:
        old_state, self._state = self._state, new_state
        if new_state == "open":
            self._opened_at = self._clock()
        if new_state == "half_open":
            self._half_open_successes_seen = 0
        if new_state == "closed":
            self._consecutive_failures = 0
        self._publish()
        logger = get_run_logger()
        if logger.active:
            logger.log(
                "breaker.transition",
                breaker=self.name,
                old=old_state,
                new=new_state,
            )

    def _publish(self) -> None:
        get_registry().gauge("resilience.breaker_state", breaker=self.name).set(
            BREAKER_STATE_CODES[self._state]
        )


def _invalidate_stage_caches(stage) -> None:
    """Drop tape-free weight-cast caches on every Module a stage holds.

    The inference path (:mod:`repro.nn.inference`) keys its float32 weight
    casts on the *identity* of each parameter array, so rebinding
    invalidates automatically — but in-place mutation does not (the PR 8
    staleness window).  Serving swaps models mid-flight, exactly where
    that window bites, so the swap path sweeps each stage's Modules
    (``RapidReranker.model``, ``NeuralReranker.network``, ...) and
    invalidates explicitly.
    """
    if isinstance(stage, _NNModule):
        _nn_inference.invalidate_caches(stage)
    for value in vars(stage).values():
        if isinstance(value, _NNModule):
            _nn_inference.invalidate_caches(value)


def default_fallback_chain(tradeoff: float = 0.8) -> "list[Reranker]":
    """The serving default: greedy MMR, then initial-order passthrough.

    (The passthrough is implicit — :class:`ResilientReranker` always
    appends it — so this returns just the MMR stage.)
    """
    from ..rerank.mmr import MMRReranker  # deferred: avoids import cycle

    return [MMRReranker(tradeoff=tradeoff)]


class _Passthrough(Reranker):
    """Terminal fallback: serve the initial ranking unchanged."""

    name = "passthrough"

    def rerank(self, batch) -> np.ndarray:
        return np.tile(np.arange(batch.list_length), (batch.batch_size, 1))


class ResilientReranker(Reranker):
    """A re-ranker that always answers: deadline + breaker + fallbacks.

    Parameters
    ----------
    primary:
        The model being protected (e.g. a trained ``RapidReranker``).
    fallbacks:
        Ordered degraded stages tried after the primary; defaults to
        :func:`default_fallback_chain`.  An initial-order passthrough is
        always appended as the unfailable last resort.
    deadline_ms:
        Per-stage wall-clock budget; ``None`` disables deadline
        enforcement.
    breaker:
        Circuit breaker guarding the primary (a default one is built when
        omitted).
    slo_monitor:
        Optional :class:`~repro.obs.slo.SLOMonitor` (see
        :func:`~repro.obs.slo.serving_slo`).  When present, every request
        records its end-to-end latency — with "degraded to a fallback"
        counted as a bad event — and the monitor's burn rates are
        re-evaluated per request, publishing ``obs.slo.*`` gauges and
        alert events.
    """

    def __init__(
        self,
        primary: Reranker,
        fallbacks: "list[Reranker] | None" = None,
        deadline_ms: float | None = 50.0,
        breaker: CircuitBreaker | None = None,
        clock=time.perf_counter,
        slo_monitor=None,
    ) -> None:
        self.primary = primary
        primary_name = getattr(primary, "name", None) or type(primary).__name__
        self.name = f"resilient-{primary_name}"
        self.fallbacks = (
            list(fallbacks) if fallbacks is not None else default_fallback_chain()
        )
        self.deadline_ms = deadline_ms
        self.breaker = (
            breaker if breaker is not None else CircuitBreaker(name=primary_name)
        )
        self._clock = clock
        self.slo_monitor = slo_monitor
        self.requires_training = getattr(primary, "requires_training", False) or any(
            getattr(f, "requires_training", False) for f in self.fallbacks
        )

    def fit(self, requests, catalog, population, histories) -> "ResilientReranker":
        """Fit the primary and any trainable fallbacks."""
        for stage in [self.primary, *self.fallbacks]:
            if getattr(stage, "requires_training", False):
                stage.fit(requests, catalog, population, histories)
        return self

    def score_batch(self, batch) -> np.ndarray:
        return self.primary.score_batch(batch)

    def warmup(self, batch) -> None:
        """Pre-build the tape-free path's weight caches (best effort).

        The inference path (``repro.nn.inference``) casts — and for the
        recurrent cells gate-reorders — each stage's weights on first use.
        Running one throwaway rerank per stage here keeps that one-time
        cost out of the first deadline-bounded request.
        """
        for stage in [self.primary, *self.fallbacks]:
            try:
                stage.rerank(batch)
            except Exception:  # noqa: BLE001 - warmup must never fail serving
                continue

    def swap_primary(self, new_primary: Reranker) -> Reranker:
        """Swap the protected model mid-flight; returns the old primary.

        Serving uses this for zero-downtime model rollout.  Both the old
        and the new primary get their tape-free weight-cast caches
        invalidated (:func:`repro.nn.inference.invalidate_caches`): the
        identity-keyed caches only self-invalidate on *rebind*, so a model
        whose parameters were updated in place — or swapped out and later
        swapped back — would otherwise serve stale float32 casts.  The
        wrapper's name follows the new primary (fresh metric series); the
        breaker keeps its state — an open breaker still half-open-probes
        the new model on schedule rather than trusting it blindly.
        """
        old = self.primary
        _invalidate_stage_caches(old)
        _invalidate_stage_caches(new_primary)
        self.primary = new_primary
        primary_name = (
            getattr(new_primary, "name", None) or type(new_primary).__name__
        )
        self.name = f"resilient-{primary_name}"
        get_registry().counter(
            "resilience.primary_swaps", reranker=self.name
        ).inc()
        logger = get_run_logger()
        if logger.active:
            logger.log(
                "degrade.swap_primary",
                reranker=self.name,
                old=getattr(old, "name", None) or type(old).__name__,
                new=primary_name,
            )
        return old

    # ------------------------------------------------------------------
    # Serving path
    # ------------------------------------------------------------------
    def rerank(self, batch) -> np.ndarray:
        request_start = self._clock()
        result, degraded = self._serve(batch)
        if self.slo_monitor is not None or _windows.windowed_enabled():
            elapsed_ms = 1000.0 * (self._clock() - request_start)
            _windows.observe("resilience.request_ms", elapsed_ms, reranker=self.name)
            _windows.mark("resilience.request_rate", reranker=self.name)
            if degraded:
                _windows.mark("resilience.degraded_rate", reranker=self.name)
            if self.slo_monitor is not None:
                self.slo_monitor.record(latency_ms=elapsed_ms, error=degraded)
                self.slo_monitor.evaluate()
        return result

    def _serve(self, batch) -> "tuple[np.ndarray, bool]":
        """The stage cascade; returns the slate plus whether it degraded."""
        registry = get_registry()
        registry.counter("resilience.requests", reranker=self.name).inc()
        stages = [self.primary, *self.fallbacks, _Passthrough()]
        failure: "tuple[str, str] | None" = None  # (stage name, reason)
        for index, stage in enumerate(stages):
            stage_name = getattr(stage, "name", None) or type(stage).__name__
            is_primary = index == 0
            if failure is not None:
                registry.counter(
                    "resilience.fallbacks",
                    reranker=self.name,
                    to=stage_name,
                    reason=failure[1],
                ).inc()
                logger = get_run_logger()
                if logger.active:
                    logger.log(
                        "degrade.fallback",
                        reranker=self.name,
                        failed_stage=failure[0],
                        next_stage=stage_name,
                        reason=failure[1],
                    )
                failure = None
            if is_primary and not self.breaker.allow():
                failure = (stage_name, "breaker_open")
                continue
            try:
                started = self._clock()
                result = stage.rerank(batch)
                self._check_deadline(stage_name, started)
                self._validate(stage_name, result, batch)
            except Exception as error:  # noqa: BLE001 - degradation boundary
                if is_primary:
                    self.breaker.record_failure()
                failure = (stage_name, type(error).__name__)
                continue
            if is_primary:
                self.breaker.record_success()
            return result, not is_primary
        raise AssertionError("unreachable: passthrough cannot fail")

    def _check_deadline(self, stage_name: str, started: float) -> None:
        if self.deadline_ms is None:
            return
        elapsed_ms = 1000.0 * (self._clock() - started)
        if elapsed_ms > self.deadline_ms:
            raise DeadlineExceeded(stage_name, self.deadline_ms, elapsed_ms)

    @staticmethod
    def _validate(stage_name: str, result, batch) -> None:
        result = np.asarray(result)
        expected = (batch.batch_size, batch.list_length)
        if result.shape != expected:
            raise ValueError(
                f"{stage_name} returned shape {result.shape}, expected {expected}"
            )
        reference = np.arange(batch.list_length)
        if not (np.sort(result, axis=1) == reference).all():
            raise ValueError(f"{stage_name} returned a non-permutation slate")
