"""Classified error taxonomy for the resilience subsystem.

Every failure the resilience layer produces — injected faults, exhausted
retry budgets, blown deadlines, open circuit breakers — derives from
:class:`ResilienceError`, so callers (and the chaos property tests) can
assert the invariant "a run either completes or fails *classified*, never
silently wrong" with a single ``except ResilienceError``.
"""

from __future__ import annotations

__all__ = [
    "ResilienceError",
    "InjectedFault",
    "RetryBudgetExceeded",
    "DeadlineExceeded",
    "CircuitOpenError",
]


class ResilienceError(RuntimeError):
    """Base class for every classified failure of the resilience layer."""


class InjectedFault(ResilienceError):
    """An exception fired by the chaos harness at a named fault point."""

    def __init__(self, site: str, message: str = "") -> None:
        self.site = site
        super().__init__(message or f"injected fault at {site!r}")


class RetryBudgetExceeded(ResilienceError):
    """All retry attempts (or the retry deadline) were spent.

    ``__cause__`` carries the final underlying error; ``attempts`` and
    ``elapsed`` describe the budget that was consumed.
    """

    def __init__(self, site: str, attempts: int, elapsed: float) -> None:
        self.site = site
        self.attempts = attempts
        self.elapsed = elapsed
        super().__init__(
            f"retry budget exhausted at {site!r} after {attempts} attempt(s) "
            f"in {elapsed:.3f}s"
        )


class DeadlineExceeded(ResilienceError):
    """A per-request deadline elapsed before the operation finished."""

    def __init__(self, site: str, deadline_ms: float, elapsed_ms: float) -> None:
        self.site = site
        self.deadline_ms = deadline_ms
        self.elapsed_ms = elapsed_ms
        super().__init__(
            f"{site!r} took {elapsed_ms:.1f} ms, over the "
            f"{deadline_ms:.1f} ms deadline"
        )


class CircuitOpenError(ResilienceError):
    """A call was refused because its circuit breaker is open."""

    def __init__(self, breaker: str) -> None:
        self.breaker = breaker
        super().__init__(f"circuit breaker {breaker!r} is open")
