"""Durable training checkpoints with atomic writes and corruption recovery.

A checkpoint captures everything :func:`repro.core.trainer.train_rapid`
needs to continue a killed run **bit-identically**: model parameters, the
optimizer's slot buffers and step count, the training noise generator's
bit-generator state, the last completed epoch, and the per-epoch loss
history.  Batch order needs no state — the trainer shuffles with
``seed + epoch``, so it is a pure function of the epoch index.

Durability contract (see DESIGN.md §8):

- every write goes through :func:`repro.utils.atomicio.atomic_savez`
  (temp file + fsync + atomic rename) — a crash mid-save leaves the
  previous checkpoint intact, never a torn file;
- each archive gets a SHA-256 sidecar (``<file>.sha256``); loading
  verifies it and raises
  :class:`~repro.nn.serialization.CheckpointCorruptError` on mismatch;
- :class:`CheckpointManager` keeps the last ``keep_last`` epochs and, on
  restore, **quarantines** a corrupt latest file (renamed to
  ``*.corrupt``) and falls back to the newest intact predecessor.

Usage::

    config = CheckpointConfig(directory=run_dir, keep_last=3)
    losses = train_rapid(model, ..., checkpoint=config)   # saves per epoch
    # kill -9 mid-run, then call train_rapid identically: it resumes from
    # the newest intact checkpoint and the returned loss curve is
    # bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import re
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..nn.module import Module
from ..nn.optim import Optimizer
from ..nn.serialization import FORMAT_VERSION, VERSION_KEY, CheckpointCorruptError
from ..utils.atomicio import (
    atomic_savez,
    checksum_sidecar_path,
    verify_checksum_sidecar,
)
from .chaos import faultpoint
from .errors import InjectedFault
from .retry import RetryPolicy, call_with_retry

__all__ = [
    "CheckpointConfig",
    "TrainingCheckpoint",
    "CheckpointManager",
    "save_checkpoint",
    "load_checkpoint",
    "SAVE_RETRY_POLICY",
]

_CKPT_PATTERN = re.compile(r"^ckpt_(\d{6})\.npz$")


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often the trainer checkpoints."""

    directory: str | Path
    every_epochs: int = 1
    keep_last: int = 3
    fsync: bool = True

    def __post_init__(self) -> None:
        if self.every_epochs < 1:
            raise ValueError("every_epochs must be >= 1")
        if self.keep_last < 1:
            raise ValueError("keep_last must be >= 1")


@dataclass
class TrainingCheckpoint:
    """One restorable training snapshot."""

    epoch: int  # last *completed* epoch (0-based)
    losses: list[float] = field(default_factory=list)
    model_state: dict[str, np.ndarray] = field(default_factory=dict)
    optimizer_state: dict = field(default_factory=dict)
    rng_state: dict | None = None
    extra: dict[str, np.ndarray] = field(default_factory=dict)


#: Retry policy around the checkpoint's atomic write: transient filesystem
#: errors (and injected ``checkpoint.save`` faults) are retried with
#: decorrelated jitter so a flaky disk doesn't kill a multi-hour run;
#: :class:`CheckpointCorruptError` is fatal — retrying cannot make a
#: malformed payload well-formed.
SAVE_RETRY_POLICY = RetryPolicy(
    max_attempts=3,
    base_delay=0.02,
    max_delay=0.5,
    retryable=(OSError, TimeoutError, InjectedFault),
    fatal=(CheckpointCorruptError,),
)


def save_checkpoint(
    path: str | Path,
    *,
    model: Module,
    optimizer: Optimizer,
    epoch: int,
    losses: "list[float]",
    rng: np.random.Generator | None = None,
    fsync: bool = True,
    extra: "dict[str, np.ndarray] | None" = None,
    retry_policy: RetryPolicy = SAVE_RETRY_POLICY,
    sleep=time.sleep,
) -> Path:
    """Write one checkpoint archive + checksum sidecar atomically.

    The write is retried under ``retry_policy`` (see
    :data:`SAVE_RETRY_POLICY`); the archive bytes are assembled once, so a
    retry re-runs only the atomic write itself.  ``extra`` arrays are
    stored under ``extra/<key>`` and come back on
    :attr:`TrainingCheckpoint.extra` — the dist trainer keeps per-worker
    identity (rank, world size, RNG stream) there.
    """
    arrays: dict[str, np.ndarray] = {
        VERSION_KEY: np.array(FORMAT_VERSION, dtype=np.int64),
        "meta/epoch": np.array(epoch, dtype=np.int64),
        "meta/losses": np.asarray(losses, dtype=np.float64),
    }
    for name, array in model.state_dict().items():
        arrays[f"model/{name}"] = array
    optim_state = optimizer.state_dict()
    scalars: dict[str, float | int] = {}
    for key, value in optim_state.items():
        if isinstance(value, list):
            for index, slot in enumerate(value):
                arrays[f"optim/{key}/{index:04d}"] = np.asarray(slot)
        else:
            scalars[key] = value
    arrays["optim/__scalars__"] = np.array(json.dumps(scalars))
    if rng is not None:
        arrays["rng/state"] = np.array(json.dumps(rng.bit_generator.state))
    for key, value in (extra or {}).items():
        arrays[f"extra/{key}"] = np.asarray(value)

    def write() -> Path:
        faultpoint("checkpoint.save")
        return atomic_savez(Path(path), arrays, fsync=fsync, checksum=True)

    return call_with_retry(
        write, policy=retry_policy, site="checkpoint.save", sleep=sleep
    )


def load_checkpoint(path: str | Path) -> TrainingCheckpoint:
    """Read and verify one checkpoint archive.

    Raises :class:`CheckpointCorruptError` when the checksum sidecar
    disagrees with the file, when the archive is truncated/unreadable, or
    when required fields are missing.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    if verify_checksum_sidecar(path) is False:
        raise CheckpointCorruptError(path, "SHA-256 checksum mismatch")
    try:
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except (OSError, ValueError, EOFError, KeyError, zipfile.BadZipFile) as error:
        raise CheckpointCorruptError(
            path, f"unreadable archive ({type(error).__name__}: {error})"
        ) from error
    if VERSION_KEY not in arrays:
        raise CheckpointCorruptError(path, "missing format-version field")
    version = int(arrays[VERSION_KEY])
    if version > FORMAT_VERSION:
        raise CheckpointCorruptError(
            path, f"format version {version} is newer than supported {FORMAT_VERSION}"
        )
    try:
        epoch = int(arrays["meta/epoch"])
        losses = [float(x) for x in arrays["meta/losses"]]
        model_state = {
            name[len("model/") :]: array
            for name, array in arrays.items()
            if name.startswith("model/")
        }
        optimizer_state: dict = json.loads(str(arrays["optim/__scalars__"]))
        slots: dict[str, list] = {}
        for name in sorted(arrays):
            if name.startswith("optim/") and name != "optim/__scalars__":
                key = name.split("/")[1]
                slots.setdefault(key, []).append(arrays[name])
        optimizer_state.update(slots)
        rng_state = (
            json.loads(str(arrays["rng/state"])) if "rng/state" in arrays else None
        )
        extra = {
            name[len("extra/") :]: array
            for name, array in arrays.items()
            if name.startswith("extra/")
        }
    except (KeyError, ValueError, json.JSONDecodeError) as error:
        raise CheckpointCorruptError(
            path, f"malformed payload ({type(error).__name__}: {error})"
        ) from error
    return TrainingCheckpoint(
        epoch=epoch,
        losses=losses,
        model_state=model_state,
        optimizer_state=optimizer_state,
        rng_state=rng_state,
        extra=extra,
    )


class CheckpointManager:
    """Rotation, discovery, and corrupt-file recovery over one directory."""

    def __init__(self, config: CheckpointConfig) -> None:
        self.config = config
        self.directory = Path(config.directory)

    def path_for(self, epoch: int) -> Path:
        return self.directory / f"ckpt_{epoch:06d}.npz"

    def epochs_on_disk(self) -> list[int]:
        """Completed-epoch indices with an archive present, ascending."""
        if not self.directory.exists():
            return []
        epochs = []
        for entry in self.directory.iterdir():
            match = _CKPT_PATTERN.match(entry.name)
            if match:
                epochs.append(int(match.group(1)))
        return sorted(epochs)

    def should_save(self, epoch: int) -> bool:
        return (epoch + 1) % self.config.every_epochs == 0

    def save(
        self,
        *,
        model: Module,
        optimizer: Optimizer,
        epoch: int,
        losses: "list[float]",
        rng: np.random.Generator | None = None,
        extra: "dict[str, np.ndarray] | None" = None,
        retry_policy: RetryPolicy = SAVE_RETRY_POLICY,
        sleep=time.sleep,
    ) -> Path:
        """Write epoch ``epoch``'s checkpoint and rotate old ones."""
        path = save_checkpoint(
            self.path_for(epoch),
            model=model,
            optimizer=optimizer,
            epoch=epoch,
            losses=losses,
            rng=rng,
            fsync=self.config.fsync,
            extra=extra,
            retry_policy=retry_policy,
            sleep=sleep,
        )
        self._rotate()
        self._log("checkpoint.saved", epoch=epoch, path=str(path))
        return path

    def _rotate(self) -> None:
        for epoch in self.epochs_on_disk()[: -self.config.keep_last]:
            stale = self.path_for(epoch)
            stale.unlink(missing_ok=True)
            checksum_sidecar_path(stale).unlink(missing_ok=True)

    def latest(self) -> "tuple[Path, TrainingCheckpoint] | None":
        """Newest loadable checkpoint, quarantining corrupt ones.

        Walks epochs newest-first; a file that fails verification is
        renamed to ``<name>.corrupt`` (sidecar too) and the next-newest is
        tried — so one torn or bit-rotted file degrades to "resume from
        the previous epoch", not "restart from scratch".

        Safe against concurrent writers sharing the directory: a file that
        vanishes between listing and loading (rotated away by a peer) is
        skipped without quarantine — absence is not corruption — and a
        quarantine rename that loses a race is ignored.
        """
        for epoch in reversed(self.epochs_on_disk()):
            path = self.path_for(epoch)
            try:
                return path, load_checkpoint(path)
            except FileNotFoundError:
                continue  # rotated away by a concurrent writer; not corrupt
            except CheckpointCorruptError as error:
                quarantined = path.with_name(path.name + ".corrupt")
                try:
                    path.replace(quarantined)
                    sidecar = checksum_sidecar_path(path)
                    if sidecar.exists():
                        sidecar.replace(sidecar.with_name(sidecar.name + ".corrupt"))
                except OSError:
                    continue  # a peer quarantined or rotated it first
                self._log(
                    "checkpoint.quarantined",
                    epoch=epoch,
                    path=str(quarantined),
                    reason=error.reason,
                )
        return None

    def restore(
        self,
        *,
        model: Module,
        optimizer: Optimizer,
        rng: np.random.Generator | None = None,
    ) -> "TrainingCheckpoint | None":
        """Load the newest intact checkpoint into live objects.

        Returns the checkpoint (its ``epoch`` is the last completed one)
        or ``None`` when the directory holds nothing restorable.
        """
        found = self.latest()
        if found is None:
            return None
        path, ckpt = found
        model.load_state_dict(ckpt.model_state)
        optimizer.load_state_dict(ckpt.optimizer_state)
        if rng is not None and ckpt.rng_state is not None:
            rng.bit_generator.state = ckpt.rng_state
        self._log("checkpoint.restored", epoch=ckpt.epoch, path=str(path))
        return ckpt

    @staticmethod
    def _log(event: str, **fields) -> None:
        from ..obs.metrics import get_registry
        from ..obs.runlog import get_run_logger

        get_registry().counter(f"resilience.{event}").inc()
        logger = get_run_logger()
        if logger.active:
            logger.log(event, **fields)
