"""Generic retry with exponential backoff, decorrelated jitter, and budgets.

The policy object classifies errors instead of swallowing everything:

- ``fatal`` exception types re-raise immediately (programming errors —
  ``ValueError`` on a bad shape will not succeed on attempt two);
- ``retryable`` types are retried with decorrelated-jitter backoff
  (``delay = uniform(base, 3 * previous)`` capped at ``max_delay`` — the
  AWS Architecture Blog variant, which avoids synchronized retry storms
  better than plain exponential);
- anything else is treated as fatal by default (``retry_unknown=False``).

Two budgets bound the total cost: ``max_attempts`` and an optional wall
clock ``deadline`` in seconds.  When both are spent the last error is
re-raised wrapped in :class:`~repro.resilience.errors.RetryBudgetExceeded`
(a classified :class:`ResilienceError`), with the original as
``__cause__``.  Each retry increments ``resilience.retries{site=}`` and
emits a ``retry.attempt`` run-log event.

Usage::

    @retry(RetryPolicy(max_attempts=4), site="data.load")
    def load(path): ...

    call_with_retry(np.load, path, policy=policy, site="data.load")

The sleeper and clock are injectable so tests never actually wait.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field

import numpy as np

from .errors import InjectedFault, RetryBudgetExceeded

__all__ = [
    "RetryPolicy",
    "retry",
    "call_with_retry",
    "next_backoff",
    "record_retry",
    "DEFAULT_IO_POLICY",
]


@dataclass(frozen=True)
class RetryPolicy:
    """What to retry, how often, and for how long."""

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    deadline: float | None = None  # total seconds across all attempts
    retryable: tuple = (OSError, TimeoutError, InjectedFault)
    fatal: tuple = ()
    retry_unknown: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")

    def classify(self, error: BaseException) -> str:
        """``"retryable"`` or ``"fatal"`` for ``error``."""
        if isinstance(error, self.fatal):
            return "fatal"
        if isinstance(error, self.retryable):
            return "retryable"
        return "retryable" if self.retry_unknown else "fatal"


#: The policy ``repro.data.io`` applies around dataset load/save: transient
#: filesystem errors (and injected ``data.*`` faults) are absorbed; schema
#: errors propagate untouched.
DEFAULT_IO_POLICY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.25)


def next_backoff(
    rng: np.random.Generator,
    base_delay: float,
    max_delay: float,
    previous: float,
) -> float:
    """One decorrelated-jitter step: ``min(cap, uniform(base, 3 * prev))``.

    Shared by :func:`call_with_retry` and the worker supervisor
    (:mod:`repro.dist.supervisor`), so every backoff in the repo follows
    the same AWS-variant schedule and the same test envelope.
    """
    return min(max_delay, float(rng.uniform(base_delay, previous * 3.0)))


def call_with_retry(
    fn,
    *args,
    policy: RetryPolicy = RetryPolicy(),
    site: str = "",
    sleep=time.sleep,
    clock=time.monotonic,
    **kwargs,
):
    """Invoke ``fn(*args, **kwargs)`` under ``policy``; see module docs."""
    site = site or getattr(fn, "__qualname__", repr(fn))
    rng = np.random.default_rng(policy.seed)
    started = clock()
    delay = policy.base_delay
    last_error: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn(*args, **kwargs)
        except BaseException as error:  # noqa: BLE001 - classified below
            if policy.classify(error) == "fatal":
                raise
            last_error = error
            elapsed = clock() - started
            record_retry(site, attempt, error)
            if attempt >= policy.max_attempts or (
                policy.deadline is not None and elapsed >= policy.deadline
            ):
                raise RetryBudgetExceeded(site, attempt, elapsed) from error
            # Decorrelated jitter: next delay drawn from [base, 3 * prev].
            delay = next_backoff(rng, policy.base_delay, policy.max_delay, delay)
            if policy.deadline is not None:
                delay = min(delay, max(0.0, policy.deadline - (clock() - started)))
            if delay > 0:
                sleep(delay)
    raise RetryBudgetExceeded(  # pragma: no cover - loop always returns/raises
        site, policy.max_attempts, clock() - started
    ) from last_error


def record_retry(site: str, attempt: int, error: BaseException) -> None:
    """Count one retry in ``resilience.retries{site=}`` + the run log.

    Public so out-of-band retry loops (the dist sweep scheduler requeueing
    a cell after a worker death) account through the same counter the
    in-band :func:`call_with_retry` uses.
    """
    from ..obs.metrics import get_registry
    from ..obs.runlog import get_run_logger

    get_registry().counter("resilience.retries", site=site).inc()
    logger = get_run_logger()
    if logger.active:
        logger.log(
            "retry.attempt",
            site=site,
            attempt=attempt,
            error=type(error).__name__,
            detail=str(error),
        )


def retry(
    policy: RetryPolicy = RetryPolicy(),
    site: str = "",
    sleep=time.sleep,
    clock=time.monotonic,
):
    """Decorator form of :func:`call_with_retry`."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            return call_with_retry(
                fn,
                *args,
                policy=policy,
                site=site or fn.__qualname__,
                sleep=sleep,
                clock=clock,
                **kwargs,
            )

        wrapper._retry_policy = policy
        return wrapper

    return decorate
