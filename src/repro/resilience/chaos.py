"""Deterministic, seeded fault injection at named fault points.

Library code plants zero-cost markers::

    from ..resilience.chaos import faultpoint
    ...
    faultpoint("data.load")

With no plan installed, ``faultpoint`` is one global load and a ``None``
check (gated under 5% of per-batch train cost by
``benchmarks/bench_resilience_overhead.py``).  A test or chaos sweep arms
the markers with a :class:`ChaosPlan`::

    with chaos(FaultSpec("rerank.score.*", kind="error", times=2), seed=0):
        run_serving_sweep()

Four fault kinds:

- ``"error"`` — raise :class:`~repro.resilience.errors.InjectedFault`
  (or a custom exception type via ``FaultSpec.error``);
- ``"latency"`` — sleep ``latency_ms`` (the sleeper is injectable, so
  tests can fake clocks instead of waiting);
- ``"kill"`` — deliver ``SIGKILL``.  Fired through a plain
  :func:`faultpoint` the *current process* kills itself (the mode a dist
  worker arms to die mid-step); fired through :func:`faultpoint_signal`
  the spec is *returned* and the caller delivers the kill — the dist
  supervisor SIGKILLs the worker whose message it was processing, so the
  plan's ``fires()`` stays parent-side and auditable;
- ``"nan"`` — poison the *output of an autograd op*.  The spec's ``site``
  names an op from :data:`repro.nn.tensor.PROFILED_OPS` as ``op.<name>``
  (e.g. ``op.sigmoid``); installing the plan wraps the op-dispatch surface
  via :func:`repro.nn.tensor.install_op_wrappers` — the same hook the
  PR 4 numerical sanitizer uses, so a sanitized run traps the poison with
  the op name in hand.

Scheduling is deterministic: ``after`` skips the first N matching hits,
``times`` caps total fires, and sub-1.0 ``probability`` draws from a
generator seeded by the plan — two sweeps with the same seed inject the
same faults.  Every fire increments ``resilience.faults{site=,kind=}`` and
emits a ``chaos.fault`` run-log event before acting.

Fault-point map (kept in sync with DESIGN.md §8):

=====================  =====================================================
``data.load``          each dataset ``load_*`` in ``repro.data.io``
``data.save``          each dataset ``save_*`` in ``repro.data.io``
``train.epoch``        top of every training epoch (``core.trainer``)
``train.batch``        top of every training batch (``core.trainer``)
``checkpoint.save``    before each checkpoint write (``resilience.checkpoint``)
``rerank.score.<n>``   every ``Reranker.rerank`` entry, ``<n>`` = reranker
                       name (``rerank.base``; target with ``rerank.score.*``)
``eval.rerank``        start of test-set re-ranking (``eval.experiment``)
``eval.metrics``       start of metric computation (``eval.experiment``)
``dist.heartbeat``     worker-heartbeat intake in the dist supervisor
                       (``"error"`` fires drop the heartbeat)
``dist.worker.step``   every data-parallel training step — in the worker
                       (top of the step; ``"kill"`` = worker suicide) and
                       in the supervisor (per grad message; ``"kill"`` =
                       SIGKILL that worker)
``dist.shard.write``   before each synthetic-shard archive write
``dist.sweep.cell``    each eval-sweep cell dispatch (supervisor) and
                       execution (worker)
``op.<name>``          autograd op outputs (``"nan"`` kind only)
=====================  =====================================================
"""

from __future__ import annotations

import fnmatch
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from .errors import InjectedFault

__all__ = [
    "FaultSpec",
    "ChaosPlan",
    "faultpoint",
    "faultpoint_signal",
    "install_chaos",
    "clear_chaos",
    "chaos",
    "chaos_active",
]


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``site`` is an ``fnmatch`` pattern over fault-point names (``"data.*"``
    matches loads and saves).  The spec fires on matching hits number
    ``after+1 .. after+times`` (each further gated by ``probability``);
    ``times=None`` never stops firing.
    """

    site: str
    kind: str = "error"  # "error" | "latency" | "nan" | "kill"
    probability: float = 1.0
    after: int = 0
    times: int | None = 1
    latency_ms: float = 0.0
    error: type[Exception] | None = None
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("error", "latency", "nan", "kill"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.after < 0 or (self.times is not None and self.times < 0):
            raise ValueError("after/times must be non-negative")
        if self.kind == "nan" and not self.site.startswith("op."):
            raise ValueError(
                "nan faults poison autograd op outputs; site must be "
                f"'op.<name>' with <name> in PROFILED_OPS, got {self.site!r}"
            )


@dataclass
class _SpecState:
    spec: FaultSpec
    hits: int = 0
    fires: int = 0


class ChaosPlan:
    """A set of :class:`FaultSpec` armed over the process's fault points."""

    def __init__(
        self,
        specs: "list[FaultSpec] | tuple[FaultSpec, ...]",
        seed: int = 0,
        sleep=time.sleep,
    ) -> None:
        self._states = [_SpecState(spec) for spec in specs]
        self._rng = np.random.default_rng(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._op_originals: dict[str, object] | None = None

    @property
    def specs(self) -> list[FaultSpec]:
        return [state.spec for state in self._states]

    def fires(self, site_pattern: str = "*") -> int:
        """Total faults fired whose spec site matches ``site_pattern``."""
        return sum(
            state.fires
            for state in self._states
            if fnmatch.fnmatchcase(state.spec.site, site_pattern)
            or fnmatch.fnmatchcase(site_pattern, state.spec.site)
        )

    # ------------------------------------------------------------------
    # Fault-point dispatch
    # ------------------------------------------------------------------
    def visit(self, site: str):
        """Called by :func:`faultpoint`; may sleep or raise.

        Returns the matching fired :class:`FaultSpec` for the
        caller-delivered kinds — ``"nan"`` (the op wrapper applies the
        poison) and ``"kill"`` (the caller delivers the SIGKILL) — and
        ``None`` otherwise.
        """
        for state in self._states:
            spec = state.spec
            if not fnmatch.fnmatchcase(site, spec.site):
                continue
            with self._lock:
                state.hits += 1
                if state.hits <= spec.after:
                    continue
                if spec.times is not None and state.fires >= spec.times:
                    continue
                if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                    continue
                state.fires += 1
            self._record(site, spec)
            if spec.kind == "latency":
                self._sleep(spec.latency_ms / 1000.0)
            elif spec.kind == "error":
                if spec.error is not None:
                    raise spec.error(spec.message or f"injected fault at {site!r}")
                raise InjectedFault(site, spec.message)
            else:  # "nan"/"kill": delivered by the caller
                return spec
        return None

    @staticmethod
    def _record(site: str, spec: FaultSpec) -> None:
        from ..obs.metrics import get_registry
        from ..obs.runlog import get_run_logger

        get_registry().counter("resilience.faults", site=site, kind=spec.kind).inc()
        logger = get_run_logger()
        if logger.active:
            logger.log("chaos.fault", site=site, kind=spec.kind, pattern=spec.site)

    # ------------------------------------------------------------------
    # NaN poisoning through the op-dispatch surface
    # ------------------------------------------------------------------
    def _has_nan_specs(self) -> bool:
        return any(state.spec.kind == "nan" for state in self._states)

    def _install_op_wrappers(self) -> None:
        from ..nn.tensor import Tensor, install_op_wrappers

        plan = self

        def make_wrapper(name: str, fn):
            site = f"op.{name}"

            def chaotic(*args, **kwargs):
                out = fn(*args, **kwargs)
                spec = plan.visit(site)
                if spec is not None:
                    for element in out if isinstance(out, tuple) else (out,):
                        if isinstance(element, Tensor) and element.data.size:
                            element.data.reshape(-1)[0] = np.nan
                            break
                return out

            return chaotic

        self._op_originals = install_op_wrappers(make_wrapper)

    def _restore_op_wrappers(self) -> None:
        if self._op_originals is not None:
            from ..nn.tensor import restore_ops

            restore_ops(self._op_originals)
            self._op_originals = None


_ACTIVE: ChaosPlan | None = None


def faultpoint(site: str) -> None:
    """Fault-injection marker; free when no chaos plan is installed.

    A ``"kill"`` spec firing here SIGKILLs the *current* process — the
    worker-suicide mode of the dist chaos matrix.  (``"nan"`` specs only
    fire through the op-wrapper surface, never a plain marker.)
    """
    plan = _ACTIVE
    if plan is not None:
        spec = plan.visit(site)
        if spec is not None and spec.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)


def faultpoint_signal(site: str):
    """Like :func:`faultpoint`, but caller-delivered kinds are *returned*.

    ``"error"``/``"latency"`` specs still raise/sleep inside the call; a
    fired ``"kill"`` (or ``"nan"``) spec comes back to the caller, which
    decides how to deliver it — the dist supervisor SIGKILLs the worker
    the visited event belongs to.  Returns ``None`` when nothing fired.
    """
    plan = _ACTIVE
    if plan is not None:
        return plan.visit(site)
    return None


def chaos_active() -> bool:
    return _ACTIVE is not None


def install_chaos(plan: ChaosPlan) -> ChaosPlan:
    """Arm ``plan`` process-wide (replacing any previous plan)."""
    global _ACTIVE
    clear_chaos()
    if plan._has_nan_specs():
        plan._install_op_wrappers()
    _ACTIVE = plan
    return plan


def clear_chaos() -> None:
    """Disarm fault injection and unwrap any poisoned ops (idempotent)."""
    global _ACTIVE
    plan, _ACTIVE = _ACTIVE, None
    if plan is not None:
        plan._restore_op_wrappers()


@contextmanager
def chaos(*specs: FaultSpec, seed: int = 0, sleep=time.sleep):
    """Arm a plan for a block; yields it so tests can inspect fire counts.

    Install order matters for ``"nan"`` faults composed with the numerical
    sanitizer: arm chaos first, then ``sanitize()``, so the sanitizer's
    wrapper observes the poisoned output.
    """
    plan = ChaosPlan(list(specs), seed=seed, sleep=sleep)
    install_chaos(plan)
    try:
        yield plan
    finally:
        clear_chaos()
