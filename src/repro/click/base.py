"""Click model interfaces."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["ClickModel"]


@runtime_checkable
class ClickModel(Protocol):
    """A user-behavior model that can simulate and score ranked lists."""

    def attraction_probabilities(
        self, user_id: int, items: np.ndarray
    ) -> np.ndarray:
        """Per-position attraction probabilities for the ordered list."""

    def termination_probabilities(self, length: int) -> np.ndarray:
        """Per-position satisfied-termination probabilities."""

    def simulate(
        self, user_id: int, items: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample a binary click vector for the ordered list."""
