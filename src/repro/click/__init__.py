"""Click-model substrate: the Dependent Click Model (simulate / score / fit)."""

from .base import ClickModel
from .cascade import CascadeClickModel, PositionBasedModel
from .dcm import (
    DependentClickModel,
    FittedDCM,
    coverage_gain,
    expected_clicks_curve,
    fit_dcm,
    satisfaction_probability,
)

__all__ = [
    "CascadeClickModel",
    "ClickModel",
    "DependentClickModel",
    "PositionBasedModel",
    "FittedDCM",
    "coverage_gain",
    "expected_clicks_curve",
    "fit_dcm",
    "satisfaction_probability",
]
