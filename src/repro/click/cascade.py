"""Alternative click models: cascade and position-based (extension).

The paper's theory generalizes *cascade-model* bandits (Hiranandani et al.
2020; Li et al. 2020) to the multi-click DCM.  These two classical models
let us study how robust the re-rankers are when the simulated user behaves
differently from the DCM they implicitly assume:

- :class:`CascadeClickModel` — the user scans top-down and stops at the
  *first* click (at most one click per session).
- :class:`PositionBasedModel` — examination depends only on the position
  (no dependence on earlier clicks); clicks are independent across
  positions.

Both reuse the world's personalized attraction (relevance + diversity
blend), so only the *session dynamics* change.
"""

from __future__ import annotations

import numpy as np

from ..data.synthetic import SyntheticWorld
from ..utils.rng import make_rng
from ..utils.validation import check_in_range
from .dcm import DependentClickModel

__all__ = ["CascadeClickModel", "PositionBasedModel"]


class CascadeClickModel(DependentClickModel):
    """Cascade model: top-down scan, session ends at the first click.

    Shares the DCM's attraction probabilities (lambda blend of relevance
    and personalized diversity); the termination probability after a click
    is identically 1.
    """

    def __init__(self, world: SyntheticWorld, tradeoff: float = 0.5) -> None:
        super().__init__(world, tradeoff=tradeoff, base_termination=1.0,
                         termination_decay=1.0)

    def termination_probabilities(self, length: int) -> np.ndarray:
        return np.ones(length)

    def simulate(
        self,
        user_id: int,
        items: np.ndarray,
        rng: np.random.Generator | int | None,
        full_information: bool = False,
    ) -> np.ndarray:
        rng = make_rng(rng)
        items = np.asarray(items, dtype=np.int64)
        phi = self.attraction_probabilities(user_id, items)
        attracted = (rng.random(len(items)) < phi).astype(np.float64)
        if full_information:
            return attracted
        clicks = np.zeros(len(items))
        first = np.flatnonzero(attracted)
        if first.size:
            clicks[first[0]] = 1.0
        return clicks

    def expected_clicks(self, user_id: int, items: np.ndarray, k: int) -> float:
        """Expected clicks@k = P(first attractive item within top-k)."""
        phi = self.attraction_probabilities(user_id, items)[:k]
        return float(1.0 - np.prod(1.0 - phi))


class PositionBasedModel:
    """PBM: click iff (examined AND attracted); examination decays by rank.

    Examination probabilities follow the classical ``1 / rank^eta`` decay.
    Clicks at different positions are independent.
    """

    def __init__(
        self,
        world: SyntheticWorld,
        tradeoff: float = 0.5,
        examination_decay: float = 1.0,
    ) -> None:
        check_in_range(tradeoff, 0.0, 1.0, "tradeoff")
        if examination_decay < 0:
            raise ValueError("examination_decay must be >= 0")
        self._dcm = DependentClickModel(world, tradeoff=tradeoff)
        self.world = world
        self.tradeoff = tradeoff
        self.examination_decay = examination_decay

    def attraction_probabilities(self, user_id: int, items: np.ndarray) -> np.ndarray:
        return self._dcm.attraction_probabilities(user_id, items)

    def examination_probabilities(self, length: int) -> np.ndarray:
        ranks = np.arange(1, length + 1, dtype=np.float64)
        return ranks**-self.examination_decay

    def termination_probabilities(self, length: int) -> np.ndarray:
        """PBM has no satisfied-exit; exposed for evaluator compatibility.

        Returns ``1 - examination`` shifted so the DCM-style satisfaction
        formula degrades gracefully; callers that understand PBM should use
        :meth:`examination_probabilities` directly.
        """
        return np.zeros(length)

    def simulate(
        self,
        user_id: int,
        items: np.ndarray,
        rng: np.random.Generator | int | None,
        full_information: bool = False,
    ) -> np.ndarray:
        rng = make_rng(rng)
        items = np.asarray(items, dtype=np.int64)
        phi = self.attraction_probabilities(user_id, items)
        attracted = (rng.random(len(items)) < phi).astype(np.float64)
        if full_information:
            return attracted
        examined = rng.random(len(items)) < self.examination_probabilities(len(items))
        return attracted * examined

    def expected_clicks(self, user_id: int, items: np.ndarray, k: int) -> float:
        phi = self.attraction_probabilities(user_id, items)[:k]
        exam = self.examination_probabilities(len(items))[:k]
        return float((phi * exam).sum())
