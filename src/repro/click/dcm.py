"""Dependent Click Model (DCM) simulator, evaluator, and MLE estimator.

The paper's semi-synthetic protocol (Sec. IV-B1) uses a DCM as the
environment: at position ``k`` the user examines item ``v_k``, clicks with
attraction probability ``phi(v_k)``, and — if she clicked — leaves satisfied
with termination probability ``eps(k)``; otherwise she continues to the next
position.  Attraction blends relevance and *personalized* diversity:

    phi(v_k) = lambda * alpha(v_k) + (1 - lambda) * rho_u . zeta(v_k)

where ``zeta(v_k)`` is the incremental topic coverage of ``v_k`` over the
items ranked above it and ``rho_u`` is the user's hidden per-topic diversity
weight.  This module provides:

- :class:`DependentClickModel` — the simulator tied to a synthetic world;
- closed-form expected clicks / satisfaction under a DCM (used by the
  low-variance evaluation mode);
- :func:`fit_dcm` — the classical last-click maximum-likelihood estimator
  of per-item attraction and per-position termination (Guo et al., 2009).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.synthetic import SyntheticWorld
from ..utils.rng import make_rng
from ..utils.validation import check_in_range

__all__ = [
    "DependentClickModel",
    "coverage_gain",
    "expected_clicks_curve",
    "satisfaction_probability",
    "fit_dcm",
    "FittedDCM",
]


def coverage_gain(coverage: np.ndarray) -> np.ndarray:
    """Per-position incremental topic coverage ``zeta``.

    Parameters
    ----------
    coverage:
        (L, m) topic coverage of the ordered list.

    Returns
    -------
    (L, m): ``zeta[k, j] = tau[k, j] * prod_{i<k}(1 - tau[i, j])``, i.e. the
    probability that item ``k`` is the first to cover topic ``j``.
    """
    coverage = np.asarray(coverage, dtype=np.float64)
    remaining = np.ones(coverage.shape[1])
    zeta = np.empty_like(coverage)
    for position in range(len(coverage)):
        zeta[position] = coverage[position] * remaining
        remaining = remaining * (1.0 - coverage[position])
    return zeta


def expected_clicks_curve(phi: np.ndarray, eps: np.ndarray) -> np.ndarray:
    """Cumulative expected clicks after each position under the DCM.

    The user continues past position ``k`` with probability
    ``1 - phi_k * eps_k``; the expected click at position ``k`` is the
    examination probability times ``phi_k``.
    """
    phi = np.asarray(phi, dtype=np.float64)
    eps = np.asarray(eps, dtype=np.float64)
    examine = 1.0
    cumulative = np.empty(len(phi))
    total = 0.0
    for k in range(len(phi)):
        total += examine * phi[k]
        cumulative[k] = total
        examine *= 1.0 - phi[k] * eps[k]
    return cumulative


def satisfaction_probability(phi: np.ndarray, eps: np.ndarray) -> np.ndarray:
    """Cumulative satisfaction ``1 - prod_{i<=k}(1 - eps_i * phi_i)``."""
    phi = np.asarray(phi, dtype=np.float64)
    eps = np.asarray(eps, dtype=np.float64)
    survive = np.cumprod(1.0 - eps[: len(phi)] * phi)
    return 1.0 - survive


class DependentClickModel:
    """DCM environment bound to a :class:`SyntheticWorld`.

    Parameters
    ----------
    world:
        Source of ground-truth relevance ``alpha`` and user diversity
        weights ``rho``.
    tradeoff:
        The relevance/diversity blend ``lambda`` in [0, 1]; 1.0 means clicks
        are purely relevance-driven (paper's ads scenario), 0.5 a balanced
        news-feed scenario.
    base_termination / termination_decay:
        Position-wise satisfied-termination probabilities
        ``eps(k) = base * decay^(k-1)``; decay <= 1 keeps them
        non-increasing, matching the theory's assumption.
    """

    def __init__(
        self,
        world: SyntheticWorld,
        tradeoff: float = 0.5,
        base_termination: float = 0.5,
        termination_decay: float = 0.92,
    ) -> None:
        check_in_range(tradeoff, 0.0, 1.0, "tradeoff")
        check_in_range(base_termination, 0.0, 1.0, "base_termination")
        check_in_range(termination_decay, 0.0, 1.0, "termination_decay")
        self.world = world
        self.tradeoff = tradeoff
        self.base_termination = base_termination
        self.termination_decay = termination_decay

    # ------------------------------------------------------------------
    def attraction_probabilities(self, user_id: int, items: np.ndarray) -> np.ndarray:
        """phi(v_k) for the ordered list (paper Sec. IV-B1 blend)."""
        items = np.asarray(items, dtype=np.int64)
        alpha = self.world.relevance_matrix()[user_id, items]
        zeta = coverage_gain(self.world.catalog.coverage[items])
        rho = self.world.population.diversity_weight[user_id]
        diversity = zeta @ rho
        phi = self.tradeoff * alpha + (1.0 - self.tradeoff) * diversity
        return np.clip(phi, 0.0, 1.0)

    def termination_probabilities(self, length: int) -> np.ndarray:
        positions = np.arange(length)
        return self.base_termination * self.termination_decay**positions

    def simulate(
        self,
        user_id: int,
        items: np.ndarray,
        rng: np.random.Generator | int | None,
        full_information: bool = False,
    ) -> np.ndarray:
        """Sample binary clicks.

        With ``full_information=False`` (the realistic DCM session),
        positions after a satisfied exit get 0 — their labels are censored
        by termination.  With ``full_information=True`` the attraction
        Bernoulli outcome is logged for *every* position, i.e. the
        environment reveals what the user would have clicked had she
        examined everything.  The semi-synthetic training protocol uses the
        latter to compensate for the small synthetic scale (see DESIGN.md);
        evaluation never uses sampled clicks in ``expected`` mode.
        """
        rng = make_rng(rng)
        items = np.asarray(items, dtype=np.int64)
        phi = self.attraction_probabilities(user_id, items)
        eps = self.termination_probabilities(len(items))
        attracted = (rng.random(len(items)) < phi).astype(np.float64)
        if full_information:
            return attracted
        clicks = np.zeros(len(items))
        for k in range(len(items)):
            if attracted[k]:
                clicks[k] = 1.0
                if rng.random() < eps[k]:
                    break
        return clicks

    # ------------------------------------------------------------------
    # Evaluation helpers (the "tilde" quantities of Sec. IV-B2)
    # ------------------------------------------------------------------
    def expected_clicks(self, user_id: int, items: np.ndarray, k: int) -> float:
        phi = self.attraction_probabilities(user_id, items)
        eps = self.termination_probabilities(len(items))
        return float(expected_clicks_curve(phi, eps)[min(k, len(items)) - 1])

    def satisfaction(self, user_id: int, items: np.ndarray, k: int) -> float:
        phi = self.attraction_probabilities(user_id, items)
        eps = self.termination_probabilities(len(items))
        return float(satisfaction_probability(phi, eps)[min(k, len(items)) - 1])


@dataclass
class FittedDCM:
    """Parameters recovered by :func:`fit_dcm`.

    Attributes
    ----------
    attraction:
        (num_items,) MLE of each item's attraction probability.
    termination:
        (max_length,) MLE of the position-wise termination probability.
    impressions:
        (num_items,) number of examined impressions per item (support).
    """

    attraction: np.ndarray
    termination: np.ndarray
    impressions: np.ndarray


def fit_dcm(
    lists: list[np.ndarray],
    clicks: list[np.ndarray],
    num_items: int,
    smoothing: float = 1.0,
) -> FittedDCM:
    """Last-click maximum-likelihood DCM estimation (Guo et al., 2009).

    Under the DCM, every position up to and including the *last* click is
    examined.  The attraction MLE of item ``v`` is clicks/examined
    impressions; the termination MLE at position ``k`` is the fraction of
    clicks at ``k`` that were the session's final click.  Laplace
    ``smoothing`` regularizes rare items/positions.
    """
    if len(lists) != len(clicks):
        raise ValueError("lists and clicks must align")
    max_length = max((len(l) for l in lists), default=0)
    click_count = np.zeros(num_items)
    examine_count = np.zeros(num_items)
    last_click_at = np.zeros(max_length)
    clicks_at = np.zeros(max_length)

    for items, y in zip(lists, clicks):
        items = np.asarray(items, dtype=np.int64)
        y = np.asarray(y)
        clicked_positions = np.flatnonzero(y > 0.5)
        # All positions are examined if there is no click; otherwise the
        # session provably examined everything up to the last click, and we
        # follow the standard convention of treating the tail as examined
        # only when the user did not terminate (no click).
        horizon = len(items) if len(clicked_positions) == 0 else (
            clicked_positions[-1] + 1
        )
        examined = items[:horizon]
        examine_count[examined] += 1
        clicked_items = items[clicked_positions]
        click_count[clicked_items] += 1
        for position in clicked_positions:
            clicks_at[position] += 1
        if len(clicked_positions) > 0:
            last_click_at[clicked_positions[-1]] += 1

    attraction = (click_count + smoothing) / (examine_count + 2.0 * smoothing)
    termination = (last_click_at + smoothing) / (clicks_at + 2.0 * smoothing)
    return FittedDCM(
        attraction=attraction,
        termination=termination,
        impressions=examine_count,
    )
