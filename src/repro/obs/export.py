"""Metric exporters: OpenMetrics/Prometheus text and periodic JSON snapshots.

Two export surfaces over one :class:`~repro.obs.metrics.MetricsRegistry`:

- :func:`render_openmetrics` — the Prometheus/OpenMetrics text exposition
  format, one family per metric name.  Counters become ``<name>_total``,
  gauges stay gauges, histograms and windowed histograms render as
  summaries (``{quantile="0.5"}`` series plus ``_sum``/``_count``), and
  EWMA meters expose per-tau rate gauges.  A serving endpoint returns this
  string verbatim as ``GET /metrics``.
- :func:`write_snapshot` / :class:`SnapshotExporter` — the full registry
  snapshot (every field of every series, exactly what
  :meth:`~repro.obs.metrics.MetricsRegistry.collect` reports) as a JSON
  file written through :mod:`repro.utils.atomicio`, so a scraper or a
  post-mortem always reads a complete snapshot, never a torn write.
  :class:`SnapshotExporter` rewrites it from a daemon thread every
  ``interval_s`` seconds.

Metric names are sanitized for Prometheus (dots become underscores); a
windowed histogram sharing a cumulative histogram's name exports as
``<name>_window`` with a ``window`` label so the two families stay
distinct.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from pathlib import Path

from .metrics import MetricsRegistry, get_registry
from .runlog import per_pid_path

__all__ = [
    "render_openmetrics",
    "write_openmetrics",
    "write_snapshot",
    "SnapshotExporter",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{_LABEL_RE.sub("_", key)}="{_escape_label_value(str(value))}"'
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # OpenMetrics wants plain decimal; repr keeps floats round-trippable.
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def _family_lines(name: str, kind: str, snaps: list[dict]) -> list[str]:
    lines: list[str] = []
    if kind == "counter":
        lines.append(f"# TYPE {name} counter")
        for snap in snaps:
            labels = _labels_text(snap["labels"])
            lines.append(f"{name}_total{labels} {_format_value(snap['value'])}")
    elif kind == "gauge":
        lines.append(f"# TYPE {name} gauge")
        for snap in snaps:
            labels = _labels_text(snap["labels"])
            lines.append(f"{name}{labels} {_format_value(snap['value'])}")
    elif kind in ("histogram", "windowed_histogram"):
        lines.append(f"# TYPE {name} summary")
        for snap in snaps:
            extra = {}
            if kind == "windowed_histogram":
                extra["window"] = f"{snap['window_s']:g}s"
            for quantile, field in _QUANTILES:
                labels = _labels_text(
                    snap["labels"], {**extra, "quantile": quantile}
                )
                lines.append(f"{name}{labels} {_format_value(snap[field])}")
            labels = _labels_text(snap["labels"], extra)
            lines.append(f"{name}_sum{labels} {_format_value(snap['sum'])}")
            lines.append(f"{name}_count{labels} {_format_value(snap['count'])}")
    elif kind == "windowed_counter":
        lines.append(f"# TYPE {name} gauge")
        for snap in snaps:
            labels = _labels_text(
                snap["labels"], {"window": f"{snap['window_s']:g}s"}
            )
            lines.append(f"{name}{labels} {_format_value(snap['total'])}")
    elif kind == "meter":
        lines.append(f"# TYPE {name} gauge")
        for snap in snaps:
            for field in sorted(snap):
                if not field.endswith("_per_s"):
                    continue
                tau = field[: -len("_per_s")]
                labels = _labels_text(snap["labels"], {"rate": tau})
                lines.append(f"{name}{labels} {_format_value(snap[field])}")
    else:  # unknown kind: expose numeric fields as suffixed gauges
        lines.append(f"# TYPE {name} gauge")
        for snap in snaps:
            labels = _labels_text(snap["labels"])
            for field, value in sorted(snap.items()):
                if field in ("kind", "name", "labels") or not isinstance(
                    value, (int, float)
                ):
                    continue
                lines.append(f"{name}_{field}{labels} {_format_value(value)}")
    return lines


def render_openmetrics(registry: MetricsRegistry | None = None) -> str:
    """The whole registry in OpenMetrics text exposition format."""
    registry = registry if registry is not None else get_registry()
    families: dict[tuple[str, str], list[dict]] = {}
    for snap in registry.collect():
        kind = snap["kind"]
        name = _metric_name(snap["name"])
        if kind == "windowed_histogram":
            # A windowed histogram may share its cumulative twin's name;
            # suffix the family so the exposition stays unambiguous.
            name += "_window"
        families.setdefault((name, kind), []).append(snap)
    lines: list[str] = []
    for (name, kind), snaps in sorted(families.items()):
        lines.extend(_family_lines(name, kind, snaps))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    path: str | Path, registry: MetricsRegistry | None = None
) -> Path:
    """Atomically write :func:`render_openmetrics` output to ``path``."""
    from ..utils.atomicio import atomic_write_bytes

    text = render_openmetrics(registry)
    return atomic_write_bytes(Path(path), text.encode("utf-8"), fsync=False)


def write_snapshot(
    path: str | Path,
    registry: MetricsRegistry | None = None,
    extra: dict | None = None,
) -> Path:
    """Atomically write the full registry snapshot as one JSON document.

    The payload is ``{"ts": ..., "metrics": [...]}`` (plus ``extra``
    fields), where ``metrics`` is exactly
    :meth:`~repro.obs.metrics.MetricsRegistry.collect`.
    """
    from ..utils.atomicio import atomic_write_bytes

    registry = registry if registry is not None else get_registry()
    payload = {"ts": time.time(), "metrics": registry.collect()}
    if extra:
        payload.update(extra)
    encoded = json.dumps(payload, sort_keys=True, indent=1).encode("utf-8")
    return atomic_write_bytes(Path(path), encoded, fsync=False)


class SnapshotExporter:
    """Periodic JSON snapshot writer (daemon thread, atomic writes).

    ::

        with SnapshotExporter("metrics.json", interval_s=10.0):
            serve_forever()

    Each rewrite replaces the file atomically; ``stop()`` (or context
    exit) writes one final snapshot so the file always reflects the end
    state of the run.

    Multi-process safety mirrors :class:`~repro.obs.runlog.JsonlSink`: the
    exporter is owned by the pid that created it.  With ``per_pid=True``
    it writes to :func:`~repro.obs.runlog.per_pid_path` and a forked child
    rebinds to its own file; without it, a write from another pid raises
    ``RuntimeError`` — two exporters ping-ponging one path would make the
    snapshot flap between two processes' registries.
    """

    def __init__(
        self,
        path: str | Path,
        interval_s: float = 10.0,
        registry: MetricsRegistry | None = None,
        per_pid: bool = False,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.requested_path = Path(path)
        self.per_pid = per_pid
        self.path = per_pid_path(self.requested_path) if per_pid else Path(path)
        self.interval_s = float(interval_s)
        self.registry = registry
        self._owner_pid = os.getpid()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.writes = 0

    def _write(self) -> None:
        pid = os.getpid()
        if pid != self._owner_pid:
            if not self.per_pid:
                raise RuntimeError(
                    f"SnapshotExporter({str(self.requested_path)!r}) was "
                    f"created in pid {self._owner_pid} but is writing from "
                    f"pid {pid}; two processes overwriting one snapshot "
                    "path makes it flap between registries. Pass "
                    "per_pid=True or give each process its own path."
                )
            self.path = per_pid_path(self.requested_path, pid)
            self._owner_pid = pid
        write_snapshot(self.path, self.registry)
        self.writes += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._write()

    def start(self) -> "SnapshotExporter":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-obs-snapshots", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._write()  # final snapshot: the file ends current

    def __enter__(self) -> "SnapshotExporter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
