"""Cross-thread and cross-process trace context propagation and merging.

A :class:`TraceContext` names a position in a trace — ``(trace_id,
span_id)`` — in a form that serializes through pickle, JSON, or a plain
string header.  Installing one with :func:`use_context` makes the next
root span opened on that thread a **child** of the remote span instead of
a fresh trace, which is how one logical request keeps a single trace tree
across thread pools and ``multiprocessing`` workers:

Parent process::

    with trace("serve.request") as span:
        ctx = current_context()
        pool.apply(worker, (ctx.to_dict(), job))

Worker process::

    def worker(ctx_dict, job):
        with use_context(TraceContext.from_dict(ctx_dict)):
            with trace("worker.shard"):       # root here, child of parent
                ...
        return span_records()                 # serializable span buffer

Parent, afterwards::

    records = span_records() + worker_records_0 + worker_records_1
    write_chrome_trace("trace.json", records)   # one merged timeline

Merged records use **wall-clock** starts (``time.time``) so events from
different processes line up on one timeline; within-process ordering still
comes from the monotonic span clock.  Parent/child linkage survives the
merge because every span carries globally-unique ``span_id`` /
``parent_id`` (pid-qualified) and the shared ``trace_id``.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from . import tracing
from .tracing import Span, Tracer, get_tracer

__all__ = [
    "TraceContext",
    "current_context",
    "use_context",
    "propagated",
    "span_records",
    "span_tree_records",
    "merge_span_records",
    "chrome_trace_from_records",
    "write_chrome_trace",
]


@dataclass(frozen=True)
class TraceContext:
    """A serializable pointer to one span of one trace."""

    trace_id: str
    span_id: str

    def to_dict(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload: dict[str, str]) -> "TraceContext":
        return cls(trace_id=payload["trace_id"], span_id=payload["span_id"])

    def to_header(self) -> str:
        """Compact ``trace_id-span_id`` wire form (DESIGN.md §9)."""
        return f"{self.trace_id}-{self.span_id}"

    @classmethod
    def from_header(cls, header: str) -> "TraceContext":
        trace_id, _, span_id = header.partition("-")
        if not trace_id or not span_id:
            raise ValueError(f"malformed trace header: {header!r}")
        return cls(trace_id=trace_id, span_id=span_id)


def current_context(tracer: Tracer | None = None) -> TraceContext | None:
    """Context of the innermost active span (or the ambient remote parent).

    Returns ``None`` when no span is open and no remote context is
    installed — callers forward that as "start a fresh trace".
    """
    tracer = tracer if tracer is not None else get_tracer()
    span = tracer.current()
    if span is not None and span.trace_id is not None:
        return TraceContext(trace_id=span.trace_id, span_id=span.span_id)
    ambient = getattr(tracing._AMBIENT, "ctx", None)
    if ambient is not None:
        return TraceContext(trace_id=ambient[0], span_id=ambient[1])
    return None


@contextmanager
def use_context(context: TraceContext | None):
    """Adopt ``context`` as the parent for root spans on this thread.

    ``None`` is accepted and is a no-op, so workers can propagate whatever
    :func:`current_context` returned without branching.
    """
    if context is None:
        yield
        return
    previous = getattr(tracing._AMBIENT, "ctx", None)
    tracing._AMBIENT.ctx = (context.trace_id, context.span_id)
    try:
        yield
    finally:
        tracing._AMBIENT.ctx = previous


def propagated(fn, tracer: Tracer | None = None):
    """Bind the *current* context into ``fn`` for execution on another thread.

    ``threading.Thread(target=propagated(work))`` makes spans opened inside
    ``work`` children of the span active at call time — the capture happens
    here, not when the thread runs.
    """
    context = current_context(tracer)

    def wrapper(*args, **kwargs):
        with use_context(context):
            return fn(*args, **kwargs)

    return wrapper


def _record_of(span: Span, path: str) -> dict:
    return {
        "name": span.name,
        "path": path,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "wall_start": span.wall_start,
        "duration_s": span.duration_s,
        "pid": int(span.span_id.split("-", 1)[0], 16),
        "tid": span.thread_id,
        "error": span.error,
    }


def span_records(tracer: Tracer | None = None) -> list[dict]:
    """Every finished span as a plain serializable dict (pickle/JSON-safe).

    This is the buffer a ``multiprocessing`` worker ships back to its
    parent; the pid embedded in each span id is recovered into a ``pid``
    field so merged Chrome traces get one track per process.
    """
    tracer = tracer if tracer is not None else get_tracer()
    return [_record_of(span, path) for span, _, path in tracer.walk()]


def span_tree_records(span: Span) -> list[dict]:
    """Records for one finished span and all of its descendants.

    The tracer only files a tree under its *root* — a span that is itself
    nested (or whose root is still open) never shows up in
    :func:`span_records`.  Holding on to the span returned by
    ``with trace(...) as span`` and walking it directly after the block
    closes sidesteps that, and also scopes the records to exactly one
    operation instead of the process's whole history.
    """
    return [_record_of(child, path) for child, _, path in span.walk()]


def merge_span_records(*buffers: "list[dict] | None") -> list[dict]:
    """Concatenate span buffers from several processes, oldest-start first.

    ``None`` buffers (a worker that died before reporting) are skipped so
    partial traces still merge.
    """
    merged: list[dict] = []
    for buffer in buffers:
        if buffer:
            merged.extend(buffer)
    merged.sort(key=lambda r: r.get("wall_start", 0.0))
    return merged


def chrome_trace_from_records(records: list[dict]) -> list[dict]:
    """Chrome ``trace_event`` complete events from merged span records.

    Timestamps are wall-clock microseconds relative to the earliest span,
    so records from different processes share one timeline; ``pid``/``tid``
    give per-process, per-thread tracks, and parent/child linkage rides in
    ``args`` (``trace_id`` / ``span_id`` / ``parent_id``).
    """
    if not records:
        return []
    offset = min(r["wall_start"] for r in records)
    events = []
    for record in records:
        args = {
            "trace_id": record.get("trace_id"),
            "span_id": record.get("span_id"),
            "parent_id": record.get("parent_id"),
        }
        if record.get("error"):
            args["error"] = record["error"]
        events.append(
            {
                "name": record["name"],
                "ph": "X",
                "ts": (record["wall_start"] - offset) * 1e6,
                "dur": record["duration_s"] * 1e6,
                "pid": record.get("pid", 0),
                "tid": record.get("tid", 0),
                "args": args,
            }
        )
    return events


def write_chrome_trace(path: str | Path, records: list[dict]) -> Path:
    """Write merged records as a ``chrome://tracing`` / Perfetto JSON file."""
    from ..utils.atomicio import atomic_write_bytes

    payload = json.dumps(chrome_trace_from_records(records), indent=1)
    return atomic_write_bytes(Path(path), payload.encode("utf-8"), fsync=False)
