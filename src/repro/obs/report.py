"""Render a human-readable summary of a JSONL run log.

Usage::

    python -m repro.obs.report run.jsonl

Sections (each skipped when the log has no matching events):

- run header — run id, event count, wall-clock extent;
- loss curve — one row per ``train.epoch`` event;
- evaluation results — one row per ``eval.result`` event;
- slowest spans — ``span`` summary events sorted by total time;
- top autograd ops — ``autograd.op`` events sorted by total time;
- SLO status — last ``obs.slo.*`` gauges plus any ``slo.alert`` events;
- windowed percentiles — recent p50/p95/p99 per windowed histogram;
- profiler hot stacks — ``profiler.stack`` events by sample share.

Programmatic entry points: :func:`render_report` on already-loaded records,
:func:`report_path` for a file.
"""

from __future__ import annotations

import sys
from pathlib import Path

from .runlog import read_jsonl

__all__ = ["render_report", "report_path", "main"]


def _format_cell(value, precision: int = 4) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def _format_table(rows: list[dict], columns: list[str], precision: int = 4) -> str:
    """Minimal fixed-width table over a list of dict rows."""
    cells = [
        [_format_cell(row.get(col, ""), precision) for col in columns]
        for row in rows
    ]
    widths = [
        max(len(col), *(len(line[i]) for line in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
    divider = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
        for line in cells
    ]
    return "\n".join([header, divider, *body])


def _section(title: str, body: str) -> str:
    return f"{title}\n{body}"


def render_report(records: list[dict], top: int = 10) -> str:
    """Build the full text report from loaded run-log records."""
    if not records:
        return "(empty run log)"
    sections: list[str] = []

    run_ids = sorted({r.get("run_id", "?") for r in records})
    timestamps = [r["ts"] for r in records if isinstance(r.get("ts"), (int, float))]
    extent = (max(timestamps) - min(timestamps)) if len(timestamps) > 1 else 0.0
    sections.append(
        f"run {', '.join(run_ids)} — {len(records)} events, "
        f"{extent:.2f}s wall-clock extent"
    )

    epochs = [r for r in records if r.get("event") == "train.epoch"]
    if epochs:
        sections.append(
            _section(
                "Training loss curve",
                _format_table(
                    epochs,
                    ["epoch", "loss", "grad_norm", "lists_per_sec", "epoch_s"],
                ),
            )
        )

    evals = [r for r in records if r.get("event") == "eval.result"]
    if evals:
        metric_keys = sorted(
            {k for r in evals for k in r if "@" in k}
        )
        sections.append(
            _section(
                "Evaluation results",
                _format_table(evals, ["model", *metric_keys]),
            )
        )

    spans = [r for r in records if r.get("event") == "span"]
    if spans:
        spans = sorted(spans, key=lambda r: r.get("total_ms", 0.0), reverse=True)
        sections.append(
            _section(
                f"Slowest spans (top {top})",
                _format_table(
                    spans[:top],
                    ["path", "count", "total_ms", "mean_ms"],
                    precision=2,
                ),
            )
        )

    ops = [r for r in records if r.get("event") == "autograd.op"]
    if ops:
        ops = sorted(ops, key=lambda r: r.get("total_ms", 0.0), reverse=True)
        body = _format_table(
            ops[:top],
            [
                "op",
                "dispatch",
                "forward_calls",
                "forward_ms",
                "backward_calls",
                "backward_ms",
                "total_ms",
            ],
            precision=2,
        )
        fused_line = _fused_kernel_share(ops)
        if fused_line:
            body = f"{body}\n{fused_line}"
        infer_line = _infer_dispatch_share(ops)
        if infer_line:
            body = f"{body}\n{infer_line}"
        sections.append(_section(f"Top autograd ops (top {top})", body))

    slo_body = _slo_section(records)
    if slo_body:
        sections.append(_section("SLO status", slo_body))

    windowed = [
        r
        for r in records
        if r.get("event") == "metric" and r.get("kind") == "windowed_histogram"
    ]
    if windowed:
        rows = [
            {
                "metric": _series_label(r),
                "window": f"{r.get('window_s', 0):g}s",
                "count": r.get("count", 0),
                "p50": r.get("p50", 0.0),
                "p95": r.get("p95", 0.0),
                "p99": r.get("p99", 0.0),
            }
            for r in windowed
        ]
        sections.append(
            _section(
                "Windowed percentiles (recent, not lifetime)",
                _format_table(
                    rows,
                    ["metric", "window", "count", "p50", "p95", "p99"],
                    precision=3,
                ),
            )
        )

    stacks = [r for r in records if r.get("event") == "profiler.stack"]
    if stacks:
        sections.append(
            _section(
                f"Profiler hot stacks (top {top})", _stacks_body(stacks, top)
            )
        )

    return "\n\n".join(sections)


_SLO_STATE_NAMES = {0: "ok", 1: "warn", 2: "page"}


def _series_label(record: dict) -> str:
    labels = record.get("labels") or {}
    if isinstance(labels, (list, tuple)):
        labels = dict(labels)
    if not labels:
        return str(record.get("name", "?"))
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{record.get('name', '?')}{{{inner}}}"


def _slo_section(records: list[dict]) -> str | None:
    """SLO state table (from flushed gauges) plus the alert history."""
    states: dict[str, dict] = {}
    burns: dict[str, list[tuple[str, float]]] = {}
    for r in records:
        if r.get("event") != "metric":
            continue
        labels = r.get("labels") or {}
        if isinstance(labels, (list, tuple)):
            labels = dict(labels)
        slo = labels.get("slo")
        if slo is None:
            continue
        if r.get("name") == "obs.slo.state":
            states[slo] = r
        elif r.get("name") == "obs.slo.burn_rate":
            burns.setdefault(slo, []).append(
                (labels.get("window", "?"), r.get("value", 0.0))
            )
    alerts = [r for r in records if r.get("event") in ("slo.alert", "slo.resolve")]
    if not states and not alerts:
        return None
    lines = []
    if states:
        rows = []
        for slo, record in sorted(states.items()):
            worst = max(burns.get(slo, [("", 0.0)]), key=lambda kv: kv[1])
            rows.append(
                {
                    "slo": slo,
                    "state": _SLO_STATE_NAMES.get(
                        int(record.get("value", 0)), "?"
                    ),
                    "max_burn_rate": worst[1],
                    "window": worst[0],
                }
            )
        lines.append(
            _format_table(
                rows, ["slo", "state", "max_burn_rate", "window"], precision=2
            )
        )
    for r in alerts:
        if r.get("event") == "slo.alert":
            lines.append(
                f"ALERT  {r.get('slo', '?')} [{r.get('severity', '?')}] "
                f"burn {r.get('burn_rate_long', 0.0):.1f}x over "
                f"{r.get('long_window_s', 0):g}s "
                f"(short {r.get('burn_rate_short', 0.0):.1f}x)"
            )
        else:
            lines.append(f"resolve  {r.get('slo', '?')} back to ok")
    return "\n".join(lines)


def _stacks_body(stacks: list[dict], top: int) -> str:
    stacks = sorted(stacks, key=lambda r: r.get("samples", 0), reverse=True)
    total = max((r.get("total_samples", 0) for r in stacks), default=0) or 1
    lines = []
    for r in stacks[:top]:
        share = 100.0 * r.get("samples", 0) / total
        stack = r.get("stack", "")
        # Deep stacks are noise in a text report: keep the last 4 frames.
        frames = stack.split(";")
        shown = ";".join(frames[-4:]) if len(frames) > 4 else stack
        if len(frames) > 4:
            shown = "...;" + shown
        lines.append(f"{share:5.1f}%  {shown}")
    return "\n".join(lines)


_FUSED_OPS = (
    "lstm_cell_fused",
    "gru_cell_fused",
    "lstm_scan_fused",
    "gru_scan_fused",
)


def _fused_kernel_share(ops: list[dict]) -> str | None:
    """One-line attribution of op time to the fused recurrent kernels.

    With ``repro.nn.kernels`` active, the recurrent elementwise primitives
    (sigmoid/tanh/mul/getitem per timestep) vanish from the profile and
    their time lands on ``lstm_cell_fused`` / ``gru_cell_fused``; this line
    makes that attribution explicit in the report.
    """
    total = sum(r.get("total_ms", 0.0) for r in ops)
    fused = [r for r in ops if r.get("op") in _FUSED_OPS]
    if not fused or total <= 0:
        return None
    fused_ms = sum(r.get("total_ms", 0.0) for r in fused)
    names = ", ".join(sorted(r.get("op", "?") for r in fused))
    return (
        f"fused kernels ({names}): {fused_ms:.2f} ms — "
        f"{100.0 * fused_ms / total:.1f}% of profiled op time"
    )


def _infer_dispatch_share(ops: list[dict]) -> str | None:
    """One-line attribution of op time to the tape-free inference path.

    Kernels from ``repro.nn.inference`` report under ``dispatch=infer``
    (no backward column — there is no tape); this line shows how much of
    the profiled op time ran on that path.
    """
    total = sum(r.get("total_ms", 0.0) for r in ops)
    infer = [r for r in ops if r.get("dispatch") == "infer"]
    if not infer or total <= 0:
        return None
    infer_ms = sum(r.get("total_ms", 0.0) for r in infer)
    calls = sum(int(r.get("forward_calls", 0)) for r in infer)
    return (
        f"dispatch=infer ({len(infer)} kernels, {calls} calls): "
        f"{infer_ms:.2f} ms — {100.0 * infer_ms / total:.1f}% of profiled op time"
    )


def report_path(path: str | Path, top: int = 10) -> str:
    return render_report(read_jsonl(path), top=top)


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.obs.report <run.jsonl> [top_n]")
        return 0 if argv else 2
    try:
        top = int(argv[1]) if len(argv) > 1 else 10
    except ValueError:
        print(f"error: top_n must be an integer, got {argv[1]!r}", file=sys.stderr)
        return 2
    try:
        print(report_path(argv[0], top=top))
    except FileNotFoundError:
        print(f"error: no such run log: {argv[0]}", file=sys.stderr)
        return 1
    except ValueError as exc:  # malformed JSONL line (json.JSONDecodeError)
        print(f"error: {argv[0]} is not valid JSONL: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. piped into head
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
