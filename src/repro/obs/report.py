"""Render a human-readable summary of a JSONL run log.

Usage::

    python -m repro.obs.report run.jsonl

Sections (each skipped when the log has no matching events):

- run header — run id, event count, wall-clock extent;
- loss curve — one row per ``train.epoch`` event;
- evaluation results — one row per ``eval.result`` event;
- slowest spans — ``span`` summary events sorted by total time;
- top autograd ops — ``autograd.op`` events sorted by total time.

Programmatic entry points: :func:`render_report` on already-loaded records,
:func:`report_path` for a file.
"""

from __future__ import annotations

import sys
from pathlib import Path

from .runlog import read_jsonl

__all__ = ["render_report", "report_path", "main"]


def _format_cell(value, precision: int = 4) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def _format_table(rows: list[dict], columns: list[str], precision: int = 4) -> str:
    """Minimal fixed-width table over a list of dict rows."""
    cells = [
        [_format_cell(row.get(col, ""), precision) for col in columns]
        for row in rows
    ]
    widths = [
        max(len(col), *(len(line[i]) for line in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
    divider = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
        for line in cells
    ]
    return "\n".join([header, divider, *body])


def _section(title: str, body: str) -> str:
    return f"{title}\n{body}"


def render_report(records: list[dict], top: int = 10) -> str:
    """Build the full text report from loaded run-log records."""
    if not records:
        return "(empty run log)"
    sections: list[str] = []

    run_ids = sorted({r.get("run_id", "?") for r in records})
    timestamps = [r["ts"] for r in records if isinstance(r.get("ts"), (int, float))]
    extent = (max(timestamps) - min(timestamps)) if len(timestamps) > 1 else 0.0
    sections.append(
        f"run {', '.join(run_ids)} — {len(records)} events, "
        f"{extent:.2f}s wall-clock extent"
    )

    epochs = [r for r in records if r.get("event") == "train.epoch"]
    if epochs:
        sections.append(
            _section(
                "Training loss curve",
                _format_table(
                    epochs,
                    ["epoch", "loss", "grad_norm", "lists_per_sec", "epoch_s"],
                ),
            )
        )

    evals = [r for r in records if r.get("event") == "eval.result"]
    if evals:
        metric_keys = sorted(
            {k for r in evals for k in r if "@" in k}
        )
        sections.append(
            _section(
                "Evaluation results",
                _format_table(evals, ["model", *metric_keys]),
            )
        )

    spans = [r for r in records if r.get("event") == "span"]
    if spans:
        spans = sorted(spans, key=lambda r: r.get("total_ms", 0.0), reverse=True)
        sections.append(
            _section(
                f"Slowest spans (top {top})",
                _format_table(
                    spans[:top],
                    ["path", "count", "total_ms", "mean_ms"],
                    precision=2,
                ),
            )
        )

    ops = [r for r in records if r.get("event") == "autograd.op"]
    if ops:
        ops = sorted(ops, key=lambda r: r.get("total_ms", 0.0), reverse=True)
        body = _format_table(
            ops[:top],
            [
                "op",
                "forward_calls",
                "forward_ms",
                "backward_calls",
                "backward_ms",
                "total_ms",
            ],
            precision=2,
        )
        fused_line = _fused_kernel_share(ops)
        if fused_line:
            body = f"{body}\n{fused_line}"
        sections.append(_section(f"Top autograd ops (top {top})", body))

    return "\n\n".join(sections)


_FUSED_OPS = (
    "lstm_cell_fused",
    "gru_cell_fused",
    "lstm_scan_fused",
    "gru_scan_fused",
)


def _fused_kernel_share(ops: list[dict]) -> str | None:
    """One-line attribution of op time to the fused recurrent kernels.

    With ``repro.nn.kernels`` active, the recurrent elementwise primitives
    (sigmoid/tanh/mul/getitem per timestep) vanish from the profile and
    their time lands on ``lstm_cell_fused`` / ``gru_cell_fused``; this line
    makes that attribution explicit in the report.
    """
    total = sum(r.get("total_ms", 0.0) for r in ops)
    fused = [r for r in ops if r.get("op") in _FUSED_OPS]
    if not fused or total <= 0:
        return None
    fused_ms = sum(r.get("total_ms", 0.0) for r in fused)
    names = ", ".join(sorted(r.get("op", "?") for r in fused))
    return (
        f"fused kernels ({names}): {fused_ms:.2f} ms — "
        f"{100.0 * fused_ms / total:.1f}% of profiled op time"
    )


def report_path(path: str | Path, top: int = 10) -> str:
    return render_report(read_jsonl(path), top=top)


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.obs.report <run.jsonl> [top_n]")
        return 0 if argv else 2
    try:
        top = int(argv[1]) if len(argv) > 1 else 10
    except ValueError:
        print(f"error: top_n must be an integer, got {argv[1]!r}", file=sys.stderr)
        return 2
    try:
        print(report_path(argv[0], top=top))
    except FileNotFoundError:
        print(f"error: no such run log: {argv[0]}", file=sys.stderr)
        return 1
    except ValueError as exc:  # malformed JSONL line (json.JSONDecodeError)
        print(f"error: {argv[0]} is not valid JSONL: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. piped into head
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
