"""Benchmark-regression sentinel over ``benchmarks/results/trajectory.jsonl``.

The benchmark trajectory accumulates a short history per benchmark tag
(see ``benchmarks/bench_utils.append_trajectory``); until now nothing read
it back, so a perf regression would ship silently.  This module compares
the **newest** entry of each tag against the **previous** entry and exits
nonzero when a tracked quantity regressed beyond a noise band::

    python -m repro.obs.regress                    # auto-locate trajectory
    python -m repro.obs.regress path/to/t.jsonl --band 0.10 --tag obs_v2

What is compared (recursively, including per-op rows inside ``ops``
lists, which flatten to ``ops.<op>.<field>``):

- **lower-is-better**: fields whose name contains ``ms`` as a component
  (``median_ms``, ``train_ms_per_batch``, ``rerank_latency_ms`` ...);
- **higher-is-better**: fields containing ``speedup``, ``per_sec``,
  ``throughput``, or ``qps``;
- everything else (overhead *fractions*, counts, notes) is ignored — the
  fractions are hard-gated by the benchmarks themselves and are pure
  noise near zero, where a relative band is meaningless.

The noise band is sized for the repo's measurement protocol: benches
record **interleaved min-of-k** latencies (see ``bench_utils``), whose
noise is one-sided — a min can only be too *slow*, never too fast — so a
moderate relative band (default 10%) plus a small absolute floor
(``--floor``, default 0.05 ms) suffices without a paired t-test.  Records
measured on different machines need a wider band (``--band 0.5``).

``benchmarks/bench_utils.publish_benchmark`` runs this check after every
publish and prints the verdict (strict mode via ``REPRO_BENCH_REGRESS=
strict``), and a tier-1 smoke test keeps the checked-in trajectory clean.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Regression",
    "RegressionReport",
    "flatten_metrics",
    "compare_records",
    "check_trajectory",
    "find_trajectory",
    "main",
]

LOWER_IS_BETTER_TOKENS = ("ms",)
HIGHER_IS_BETTER_TOKENS = ("speedup", "per_sec", "throughput", "qps")
DEFAULT_BAND = 0.10
DEFAULT_FLOOR_MS = 0.05


@dataclass(frozen=True)
class Regression:
    """One metric that moved the wrong way beyond the noise band."""

    tag: str
    metric: str
    prior: float
    current: float
    direction: str  # "lower_is_better" | "higher_is_better"

    @property
    def change_fraction(self) -> float:
        if self.prior == 0:
            return float("inf")
        return self.current / self.prior - 1.0

    def describe(self) -> str:
        arrow = "↑" if self.direction == "lower_is_better" else "↓"
        return (
            f"{self.tag}: {self.metric} {arrow} "
            f"{self.prior:.4g} -> {self.current:.4g} "
            f"({100.0 * self.change_fraction:+.1f}%)"
        )


@dataclass
class RegressionReport:
    """Everything one sentinel run found."""

    regressions: list[Regression]
    improvements: list[Regression]
    compared_tags: list[str]
    skipped_tags: list[str]  # fewer than two entries — nothing to compare

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        lines = []
        if self.compared_tags:
            lines.append(
                f"compared {len(self.compared_tags)} tag(s): "
                f"{', '.join(self.compared_tags)}"
            )
        if self.skipped_tags:
            lines.append(
                f"skipped (single entry): {', '.join(self.skipped_tags)}"
            )
        for row in self.regressions:
            lines.append(f"REGRESSION  {row.describe()}")
        for row in self.improvements:
            lines.append(f"improved    {row.describe()}")
        lines.append(
            "verdict: "
            + ("OK — no regressions" if self.ok else
               f"{len(self.regressions)} regression(s)")
        )
        return "\n".join(lines)


def _direction(key: str) -> str | None:
    """Classify a flattened metric key, or None when untracked."""
    # Match tokens against whole "_"-separated components (so "ms" hits
    # "median_ms" but not "milliseconds"); padding with "_" lets compound
    # tokens like "per_sec" span component boundaries.
    padded = "_" + key.lower().replace(".", "_") + "_"
    if any(f"_{token}_" in padded for token in HIGHER_IS_BETTER_TOKENS):
        return "higher_is_better"
    # "fraction" fields mention ms-adjacent names but are gated elsewhere.
    if "_fraction_" in padded:
        return None
    if any(f"_{token}_" in padded for token in LOWER_IS_BETTER_TOKENS):
        return "lower_is_better"
    return None


def flatten_metrics(record: dict, prefix: str = "") -> dict[str, float]:
    """Tracked numeric fields of a trajectory record, flattened.

    Lists of dicts carrying an ``op`` (or ``name``) field — the shape the
    kernel bench uses — flatten to ``<list>.<op>.<field>``; other
    structure is ignored.
    """
    flat: dict[str, float] = {}
    for key, value in record.items():
        if key == "tag":
            continue
        path = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            if _direction(key) is not None:
                flat[path] = float(value)
        elif isinstance(value, dict):
            flat.update(flatten_metrics(value, prefix=f"{path}."))
        elif isinstance(value, list):
            for row in value:
                if isinstance(row, dict):
                    label = row.get("op") or row.get("name")
                    if label is None:
                        continue
                    flat.update(
                        flatten_metrics(
                            {k: v for k, v in row.items() if k not in ("op", "name")},
                            prefix=f"{path}.{label}.",
                        )
                    )
    return flat


def compare_records(
    prior: dict,
    current: dict,
    band: float = DEFAULT_BAND,
    floor: float = DEFAULT_FLOOR_MS,
) -> tuple[list[Regression], list[Regression]]:
    """(regressions, improvements) between two records of one tag.

    A lower-is-better metric regresses when
    ``current > prior * (1 + band) + floor``; higher-is-better when
    ``current < prior * (1 - band)``.  Metrics present in only one record
    are skipped — a bench gaining or dropping a field is not a regression.
    """
    tag = str(current.get("tag", prior.get("tag", "?")))
    prior_flat = flatten_metrics(prior)
    current_flat = flatten_metrics(current)
    regressions: list[Regression] = []
    improvements: list[Regression] = []
    for key in sorted(set(prior_flat) & set(current_flat)):
        direction = _direction(key.rsplit(".", 1)[-1])
        if direction is None:
            continue
        before, after = prior_flat[key], current_flat[key]
        row = Regression(
            tag=tag, metric=key, prior=before, current=after, direction=direction
        )
        if direction == "lower_is_better":
            if after > before * (1.0 + band) + floor:
                regressions.append(row)
            elif after < before * (1.0 - band) - floor:
                improvements.append(row)
        else:
            if after < before * (1.0 - band):
                regressions.append(row)
            elif after > before * (1.0 + band):
                improvements.append(row)
    return regressions, improvements


def _read_trajectory(path: Path) -> list[dict]:
    records = []
    for line in path.read_text().splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records


def check_trajectory(
    path: str | Path,
    band: float = DEFAULT_BAND,
    floor: float = DEFAULT_FLOOR_MS,
    tags: "list[str] | None" = None,
) -> RegressionReport:
    """Run the sentinel over every tag (or just ``tags``) in a trajectory."""
    records = _read_trajectory(Path(path))
    by_tag: dict[str, list[dict]] = {}
    for record in records:  # file order is chronological per tag
        by_tag.setdefault(str(record.get("tag", "?")), []).append(record)
    regressions: list[Regression] = []
    improvements: list[Regression] = []
    compared: list[str] = []
    skipped: list[str] = []
    for tag, entries in sorted(by_tag.items()):
        if tags is not None and tag not in tags:
            continue
        if len(entries) < 2:
            skipped.append(tag)
            continue
        compared.append(tag)
        worse, better = compare_records(
            entries[-2], entries[-1], band=band, floor=floor
        )
        regressions.extend(worse)
        improvements.extend(better)
    return RegressionReport(
        regressions=regressions,
        improvements=improvements,
        compared_tags=compared,
        skipped_tags=skipped,
    )


def find_trajectory(start: str | Path = ".") -> Path | None:
    """Locate ``benchmarks/results/trajectory.jsonl`` at or above ``start``."""
    current = Path(start).resolve()
    for directory in (current, *current.parents):
        candidate = directory / "benchmarks" / "results" / "trajectory.jsonl"
        if candidate.exists():
            return candidate
    return None


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Compare the newest benchmark trajectory entries against "
        "their predecessors; exit 1 on regression.",
    )
    parser.add_argument(
        "trajectory",
        nargs="?",
        default=None,
        help="path to trajectory.jsonl (default: auto-locate upward from cwd)",
    )
    parser.add_argument(
        "--band",
        type=float,
        default=DEFAULT_BAND,
        help=f"relative noise band (default {DEFAULT_BAND:.0%})",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR_MS,
        help="absolute floor for lower-is-better metrics, in the metric's "
        f"own unit (default {DEFAULT_FLOOR_MS})",
    )
    parser.add_argument(
        "--tag", action="append", default=None, help="only check these tag(s)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="explicit alias of the default behavior (for workflow wiring)",
    )
    args = parser.parse_args(argv)

    path = Path(args.trajectory) if args.trajectory else find_trajectory()
    if path is None or not path.exists():
        print(
            "error: no trajectory.jsonl found "
            "(pass a path or run from inside the repo)",
            file=sys.stderr,
        )
        return 2
    try:
        report = check_trajectory(
            path, band=args.band, floor=args.floor, tags=args.tag
        )
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSONL: {exc}", file=sys.stderr)
        return 2
    print(f"trajectory: {path}")
    print(report.format())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
