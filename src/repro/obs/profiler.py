"""Opt-in background stack-sampling profiler with collapsed-stack export.

The autograd op profiler (:mod:`repro.obs.autograd`) answers "which tensor
op is slow"; this profiler answers "where does *wall time* go across the
whole process" — numpy internals, data prep, serialization, lock waits —
by sampling every thread's Python stack at a fixed rate from a daemon
thread (``sys._current_frames``).  Nothing is patched and no per-call
hooks exist: the cost while **stopped is zero**, and while running it is
one stack walk per thread per tick (~``hz`` Hz).

Samples aggregate into collapsed-stack lines — ``outer;inner;leaf 42`` —
the input format of every flamegraph renderer (inferno, speedscope,
flamegraph.pl), also rendered as a text summary by
``python -m repro.obs.report``.

Usage::

    with sampling_profile(hz=97) as profiler:
        run_workload()
    print(profiler.format_top())
    profiler.write_collapsed("profile.folded")

or imperatively via :func:`start_sampling` / :func:`stop_sampling` (the
module-global profiler is what :func:`repro.obs.flush_observability`
drains into ``profiler.stack`` run-log events).

The default rate (97 Hz) is prime, so periodic workloads are unlikely to
alias with the sampler.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "SamplingProfiler",
    "sampling_profile",
    "start_sampling",
    "stop_sampling",
    "get_profiler",
]


def _frame_label(frame) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", Path(code.co_filename).stem)
    # co_qualname needs 3.11; the repo floor is 3.10, so fall back to co_name.
    return f"{module}.{getattr(code, 'co_qualname', code.co_name)}"


class SamplingProfiler:
    """Samples all Python threads' stacks into collapsed-stack counts."""

    def __init__(
        self, hz: float = 97.0, max_depth: int = 128, clock=time.perf_counter
    ) -> None:
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.hz = float(hz)
        self.max_depth = max_depth
        self._clock = clock
        self._lock = threading.Lock()
        self._stacks: dict[tuple[str, ...], int] = {}
        self._samples = 0
        self._ticks = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self.elapsed_s = 0.0

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self._stop.clear()
        self._started_at = self._clock()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self._started_at is not None:
            self.elapsed_s += self._clock() - self._started_at
            self._started_at = None
        return self

    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_id = threading.get_ident()
        while not self._stop.wait(interval):
            self.sample_once(skip_thread=own_id)

    def sample_once(self, skip_thread: int | None = None) -> None:
        """Take one sample of every live thread (the sampler's inner step).

        Public so tests (and pause-aware harnesses) can drive sampling
        deterministically without a background thread.
        """
        frames = sys._current_frames()
        with self._lock:
            self._ticks += 1
            for thread_id, frame in frames.items():
                if thread_id == skip_thread:
                    continue
                stack: list[str] = []
                depth = 0
                while frame is not None and depth < self.max_depth:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                    depth += 1
                if not stack:
                    continue
                stack.reverse()  # root first — collapsed-stack order
                key = tuple(stack)
                self._stacks[key] = self._stacks.get(key, 0) + 1
                self._samples += 1

    def reset(self) -> None:
        with self._lock:
            self._stacks.clear()
            self._samples = 0
            self._ticks = 0
        self.elapsed_s = 0.0

    # -- exports -------------------------------------------------------
    @property
    def samples(self) -> int:
        return self._samples

    def stack_counts(self) -> list[tuple[tuple[str, ...], int]]:
        """(stack, count) pairs, most-sampled first."""
        with self._lock:
            items = list(self._stacks.items())
        items.sort(key=lambda kv: kv[1], reverse=True)
        return items

    def collapsed(self) -> str:
        """Collapsed-stack text: one ``frame;frame;leaf count`` line each."""
        return "\n".join(
            f"{';'.join(stack)} {count}" for stack, count in self.stack_counts()
        )

    def write_collapsed(self, path: str | Path) -> Path:
        """Write :meth:`collapsed` output (flamegraph renderer input)."""
        from ..utils.atomicio import atomic_write_bytes

        text = self.collapsed()
        return atomic_write_bytes(
            Path(path), (text + "\n").encode("utf-8"), fsync=False
        )

    def top_functions(self, n: int = 10) -> list[tuple[str, int]]:
        """Leaf-frame (self-time) sample counts, descending."""
        leaves: dict[str, int] = {}
        for stack, count in self.stack_counts():
            leaves[stack[-1]] = leaves.get(stack[-1], 0) + count
        return sorted(leaves.items(), key=lambda kv: kv[1], reverse=True)[:n]

    def format_top(self, n: int = 10) -> str:
        """Human-readable summary: total samples + hottest leaf frames."""
        lines = [
            f"{self._samples} samples over {self.elapsed_s:.2f}s "
            f"(~{self.hz:.0f} Hz target)"
        ]
        total = max(self._samples, 1)
        for label, count in self.top_functions(n):
            lines.append(f"  {100.0 * count / total:5.1f}%  {label}")
        return "\n".join(lines)


_GLOBAL_PROFILER: SamplingProfiler | None = None


def get_profiler() -> SamplingProfiler | None:
    """The module-global profiler, if one was ever started (else ``None``)."""
    return _GLOBAL_PROFILER


def start_sampling(hz: float = 97.0) -> SamplingProfiler:
    """Start (or resume) the module-global sampling profiler."""
    global _GLOBAL_PROFILER
    if _GLOBAL_PROFILER is None or _GLOBAL_PROFILER.hz != hz:
        if _GLOBAL_PROFILER is not None:
            _GLOBAL_PROFILER.stop()
        _GLOBAL_PROFILER = SamplingProfiler(hz=hz)
    return _GLOBAL_PROFILER.start()


def stop_sampling() -> SamplingProfiler | None:
    """Stop the module-global profiler; returns it for reading, if any."""
    if _GLOBAL_PROFILER is not None:
        _GLOBAL_PROFILER.stop()
    return _GLOBAL_PROFILER


@contextmanager
def sampling_profile(hz: float = 97.0, reset: bool = True):
    """Profile a block with the module-global sampler; yields the profiler."""
    profiler = start_sampling(hz=hz)
    if reset:
        profiler.reset()
    try:
        yield profiler
    finally:
        profiler.stop()
