"""Opt-in autograd op profiler for ``repro.nn.tensor``.

When enabled, every op listed in :data:`repro.nn.tensor.PROFILED_OPS` is
hooked at its dispatch point: the forward call is timed and counted, and
the backward closure the op registers on its output tensor is wrapped so
backward time is attributed to the op that created it.  Stats accumulate
in-process and are mirrored into the metrics registry as gauges
(``autograd.op.forward_calls{op=...}``, ``autograd.op.forward_ms{op=...}``,
and the ``backward_*`` twins) by :func:`op_stats`.

Timing is *inclusive*: composite ops (``mean`` calls ``sum`` and ``mul``)
record their own wall time and their primitives record theirs, so the
per-op numbers answer "where does time go through this call site", not a
disjoint partition.  Backward time lands on the innermost primitive that
registered the closure.

The profiler is strictly opt-in — nothing is patched at import time, so the
disabled-path cost is zero.  Usage::

    with profile_ops():
        loss = model(batch); loss.backward()
    for row in op_stats()[:10]:
        print(row)
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = [
    "enable_op_profiler",
    "disable_op_profiler",
    "profile_ops",
    "op_stats",
    "record_infer_op",
    "reset_op_stats",
    "is_op_profiler_enabled",
]

_lock = threading.Lock()
# op name -> [forward_calls, forward_seconds, backward_calls, backward_seconds]
_stats: dict[str, list[float]] = {}
# Tape-free kernels (repro.nn.inference) report separately so the report
# can show how much serving time runs under dispatch=infer.
_infer_stats: dict[str, list[float]] = {}
_originals: dict[str, object] = {}
_enabled = False


def _record(op: str, phase_index: int, seconds: float) -> None:
    with _lock:
        row = _stats.get(op)
        if row is None:
            row = _stats[op] = [0, 0.0, 0, 0.0]
        row[phase_index] += 1
        row[phase_index + 1] += seconds


def record_infer_op(op: str, seconds: float) -> None:
    """Hook installed on ``repro.nn.inference`` while the profiler is on."""
    with _lock:
        row = _infer_stats.get(op)
        if row is None:
            row = _infer_stats[op] = [0, 0.0]
        row[0] += 1
        row[1] += seconds


def _display_name(method_name: str) -> str:
    return method_name.strip("_")


def _wrap_forward(op: str, fn):
    from ..nn.tensor import Tensor

    def _hook_backward(result):
        if (
            isinstance(result, Tensor)
            and result._backward is not None
            and not getattr(result._backward, "_obs_profiled", False)
        ):
            inner = result._backward

            def profiled_backward(grad):
                t0 = time.perf_counter()
                inner(grad)
                _record(op, 2, time.perf_counter() - t0)

            profiled_backward._obs_profiled = True
            result._backward = profiled_backward

    def profiled(*args, **kwargs):
        start = time.perf_counter()
        out = fn(*args, **kwargs)
        _record(op, 0, time.perf_counter() - start)
        # Fused kernels (e.g. lstm_cell_fused) return a tuple of outputs;
        # each output carries its own closure, all attributed to this op.
        if isinstance(out, tuple):
            for element in out:
                _hook_backward(element)
        else:
            _hook_backward(out)
        return out

    profiled._obs_profiled_op = op
    profiled._obs_original = fn
    return profiled


def is_op_profiler_enabled() -> bool:
    return _enabled


def enable_op_profiler() -> None:
    """Patch the profiling hook onto every op in ``PROFILED_OPS`` (idempotent)."""
    global _enabled
    from ..nn import inference
    from ..nn.tensor import install_op_wrappers

    with _lock:
        if _enabled:
            return
        _enabled = True
    _originals.update(
        install_op_wrappers(
            lambda name, fn: _wrap_forward(_display_name(name), fn)
        )
    )
    inference._PROFILE_HOOK = record_infer_op


def disable_op_profiler() -> None:
    """Restore the unpatched ops; accumulated stats are kept until reset."""
    global _enabled
    from ..nn import inference
    from ..nn.tensor import restore_ops

    with _lock:
        if not _enabled:
            return
        _enabled = False
    restore_ops(_originals)
    _originals.clear()
    inference._PROFILE_HOOK = None


def reset_op_stats() -> None:
    with _lock:
        _stats.clear()
        _infer_stats.clear()


@contextmanager
def profile_ops(reset: bool = True):
    """Enable the profiler for a block; yields nothing, read :func:`op_stats`."""
    if reset:
        reset_op_stats()
    enable_op_profiler()
    try:
        yield
    finally:
        disable_op_profiler()


def op_stats(registry=None) -> list[dict]:
    """Per-op stats sorted by total (forward + backward) time, descending.

    Also mirrors every row into ``registry`` (the process-global one by
    default) as idempotent gauges, so a metrics snapshot carries the
    profile.
    """
    from .metrics import get_registry

    registry = registry if registry is not None else get_registry()
    with _lock:
        rows = {op: list(row) for op, row in _stats.items()}
        infer_rows = {op: list(row) for op, row in _infer_stats.items()}
    result = []
    for op, (f_calls, f_s, b_calls, b_s) in rows.items():
        result.append(
            {
                "op": op,
                "dispatch": "tape",
                "forward_calls": int(f_calls),
                "forward_ms": 1000.0 * f_s,
                "backward_calls": int(b_calls),
                "backward_ms": 1000.0 * b_s,
                "total_ms": 1000.0 * (f_s + b_s),
            }
        )
        registry.gauge("autograd.op.forward_calls", op=op).set(f_calls)
        registry.gauge("autograd.op.forward_ms", op=op).set(1000.0 * f_s)
        registry.gauge("autograd.op.backward_calls", op=op).set(b_calls)
        registry.gauge("autograd.op.backward_ms", op=op).set(1000.0 * b_s)
    for op, (calls, seconds) in infer_rows.items():
        result.append(
            {
                "op": op,
                "dispatch": "infer",
                "forward_calls": int(calls),
                "forward_ms": 1000.0 * seconds,
                "backward_calls": 0,
                "backward_ms": 0.0,
                "total_ms": 1000.0 * seconds,
            }
        )
        registry.gauge("autograd.op.infer_calls", op=op).set(calls)
        registry.gauge("autograd.op.infer_ms", op=op).set(1000.0 * seconds)
    result.sort(key=lambda r: r["total_ms"], reverse=True)
    return result
