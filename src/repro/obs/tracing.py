"""Span-based tracing: nested wall-clock spans with tree and Chrome export.

``trace("train.epoch")`` works both as a context manager and as a
decorator.  Spans nest via a per-thread stack, survive exceptions (the
span is closed, flagged with the error, and the exception propagates), and
finished root spans accumulate on the process-global :class:`Tracer` until
:func:`reset_tracer`.

Exports:

- :meth:`Tracer.format_tree` — indented text tree with durations;
- :meth:`Tracer.to_chrome_trace` — ``trace_event`` records loadable in
  ``chrome://tracing`` / Perfetto (``json.dump`` the returned list).
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
import time
import uuid

__all__ = ["Span", "Tracer", "trace", "get_tracer", "reset_tracer"]

# Span ids are "<pid>-<counter>" in hex: unique within a process by the
# counter, across processes by the pid — cheap enough for hot-loop spans.
# Trace ids (minted only at un-parented roots) are full uuid4 hex.
_SPAN_IDS = itertools.count(1)

# Per-thread ambient parent context: ``(trace_id, span_id)`` installed by
# :func:`repro.obs.context.use_context` so root spans opened in a worker
# thread/process link back to the remote parent span.
_AMBIENT = threading.local()


def _new_span_id() -> str:
    return f"{os.getpid():x}-{next(_SPAN_IDS):x}"


class Span:
    """One timed region; children are spans opened while it was active."""

    __slots__ = (
        "name",
        "start_s",
        "end_s",
        "wall_start",
        "children",
        "error",
        "thread_id",
        "is_root",
        "trace_id",
        "span_id",
        "parent_id",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.start_s = time.perf_counter()
        self.wall_start = time.time()
        self.end_s: float | None = None
        self.children: list[Span] = []
        self.error: str | None = None
        self.thread_id = threading.get_ident()
        self.is_root = False
        self.trace_id: str | None = None
        self.span_id = _new_span_id()
        self.parent_id: str | None = None

    def finish(self, error: str | None = None) -> None:
        if self.end_s is None:
            self.end_s = time.perf_counter()
            self.error = error

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s

    @property
    def duration_ms(self) -> float:
        return 1000.0 * self.duration_s

    def walk(self, depth: int = 0, path: str = ""):
        """Yield ``(span, depth, path)`` depth-first; path joins names with '/'."""
        path = f"{path}/{self.name}" if path else self.name
        yield self, depth, path
        for child in self.children:
            yield from child.walk(depth + 1, path)

    def __repr__(self) -> str:
        status = " !error" if self.error else ""
        return f"Span({self.name!r}, {self.duration_ms:.2f}ms{status})"


class Tracer:
    """Collects finished span trees; one global instance via :func:`get_tracer`.

    ``max_roots`` bounds retained memory on long-lived processes: once the
    limit is hit, new root spans are still timed but dropped on finish (a
    counter tracks how many).
    """

    def __init__(self, max_roots: int = 10_000) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: list[Span] = []
        self.max_roots = max_roots
        self.dropped_roots = 0

    # -- span stack ----------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def push(self, name: str) -> Span:
        span = Span(name)
        stack = self._stack()
        if stack:
            parent = stack[-1]
            parent.children.append(span)
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        else:
            span.is_root = True
            ambient = getattr(_AMBIENT, "ctx", None)
            if ambient is not None:
                # A remote parent (another thread or process) propagated
                # its context here: join its trace instead of starting one.
                span.trace_id, span.parent_id = ambient
            else:
                span.trace_id = uuid.uuid4().hex
        stack.append(span)
        return span

    def pop(self, span: Span, error: str | None = None) -> None:
        span.finish(error)
        stack = self._stack()
        # Unwind to (and including) this span; spans abandoned by a
        # mismatched exit are closed so durations stay meaningful.
        while stack:
            top = stack.pop()
            if top is span:
                break
            top.finish("unwound")
        if span.is_root:
            self._record_root(span)

    def _record_root(self, span: Span) -> None:
        with self._lock:
            if len(self.roots) >= self.max_roots:
                self.dropped_roots += 1
            else:
                self.roots.append(span)

    # -- exports -------------------------------------------------------
    def walk(self):
        """Yield ``(span, depth, path)`` over every finished root tree."""
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            yield from root.walk()

    def format_tree(self) -> str:
        lines = []
        for span, depth, _ in self.walk():
            error = "  [error]" if span.error else ""
            lines.append(
                f"{'  ' * depth}{span.name}  {span.duration_ms:.2f} ms{error}"
            )
        return "\n".join(lines)

    def to_chrome_trace(self) -> list[dict]:
        """Complete-event (``ph == "X"``) records in chrome tracing format."""
        events = []
        for span, _, _ in self.walk():
            offset_s = span.start_s
            break
        else:
            return []
        pid = os.getpid()
        for span, _, _ in self.walk():
            args = {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
            }
            if span.error:
                args["error"] = span.error
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start_s - offset_s) * 1e6,
                    "dur": span.duration_s * 1e6,
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": args,
                }
            )
        return events

    def reset(self) -> None:
        with self._lock:
            self.roots.clear()
            self.dropped_roots = 0
        self._local = threading.local()


class _TraceHandle:
    """Context manager *and* decorator returned by :func:`trace`."""

    __slots__ = ("name", "tracer", "_span")

    def __init__(self, name: str, tracer: Tracer | None = None) -> None:
        self.name = name
        self.tracer = tracer
        self._span: Span | None = None

    def _resolve(self) -> Tracer:
        return self.tracer if self.tracer is not None else get_tracer()

    def __enter__(self) -> Span:
        self._span = self._resolve().push(self.name)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        error = None if exc_type is None else f"{exc_type.__name__}: {exc}"
        self._resolve().pop(self._span, error)
        self._span = None
        return False  # propagate exceptions

    def __call__(self, fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with _TraceHandle(self.name, self.tracer):
                return fn(*args, **kwargs)

        return wrapper


def trace(name: str, tracer: Tracer | None = None) -> _TraceHandle:
    """Open a named span: ``with trace("x"): ...`` or ``@trace("x")``."""
    return _TraceHandle(name, tracer)


_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """Return the process-global tracer used by built-in instrumentation."""
    return _GLOBAL_TRACER


def reset_tracer() -> None:
    """Drop all recorded spans on the process-global tracer."""
    _GLOBAL_TRACER.reset()
