"""Declarative SLOs evaluated as multi-window burn rates over windowed metrics.

An :class:`SLO` states an objective the serving layer must meet — "99% of
rerank requests answer within 50 ms" (latency) or "99.9% of requests are
served by the primary model" (error rate).  An :class:`SLOMonitor` feeds
request outcomes into sliding-window good/bad counters
(:class:`~repro.obs.windows.WindowedCounter`) and evaluates **burn
rates**: with error budget ``1 - target``,

    burn_rate(window) = bad_fraction(window) / (1 - target)

A burn rate of 1 consumes exactly the budget; 14.4 exhausts a 30-day
budget in ~2 days.  Alerting follows the SRE-workbook multi-window rule:
each :class:`BurnWindow` fires only when **both** its long window (the
signal) and its short window (confirmation that the problem is still
happening) exceed the threshold — long-window-only rules keep paging
after recovery, short-only rules page on blips.

Telemetry on every :meth:`SLOMonitor.evaluate`: ``obs.slo.burn_rate``
gauges per window, ``obs.slo.bad_fraction``, the ``obs.slo.state`` gauge
(0 ok / 1 warn / 2 page), and ``slo.alert`` / ``slo.resolve`` run-log
events on state transitions.  The clock is injectable so burn-rate state
transitions are unit-testable without sleeping.

Wiring: :class:`~repro.resilience.degrade.ResilientReranker` accepts an
``slo_monitor`` and records every request's latency plus whether it
degraded to a fallback; :func:`serving_slo` builds the default monitor
for that path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .metrics import MetricsRegistry, get_registry
from .runlog import RunLogger, get_run_logger
from .windows import WindowedCounter

__all__ = [
    "SLO",
    "BurnWindow",
    "SLOStatus",
    "SLOMonitor",
    "serving_slo",
    "DEFAULT_BURN_WINDOWS",
    "SLO_STATE_CODES",
]

SLO_STATE_CODES = {"ok": 0, "warn": 1, "page": 2}


@dataclass(frozen=True)
class SLO:
    """One objective: a target fraction of "good" events.

    With ``latency_threshold_ms`` set, an event is good when it carried a
    latency at or under the threshold (and no error); without it, good is
    simply "not an error" — an error-rate SLO.
    """

    name: str
    target: float = 0.99
    latency_threshold_ms: float | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target


@dataclass(frozen=True)
class BurnWindow:
    """One multi-window alert rule: long signal + short confirmation."""

    severity: str  # "page" or "warn"
    long_s: float
    short_s: float
    max_burn_rate: float

    def __post_init__(self) -> None:
        if self.severity not in SLO_STATE_CODES or self.severity == "ok":
            raise ValueError("severity must be 'warn' or 'page'")
        if self.short_s >= self.long_s:
            raise ValueError("short_s must be shorter than long_s")


# Scaled-down versions of the SRE-workbook 1h/5m + 6h/30m pairs — the
# processes here live minutes, not months, so windows shrink with them.
DEFAULT_BURN_WINDOWS: tuple[BurnWindow, ...] = (
    BurnWindow(severity="page", long_s=300.0, short_s=60.0, max_burn_rate=14.4),
    BurnWindow(severity="warn", long_s=1800.0, short_s=300.0, max_burn_rate=6.0),
)


@dataclass
class SLOStatus:
    """Result of one :meth:`SLOMonitor.evaluate` call."""

    slo: str
    state: str  # "ok" | "warn" | "page"
    burn_rates: dict[float, float] = field(default_factory=dict)
    bad_fractions: dict[float, float] = field(default_factory=dict)
    fired: list[BurnWindow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.state == "ok"


class SLOMonitor:
    """Feeds request outcomes into windowed counters and evaluates burn rates.

    ``min_events`` guards cold windows: a window with fewer events reports
    burn rate 0 (one unlucky request in an empty window is not an outage).
    """

    def __init__(
        self,
        slo: SLO,
        burn_windows: tuple[BurnWindow, ...] = DEFAULT_BURN_WINDOWS,
        min_events: int = 1,
        clock=time.monotonic,
        registry: MetricsRegistry | None = None,
        logger: RunLogger | None = None,
    ) -> None:
        if not burn_windows:
            raise ValueError("at least one BurnWindow is required")
        self.slo = slo
        self.burn_windows = tuple(burn_windows)
        self.min_events = min_events
        self._registry = registry
        self._logger = logger
        self._state = "ok"
        window_lengths = sorted(
            {w.long_s for w in self.burn_windows}
            | {w.short_s for w in self.burn_windows}
        )
        # Bucket span scales with the window so short windows stay sharp.
        self._counts: dict[float, tuple[WindowedCounter, WindowedCounter]] = {
            window_s: (
                WindowedCounter(
                    f"slo.{slo.name}.good", window_s=window_s, clock=clock
                ),
                WindowedCounter(
                    f"slo.{slo.name}.bad", window_s=window_s, clock=clock
                ),
            )
            for window_s in window_lengths
        }

    # -- recording -----------------------------------------------------
    def record(self, latency_ms: float | None = None, error: bool = False) -> None:
        """Record one event outcome into every window."""
        bad = bool(error)
        threshold = self.slo.latency_threshold_ms
        if not bad and threshold is not None and latency_ms is not None:
            bad = latency_ms > threshold
        index = 1 if bad else 0
        for good, bad_counter in self._counts.values():
            (bad_counter if index else good).add()

    def record_error(self) -> None:
        self.record(error=True)

    # -- reading -------------------------------------------------------
    def _window_counts(self, window_s: float) -> tuple[float, float]:
        good, bad = self._counts[window_s]
        return good.total, bad.total

    def bad_fraction(self, window_s: float) -> float:
        good, bad = self._window_counts(window_s)
        total = good + bad
        if total < self.min_events or total == 0:
            return 0.0
        return bad / total

    def burn_rate(self, window_s: float) -> float:
        return self.bad_fraction(window_s) / self.slo.error_budget

    def evaluate(self) -> SLOStatus:
        """Re-read every window, publish gauges, log state transitions."""
        burn_rates = {w: self.burn_rate(w) for w in self._counts}
        bad_fractions = {w: self.bad_fraction(w) for w in self._counts}
        fired = [
            rule
            for rule in self.burn_windows
            if burn_rates[rule.long_s] > rule.max_burn_rate
            and burn_rates[rule.short_s] > rule.max_burn_rate
        ]
        state = "ok"
        for rule in fired:
            if SLO_STATE_CODES[rule.severity] > SLO_STATE_CODES[state]:
                state = rule.severity
        status = SLOStatus(
            slo=self.slo.name,
            state=state,
            burn_rates=burn_rates,
            bad_fractions=bad_fractions,
            fired=fired,
        )
        self._publish(status)
        if state != self._state:
            self._log_transition(status)
            self._state = state
        return status

    @property
    def state(self) -> str:
        """Last evaluated state (does not re-evaluate)."""
        return self._state

    # -- telemetry -----------------------------------------------------
    def _publish(self, status: SLOStatus) -> None:
        registry = self._registry if self._registry is not None else get_registry()
        for window_s, rate in status.burn_rates.items():
            registry.gauge(
                "obs.slo.burn_rate", slo=self.slo.name, window=f"{window_s:g}s"
            ).set(rate)
            registry.gauge(
                "obs.slo.bad_fraction",
                slo=self.slo.name,
                window=f"{window_s:g}s",
            ).set(status.bad_fractions[window_s])
        registry.gauge("obs.slo.state", slo=self.slo.name).set(
            SLO_STATE_CODES[status.state]
        )

    def _log_transition(self, status: SLOStatus) -> None:
        logger = self._logger if self._logger is not None else get_run_logger()
        if not logger.active:
            return
        if status.state == "ok":
            logger.log("slo.resolve", slo=self.slo.name, previous=self._state)
            return
        worst = max(
            status.fired, key=lambda rule: SLO_STATE_CODES[rule.severity]
        )
        logger.log(
            "slo.alert",
            slo=self.slo.name,
            severity=status.state,
            burn_rate_long=status.burn_rates[worst.long_s],
            burn_rate_short=status.burn_rates[worst.short_s],
            long_window_s=worst.long_s,
            short_window_s=worst.short_s,
            target=self.slo.target,
        )


def serving_slo(
    name: str = "rerank-latency",
    latency_threshold_ms: float = 50.0,
    target: float = 0.99,
    min_events: int = 20,
    **monitor_kwargs,
) -> SLOMonitor:
    """The default serving-path monitor for a :class:`ResilientReranker`.

    Good = answered by any stage within ``latency_threshold_ms`` without
    degrading to a fallback; the reranker records both automatically when
    handed this monitor.
    """
    return SLOMonitor(
        SLO(
            name=name,
            target=target,
            latency_threshold_ms=latency_threshold_ms,
            description=(
                f"{100 * target:g}% of requests served by the primary "
                f"within {latency_threshold_ms:g} ms"
            ),
        ),
        min_events=min_events,
        **monitor_kwargs,
    )
