"""``repro.obs`` — observability for the RAPID reproduction stack.

Cooperating pieces (each usable alone):

- :mod:`repro.obs.metrics` — process-global registry of counters, gauges,
  and histograms (p50/p95/p99), with labeled series and a cardinality cap
  (overflow label sets collapse into one ``overflow="true"`` series,
  counted in ``obs.dropped_series``);
- :mod:`repro.obs.windows` — **opt-in** sliding-window histograms and
  EWMA rate meters, so long-lived serving processes report *recent*
  p50/p95/p99 and per-second rates instead of lifetime aggregates;
- :mod:`repro.obs.tracing` — nested wall-clock spans via ``trace(name)``
  with trace/span/parent ids, exportable as a text tree or Chrome
  ``trace_event`` JSON;
- :mod:`repro.obs.context` — trace-context propagation across threads and
  ``multiprocessing`` workers, plus cross-process span-buffer merging
  into one Chrome trace;
- :mod:`repro.obs.runlog` — structured JSONL event log with a **null sink
  by default** and optional size-based rotation, so importing and running
  the library stays silent and free of file I/O until a caller opts in;
- :mod:`repro.obs.export` — OpenMetrics text exposition and periodic
  atomic JSON snapshots of the whole registry;
- :mod:`repro.obs.slo` — declarative SLOs evaluated as multi-window burn
  rates, publishing ``obs.slo.*`` gauges and alert events;
- :mod:`repro.obs.profiler` — opt-in background stack-sampling profiler
  with collapsed-stack (flamegraph) export;
- :mod:`repro.obs.autograd` — opt-in per-op forward/backward profiler for
  the ``repro.nn`` autograd engine;
- :mod:`repro.obs.regress` — benchmark-regression sentinel over
  ``benchmarks/results/trajectory.jsonl`` (``python -m repro.obs.regress``).

The one-liner for scripts is :func:`observed_run`::

    from repro.obs import observed_run

    with observed_run("run.jsonl"):
        train_rapid(model, requests, catalog, population, histories)

    # later: python -m repro.obs.report run.jsonl
"""

from __future__ import annotations

from contextlib import contextmanager

from .autograd import (
    disable_op_profiler,
    enable_op_profiler,
    is_op_profiler_enabled,
    op_stats,
    profile_ops,
    reset_op_stats,
)
from .context import (
    TraceContext,
    current_context,
    merge_span_records,
    propagated,
    span_records,
    use_context,
    write_chrome_trace,
)
from .export import (
    SnapshotExporter,
    render_openmetrics,
    write_openmetrics,
    write_snapshot,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from .profiler import (
    SamplingProfiler,
    get_profiler,
    sampling_profile,
    start_sampling,
    stop_sampling,
)
from .runlog import (
    JsonlSink,
    MemorySink,
    NullSink,
    RunLogger,
    get_run_logger,
    read_jsonl,
    read_jsonl_rotated,
    set_run_logger,
)
from .slo import (
    DEFAULT_BURN_WINDOWS,
    SLO,
    BurnWindow,
    SLOMonitor,
    SLOStatus,
    serving_slo,
)
from .tracing import Span, Tracer, get_tracer, reset_tracer, trace
from .windows import (
    EwmaMeter,
    WindowedCounter,
    WindowedHistogram,
    disable_windowed,
    enable_windowed,
    windowed_enabled,
    windowed_metrics,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "WindowedHistogram",
    "WindowedCounter",
    "EwmaMeter",
    "enable_windowed",
    "disable_windowed",
    "windowed_enabled",
    "windowed_metrics",
    "Span",
    "Tracer",
    "trace",
    "get_tracer",
    "reset_tracer",
    "TraceContext",
    "current_context",
    "use_context",
    "propagated",
    "span_records",
    "merge_span_records",
    "write_chrome_trace",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "RunLogger",
    "get_run_logger",
    "set_run_logger",
    "read_jsonl",
    "read_jsonl_rotated",
    "render_openmetrics",
    "write_openmetrics",
    "write_snapshot",
    "SnapshotExporter",
    "SLO",
    "BurnWindow",
    "SLOMonitor",
    "SLOStatus",
    "serving_slo",
    "DEFAULT_BURN_WINDOWS",
    "SamplingProfiler",
    "sampling_profile",
    "start_sampling",
    "stop_sampling",
    "get_profiler",
    "enable_op_profiler",
    "disable_op_profiler",
    "is_op_profiler_enabled",
    "profile_ops",
    "op_stats",
    "reset_op_stats",
    "flush_observability",
    "observed_run",
]


def flush_observability(logger: RunLogger | None = None) -> None:
    """Dump spans, op stats, profiler stacks, and metrics to the run log.

    Emits one ``span`` event per distinct span path (aggregated count and
    total duration), one ``autograd.op`` event per profiled op, one
    ``profiler.stack`` event per sampled stack (top 50, if the sampling
    profiler ran), and one ``metric`` event per registry series.  A
    null-sink logger makes this a no-op.
    """
    logger = logger if logger is not None else get_run_logger()
    if not logger.active:
        return
    aggregated: dict[str, list[float]] = {}
    for span, _, path in get_tracer().walk():
        row = aggregated.setdefault(path, [0, 0.0])
        row[0] += 1
        row[1] += span.duration_ms
    for path, (count, total_ms) in sorted(
        aggregated.items(), key=lambda kv: kv[1][1], reverse=True
    ):
        logger.log(
            "span",
            name=path.rsplit("/", 1)[-1],
            path=path,
            count=int(count),
            total_ms=total_ms,
            mean_ms=total_ms / count,
        )
    for row in op_stats():
        logger.log("autograd.op", **row)
    profiler = get_profiler()
    if profiler is not None and profiler.samples:
        for stack, count in profiler.stack_counts()[:50]:
            logger.log(
                "profiler.stack",
                stack=";".join(stack),
                leaf=stack[-1],
                samples=count,
                total_samples=profiler.samples,
            )
    for snapshot in get_registry().collect():
        logger.log("metric", **snapshot)


@contextmanager
def observed_run(path=None, run_id: str | None = None, fresh: bool = True):
    """Run a block with observability on, flushing everything at the end.

    Installs a :class:`RunLogger` globally (JSONL at ``path``, or an
    in-memory sink when ``path`` is None), optionally resets the registry
    and tracer so the log describes only this run, and on exit writes the
    span/op/metric summary events before restoring the previous logger.
    """
    sink = JsonlSink(path) if path is not None else MemorySink()
    logger = RunLogger(sink, run_id=run_id)
    if fresh:
        reset_registry()
        reset_tracer()
        reset_op_stats()
    previous = set_run_logger(logger)
    try:
        yield logger
    finally:
        flush_observability(logger)
        set_run_logger(previous)
        logger.close()
