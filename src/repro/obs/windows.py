"""Windowed metrics: sliding-window histograms, counters, and EWMA meters.

The PR 1 registry metrics are *cumulative* — ``rerank.latency_ms`` reports
p95 since process start, which is useless for a serving process that has
been up for a week.  This module adds time-windowed primitives:

- :class:`WindowedHistogram` — a ring of sub-window sample sketches; a
  quantile read merges the sub-windows that still fall inside the sliding
  window, so ``p99`` always describes (roughly) the last ``window_s``
  seconds.  Sub-window granularity bounds the approximation: the effective
  window wobbles by at most one sub-window span.
- :class:`WindowedCounter` — good/bad event counts over the same ring,
  the input to SLO burn rates (:mod:`repro.obs.slo`).
- :class:`EwmaMeter` — exponentially-weighted event rates at several time
  constants (1m/5m/15m by default), Coda-Hale style: rates tick forward
  in fixed intervals and decay toward the instantaneous rate.

All three take an injectable ``clock`` (``time.monotonic`` by default) so
window expiry and EWMA decay are unit-testable without sleeping.

Built-in instrumentation (trainer, evaluation, re-rankers, the resilience
layer) records through the module-level :func:`observe` / :func:`mark`
helpers, which are **opt-in**: until :func:`enable_windowed` is called
they cost one global load and a branch — the disabled path is gated <5%
by ``benchmarks/bench_obs_overhead.py`` alongside the rest of the layer.
Directly-constructed instances (and registry lookups) always record.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager

from .metrics import Labels, _Metric

__all__ = [
    "WindowedHistogram",
    "WindowedCounter",
    "EwmaMeter",
    "enable_windowed",
    "disable_windowed",
    "windowed_enabled",
    "windowed_metrics",
    "observe",
    "mark",
]

_ENABLED = False


def enable_windowed() -> None:
    """Turn on the built-in windowed instrumentation (idempotent)."""
    global _ENABLED
    _ENABLED = True


def disable_windowed() -> None:
    """Turn the built-in windowed instrumentation back off."""
    global _ENABLED
    _ENABLED = False


def windowed_enabled() -> bool:
    return _ENABLED


@contextmanager
def windowed_metrics():
    """Enable windowed instrumentation for a block, restoring the old state."""
    previous = _ENABLED
    enable_windowed()
    try:
        yield
    finally:
        if not previous:
            disable_windowed()


def observe(name: str, value: float, **labels) -> None:
    """Record into the registry's windowed histogram ``name`` — if enabled.

    This is the hook instrumented library code calls on hot paths; the
    disabled cost is one module-global load and a branch.
    """
    if not _ENABLED:
        return
    from .metrics import get_registry

    get_registry().windowed_histogram(name, **labels).observe(value)


def mark(name: str, count: float = 1.0, **labels) -> None:
    """Mark events on the registry's EWMA meter ``name`` — if enabled."""
    if not _ENABLED:
        return
    from .metrics import get_registry

    get_registry().meter(name, **labels).mark(count)


class _Ring:
    """Shared sub-window ring arithmetic (no locking — owners lock)."""

    def __init__(self, window_s: float, buckets: int, clock) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        self.window_s = float(window_s)
        self.buckets = buckets
        self.span_s = self.window_s / buckets
        self.clock = clock
        # One spare slot so the *filling* sub-window never evicts a live one.
        self.slots = buckets + 1
        self.tick = self._tick_now()

    def _tick_now(self) -> int:
        return int(self.clock() / self.span_s)

    def advance(self, clear) -> int:
        """Move to the current tick, calling ``clear(slot)`` on expired slots.

        Returns the slot index of the current (filling) sub-window.
        """
        now_tick = self._tick_now()
        if now_tick != self.tick:
            steps = min(now_tick - self.tick, self.slots)
            for offset in range(1, steps + 1):
                clear((self.tick + offset) % self.slots)
            self.tick = now_tick
        return self.tick % self.slots

    def live_slots(self) -> list[int]:
        """Slot indices still inside the window, oldest first (incl. current)."""
        return [
            (self.tick - age) % self.slots for age in range(self.buckets, -1, -1)
        ]


class WindowedHistogram(_Metric):
    """Sliding-window sample distribution with merged quantile reads.

    Samples land in the current sub-window; reads merge the ``buckets + 1``
    live sub-windows, so the reported window covers between ``window_s``
    and ``window_s + window_s/buckets`` seconds of arrivals.  Each
    sub-window keeps at most ``max_samples_per_bucket`` samples (count and
    sum stay exact; quantiles degrade gracefully via every-other
    decimation, same policy as the cumulative :class:`~.metrics.Histogram`).
    """

    kind = "windowed_histogram"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        window_s: float = 60.0,
        buckets: int = 6,
        max_samples_per_bucket: int = 4096,
        clock=time.monotonic,
    ) -> None:
        super().__init__(name, labels)
        self._ring = _Ring(window_s, buckets, clock)
        self._max_per_bucket = max_samples_per_bucket
        self._samples: list[list[float]] = [[] for _ in range(self._ring.slots)]
        self._counts = [0] * self._ring.slots
        self._sums = [0.0] * self._ring.slots
        self.window_s = self._ring.window_s

    def _clear(self, slot: int) -> None:
        self._samples[slot] = []
        self._counts[slot] = 0
        self._sums[slot] = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            slot = self._ring.advance(self._clear)
            bucket = self._samples[slot]
            if len(bucket) >= self._max_per_bucket:
                self._samples[slot] = bucket = bucket[::2]
            bucket.append(value)
            self._counts[slot] += 1
            self._sums[slot] += value

    def _merged(self) -> list[float]:
        self._ring.advance(self._clear)
        merged: list[float] = []
        for slot in self._ring.live_slots():
            merged.extend(self._samples[slot])
        merged.sort()
        return merged

    @property
    def count(self) -> int:
        """Number of samples observed inside the current window."""
        with self._lock:
            self._ring.advance(self._clear)
            return sum(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            self._ring.advance(self._clear)
            return sum(self._sums)

    @property
    def mean(self) -> float:
        with self._lock:
            self._ring.advance(self._clear)
            count = sum(self._counts)
            return sum(self._sums) / count if count else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile of the samples inside the window."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            samples = self._merged()
        if not samples:
            return 0.0
        position = q * (len(samples) - 1)
        low = int(position)
        high = min(low + 1, len(samples) - 1)
        frac = position - low
        return samples[low] * (1.0 - frac) + samples[high] * frac

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.label_dict,
            "window_s": self.window_s,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class WindowedCounter(_Metric):
    """Event count over a sliding window (the SLO burn-rate input)."""

    kind = "windowed_counter"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        window_s: float = 300.0,
        buckets: int = 10,
        clock=time.monotonic,
    ) -> None:
        super().__init__(name, labels)
        self._ring = _Ring(window_s, buckets, clock)
        self._counts = [0.0] * self._ring.slots
        self._lifetime = 0.0
        self.window_s = self._ring.window_s

    def _clear(self, slot: int) -> None:
        self._counts[slot] = 0.0

    def add(self, count: float = 1.0) -> None:
        if count < 0:
            raise ValueError("windowed counters only accumulate forward")
        with self._lock:
            slot = self._ring.advance(self._clear)
            self._counts[slot] += count
            self._lifetime += count

    @property
    def total(self) -> float:
        """Events inside the current window."""
        with self._lock:
            self._ring.advance(self._clear)
            return sum(self._counts)

    @property
    def lifetime_total(self) -> float:
        return self._lifetime

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.label_dict,
            "window_s": self.window_s,
            "total": self.total,
            "lifetime_total": self._lifetime,
        }


class EwmaMeter(_Metric):
    """Exponentially-weighted event rates at several time constants.

    ``mark(n)`` records events; :meth:`rate` reports events/second decayed
    with ``alpha = 1 - exp(-tick_s / tau)`` per ``tick_s`` interval — the
    same update Coda-Hale meters (and UNIX load averages) use.  Until the
    first full tick elapses, the rate is the lifetime mean rate, so short
    tests and fresh meters read sensibly.
    """

    kind = "meter"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        taus: tuple[float, ...] = (60.0, 300.0, 900.0),
        tick_s: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        if not taus or any(tau <= 0 for tau in taus):
            raise ValueError("taus must be positive")
        super().__init__(name, labels)
        self.taus = tuple(float(t) for t in taus)
        self.tick_s = float(tick_s)
        self._clock = clock
        self._alphas = [1.0 - math.exp(-self.tick_s / tau) for tau in self.taus]
        self._rates = [0.0] * len(self.taus)
        self._primed = False
        self._pending = 0.0
        self._count = 0.0
        self._started = clock()
        self._last_tick = self._started

    def _advance(self) -> None:
        now = self._clock()
        elapsed = now - self._last_tick
        if elapsed < self.tick_s:
            return
        ticks = int(elapsed / self.tick_s)
        instant = self._pending / self.tick_s
        self._pending = 0.0
        for index, alpha in enumerate(self._alphas):
            if not self._primed:
                self._rates[index] = instant
            else:
                self._rates[index] += alpha * (instant - self._rates[index])
        if ticks > 1:
            for index, alpha in enumerate(self._alphas):
                self._rates[index] *= (1.0 - alpha) ** (ticks - 1)
        self._primed = True
        self._last_tick += ticks * self.tick_s

    def mark(self, count: float = 1.0) -> None:
        with self._lock:
            self._advance()
            self._pending += count
            self._count += count

    @property
    def count(self) -> float:
        return self._count

    def mean_rate(self) -> float:
        elapsed = self._clock() - self._started
        return self._count / elapsed if elapsed > 0 else 0.0

    def rate(self, tau: float | None = None) -> float:
        """EWMA events/second for ``tau`` (the shortest configured default)."""
        tau = float(tau) if tau is not None else self.taus[0]
        try:
            index = self.taus.index(tau)
        except ValueError:
            raise ValueError(f"tau {tau} not configured (have {self.taus})")
        with self._lock:
            self._advance()
            if not self._primed:
                return self.mean_rate()
            return self._rates[index]

    def rates(self) -> dict[float, float]:
        return {tau: self.rate(tau) for tau in self.taus}

    def snapshot(self) -> dict:
        snap = {
            "kind": self.kind,
            "name": self.name,
            "labels": self.label_dict,
            "count": self._count,
            "mean_rate_per_s": self.mean_rate(),
        }
        for tau in self.taus:
            snap[f"rate_{int(tau)}s_per_s"] = self.rate(tau)
        return snap
