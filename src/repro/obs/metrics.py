"""Process-global metrics registry: counters, gauges, histograms.

The registry is the numeric backbone of ``repro.obs``.  Instrumented code
asks the registry for a metric by name (plus optional labels) and updates
it; readers call :meth:`MetricsRegistry.collect` for a point-in-time
snapshot.  All updates are thread-safe, and every metric is held purely in
memory — recording never performs I/O, so always-on instrumentation is safe
for library use (see DESIGN.md, "Observability").

Three metric kinds are supported:

- :class:`Counter` — monotonically increasing total (op counts, events);
- :class:`Gauge` — last-written value (current loss, alpha-NDCG);
- :class:`Histogram` — sample distribution with mean and p50/p95/p99
  quantiles (latencies, per-batch times).

Windowed kinds (:class:`~repro.obs.windows.WindowedHistogram`,
:class:`~repro.obs.windows.EwmaMeter`, ...) register through the same
registry via :meth:`MetricsRegistry.windowed_histogram` /
:meth:`MetricsRegistry.meter`; see :mod:`repro.obs.windows`.

Labeled series: ``registry.histogram("rerank.latency_ms", reranker="mmr")``
creates one independent series per distinct label set.  To survive
accidental cardinality explosions (e.g. labeling by user or request id
under million-user traffic), a registry caps each metric name at
``max_series_per_metric`` distinct label sets: once the cap is hit, new
label sets are routed to one shared per-name **overflow series**
(labeled ``overflow="true"``), the ``obs.dropped_series`` counter tracks
how many updates were routed there, and the first overflow per name is
logged once — memory stays bounded and writers never crash.
"""

from __future__ import annotations

import logging
import threading
from bisect import insort

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
]

Labels = tuple[tuple[str, str], ...]

# The label set identifying a metric's shared cardinality-overflow series.
_OVERFLOW_LABELS: Labels = (("overflow", "true"),)

# Name collisions tolerated across kinds: a cumulative histogram and its
# sliding-window twin intentionally share a name (exporters disambiguate).
_COMPATIBLE_KINDS = {frozenset(("histogram", "windowed_histogram"))}


def _normalize_labels(labels: dict[str, object]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared name/label plumbing for all metric kinds."""

    kind = "metric"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)

    def __repr__(self) -> str:
        labels = "".join(f", {k}={v}" for k, v in self.labels)
        return f"{type(self).__name__}({self.name!r}{labels})"


class Counter(_Metric):
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge instead")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.label_dict,
            "value": self._value,
        }


class Gauge(_Metric):
    """Last-written value, with optional add/sub convenience."""

    kind = "gauge"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.label_dict,
            "value": self._value,
        }


class Histogram(_Metric):
    """Sample distribution with interpolated quantiles.

    Samples are kept sorted so quantile reads are O(1) after an O(log n)
    insert.  ``max_samples`` bounds memory on long runs: once full, a
    coarse reservoir policy keeps every other sample (count/sum stay exact;
    quantiles become approximate, which is fine for telemetry).
    """

    kind = "histogram"

    def __init__(
        self, name: str, labels: Labels = (), max_samples: int = 100_000
    ) -> None:
        super().__init__(name, labels)
        self._sorted: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._max_samples = max_samples

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if len(self._sorted) >= self._max_samples:
                self._sorted = self._sorted[::2]
            insort(self._sorted, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile ``q`` in [0, 1] of observed samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            samples = self._sorted
            if not samples:
                return 0.0
            position = q * (len(samples) - 1)
            low = int(position)
            high = min(low + 1, len(samples) - 1)
            frac = position - low
            return samples[low] * (1.0 - frac) + samples[high] * frac

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.label_dict,
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class MetricsRegistry:
    """Thread-safe collection of labeled metric series.

    One registry is usually enough — :func:`get_registry` returns the
    process-global instance — but independent registries can be created for
    tests or isolated subsystems.
    """

    def __init__(self, max_series_per_metric: int = 1000) -> None:
        self._lock = threading.Lock()
        self._series: dict[tuple[str, str, Labels], _Metric] = {}
        self._per_name: dict[str, int] = {}
        self._overflow_logged: set[str] = set()
        self.max_series_per_metric = max_series_per_metric

    def _get_or_create(self, cls: type, name: str, labels: dict[str, object]):
        key = (cls.kind, name, _normalize_labels(labels))
        overflowed = False
        with self._lock:
            metric = self._series.get(key)
            if metric is not None:
                return metric
            for kind, existing_name, _ in self._series:
                if (
                    existing_name == name
                    and kind != cls.kind
                    and frozenset((kind, cls.kind)) not in _COMPATIBLE_KINDS
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as a {kind}, "
                        f"cannot re-register as a {cls.kind}"
                    )
            count = self._per_name.get(name, 0)
            if count >= self.max_series_per_metric:
                # Cardinality cap: route this (and every further) unseen
                # label set to one shared overflow series so memory stays
                # bounded under per-user labels; the write still lands.
                overflowed = True
                key = (cls.kind, name, _OVERFLOW_LABELS)
                metric = self._series.get(key)
                if metric is None:
                    metric = self._series[key] = cls(name, _OVERFLOW_LABELS)
            else:
                metric = cls(name, key[2])
                self._series[key] = metric
                self._per_name[name] = count + 1
        if overflowed:
            self._record_overflow(name)
        return metric

    def _record_overflow(self, name: str) -> None:
        """Count an update routed to the overflow series; log the first."""
        if name != "obs.dropped_series":
            self.counter("obs.dropped_series", metric=name).inc()
        first = False
        with self._lock:
            if name not in self._overflow_logged:
                self._overflow_logged.add(name)
                first = True
        if first:
            message = (
                f"metric {name!r} exceeded max_series_per_metric="
                f"{self.max_series_per_metric}; further label sets share one "
                "overflow series (a label is probably unbounded — user or "
                "request ids)"
            )
            logging.getLogger(__name__).warning(message)
            from .runlog import get_run_logger

            logger = get_run_logger()
            if logger.active:
                logger.log(
                    "obs.series_overflow",
                    metric=name,
                    max_series=self.max_series_per_metric,
                )

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    def windowed_histogram(self, name: str, **labels):
        """Sliding-window histogram series (see :mod:`repro.obs.windows`)."""
        from .windows import WindowedHistogram

        return self._get_or_create(WindowedHistogram, name, labels)

    def windowed_counter(self, name: str, **labels):
        """Sliding-window event counter series."""
        from .windows import WindowedCounter

        return self._get_or_create(WindowedCounter, name, labels)

    def meter(self, name: str, **labels):
        """EWMA rate meter series (events/second at 1m/5m/15m)."""
        from .windows import EwmaMeter

        return self._get_or_create(EwmaMeter, name, labels)

    def collect(self) -> list[dict]:
        """Point-in-time snapshot of every series, sorted by (name, labels)."""
        with self._lock:
            metrics = list(self._series.values())
        return sorted(
            (m.snapshot() for m in metrics),
            key=lambda s: (s["name"], tuple(sorted(s["labels"].items()))),
        )

    def reset(self) -> None:
        """Drop every registered series."""
        with self._lock:
            self._series.clear()
            self._per_name.clear()
            self._overflow_logged.clear()

    def __len__(self) -> int:
        return len(self._series)


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """Return the process-global registry used by built-in instrumentation."""
    return _GLOBAL_REGISTRY


def reset_registry() -> None:
    """Clear the process-global registry (tests, start of a fresh run)."""
    _GLOBAL_REGISTRY.reset()
