"""Structured JSONL run log with a null sink by default.

A :class:`RunLogger` turns ``logger.log("train.epoch", epoch=3, loss=0.2)``
into one JSON record per line::

    {"ts": 1722870000.123, "run_id": "a1b2c3d4", "event": "train.epoch",
     "epoch": 3, "loss": 0.2}

The default sink is :class:`NullSink`: ``log`` short-circuits before
building the record, so instrumented library code costs a single attribute
check and performs **no file I/O** unless a caller opts in by installing a
:class:`JsonlSink` (files) or :class:`MemorySink` (tests).  See DESIGN.md,
"Observability" for the policy rationale.

Crash safety: :class:`JsonlSink` flushes after **every** record, so a
process killed mid-run (OOM, ``kill -9``, power loss) leaves a log that is
replayable up to the last completed event — at worst the final line is
torn, and :func:`read_jsonl` with ``strict=False`` drops exactly that
torn tail.  For durability-critical runs (the record must survive an OS
crash, not just a process crash), pass ``fsync=True`` to push every
record through to stable storage; this trades one ``fsync(2)`` per event
for the guarantee.  The kill-mid-run contract is proven by
``tests/test_runlog_crash_safety.py``.

Long-lived serving processes cap disk use with ``max_bytes``: when an
append would grow the file past the cap, the sink rotates
``log.jsonl -> log.jsonl.1 -> log.jsonl.2 ...`` (same keep-last-``k``
scheme as checkpoint rotation) and starts a fresh file.  Records are
never split across files; :func:`read_jsonl_rotated` replays the whole
set oldest-first.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path

__all__ = [
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "RunLogger",
    "get_run_logger",
    "set_run_logger",
    "per_pid_path",
    "read_jsonl",
    "read_jsonl_rotated",
]


def per_pid_path(path: str | Path, pid: int | None = None) -> Path:
    """``log.jsonl`` → ``log.pid12345.jsonl`` for the given (default: own) pid.

    The suffix goes *before* the extension so rotation archives
    (``log.pid12345.jsonl.1``) and glob patterns (``log.pid*.jsonl``) keep
    working.  This is how one logical sink path fans out into one physical
    file per process — JSONL appends from multiple processes interleave at
    the OS level and can tear records, so sharing a file is refused.
    """
    path = Path(path)
    pid = os.getpid() if pid is None else pid
    if path.suffix:
        return path.with_name(f"{path.stem}.pid{pid}{path.suffix}")
    return path.with_name(f"{path.name}.pid{pid}")


class NullSink:
    """Discards everything; the library-safe default."""

    active = False

    def write(self, record: dict) -> None:  # pragma: no cover - never called
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Keeps records in a list — the sink test suites use."""

    active = True

    def __init__(self) -> None:
        self.records: list[dict] = []

    def write(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def events(self, name: str | None = None) -> list[dict]:
        if name is None:
            return list(self.records)
        return [r for r in self.records if r.get("event") == name]


class JsonlSink:
    """Appends one JSON object per line to ``path`` (opened lazily).

    Every record is flushed immediately (crash-safe against process
    death); with ``fsync=True`` it is also fsync-ed to stable storage
    (crash-safe against OS/power failure, at ~one syscall per event).

    With ``max_bytes`` set, an append that would grow the file past the
    cap first rotates ``path -> path.1 -> ... -> path.<keep_last>`` (the
    oldest file beyond ``keep_last`` is deleted) and reopens a fresh
    ``path``.  Rotation happens *between* records, never inside one, so
    every file in the set is independently valid JSONL.

    Multi-process safety: a sink is owned by the pid that created it.
    With ``per_pid=True`` the sink writes to :func:`per_pid_path` instead,
    and a forked child transparently rebinds to *its own* per-pid file on
    the first write (the inherited handle is abandoned, never closed — the
    parent still owns that file).  Without ``per_pid``, a write from a
    different pid raises ``RuntimeError`` rather than silently interleaving
    two processes' records into one file.  Worker fleets
    (:mod:`repro.dist`) install per-pid sinks in every worker.
    """

    active = True

    def __init__(
        self,
        path: str | Path,
        fsync: bool = False,
        max_bytes: int | None = None,
        keep_last: int = 3,
        per_pid: bool = False,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.requested_path = Path(path)
        self.per_pid = per_pid
        self.path = per_pid_path(self.requested_path) if per_pid else Path(path)
        self.fsync = fsync
        self.max_bytes = max_bytes
        self.keep_last = keep_last
        self.rotations = 0
        self._owner_pid = os.getpid()
        self._handle = None
        self._size = 0

    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        self._size = self.path.stat().st_size

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        # Shift the archive chain oldest-last, same as checkpoint rotation.
        oldest = self.path.with_name(self.path.name + f".{self.keep_last}")
        if oldest.exists():
            oldest.unlink()
        for index in range(self.keep_last - 1, 0, -1):
            source = self.path.with_name(self.path.name + f".{index}")
            if source.exists():
                source.rename(self.path.with_name(self.path.name + f".{index + 1}"))
        if self.path.exists():
            self.path.rename(self.path.with_name(self.path.name + ".1"))
        self.rotations += 1
        self._size = 0

    def _check_owner(self) -> None:
        pid = os.getpid()
        if pid == self._owner_pid:
            return
        if not self.per_pid:
            raise RuntimeError(
                f"JsonlSink({str(self.requested_path)!r}) was created in pid "
                f"{self._owner_pid} but written from pid {pid}; concurrent "
                "appends from multiple processes tear JSONL records. Pass "
                "per_pid=True or give each process its own path."
            )
        # Forked child: abandon the inherited handle (closing it could
        # disturb the parent's file) and rebind to this pid's own file.
        self._handle = None
        self.path = per_pid_path(self.requested_path, pid)
        self.rotations = 0
        self._size = 0
        self._owner_pid = pid

    def write(self, record: dict) -> None:
        self._check_owner()
        if self._handle is None:
            self._open()
        line = json.dumps(record, default=_json_fallback) + "\n"
        encoded_len = len(line.encode("utf-8"))
        if (
            self.max_bytes is not None
            and self._size > 0
            and self._size + encoded_len > self.max_bytes
        ):
            self._rotate()
            self._open()
        self._handle.write(line)
        self._handle.flush()
        self._size += encoded_len
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _json_fallback(value):
    """Serialize numpy scalars/arrays and other oddballs losslessly enough."""
    if hasattr(value, "item") and getattr(value, "size", None) == 1:
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return repr(value)


class RunLogger:
    """Structured event logger bound to one run id and one sink."""

    def __init__(self, sink=None, run_id: str | None = None) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex[:8]

    @property
    def active(self) -> bool:
        """False for the null sink — the cheap guard for costly field prep."""
        return self.sink.active

    def log(self, event: str, **fields) -> None:
        if not self.sink.active:
            return
        record = {"ts": time.time(), "run_id": self.run_id, "event": event}
        record.update(fields)
        self.sink.write(record)

    def close(self) -> None:
        self.sink.close()


_NULL_LOGGER = RunLogger()
_GLOBAL_LOGGER = _NULL_LOGGER


def get_run_logger() -> RunLogger:
    """The logger built-in instrumentation writes to (null by default)."""
    return _GLOBAL_LOGGER


def set_run_logger(logger: RunLogger | None) -> RunLogger:
    """Install ``logger`` globally (``None`` restores the silent default).

    Returns the previously installed logger so callers can restore it.
    """
    global _GLOBAL_LOGGER
    previous = _GLOBAL_LOGGER
    _GLOBAL_LOGGER = logger if logger is not None else _NULL_LOGGER
    return previous


def read_jsonl(path: str | Path, strict: bool = True) -> list[dict]:
    """Load every record of a JSONL run log.

    With ``strict=False`` a malformed **final** line — the torn tail a
    killed writer can leave behind — is silently dropped, so crash logs
    replay up to the last completed event.  Malformed lines anywhere else
    still raise: they indicate real corruption, not a torn append.
    """
    records = []
    with Path(path).open(encoding="utf-8") as handle:
        lines = [line.strip() for line in handle]
    lines = [line for line in lines if line]
    for index, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if strict or index != len(lines) - 1:
                raise
    return records


def read_jsonl_rotated(path: str | Path, strict: bool = True) -> list[dict]:
    """Replay a rotated log set (``path.N`` ... ``path.1``, ``path``) in order.

    Archives are read oldest-first (highest suffix down to ``.1``, then the
    live file), so the result is one chronological record stream.  Only the
    live file may carry a torn tail, so ``strict=False`` applies there and
    archives always parse strictly.
    """
    path = Path(path)
    archives = []
    index = 1
    while True:
        candidate = path.with_name(path.name + f".{index}")
        if not candidate.exists():
            break
        archives.append(candidate)
        index += 1
    records: list[dict] = []
    for archive in reversed(archives):
        records.extend(read_jsonl(archive, strict=True))
    if path.exists():
        records.extend(read_jsonl(path, strict=strict))
    return records
