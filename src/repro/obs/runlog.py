"""Structured JSONL run log with a null sink by default.

A :class:`RunLogger` turns ``logger.log("train.epoch", epoch=3, loss=0.2)``
into one JSON record per line::

    {"ts": 1722870000.123, "run_id": "a1b2c3d4", "event": "train.epoch",
     "epoch": 3, "loss": 0.2}

The default sink is :class:`NullSink`: ``log`` short-circuits before
building the record, so instrumented library code costs a single attribute
check and performs **no file I/O** unless a caller opts in by installing a
:class:`JsonlSink` (files) or :class:`MemorySink` (tests).  See DESIGN.md,
"Observability" for the policy rationale.

Crash safety: :class:`JsonlSink` flushes after **every** record, so a
process killed mid-run (OOM, ``kill -9``, power loss) leaves a log that is
replayable up to the last completed event — at worst the final line is
torn, and :func:`read_jsonl` with ``strict=False`` drops exactly that
torn tail.  For durability-critical runs (the record must survive an OS
crash, not just a process crash), pass ``fsync=True`` to push every
record through to stable storage; this trades one ``fsync(2)`` per event
for the guarantee.  The kill-mid-run contract is proven by
``tests/test_runlog_crash_safety.py``.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path

__all__ = [
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "RunLogger",
    "get_run_logger",
    "set_run_logger",
    "read_jsonl",
]


class NullSink:
    """Discards everything; the library-safe default."""

    active = False

    def write(self, record: dict) -> None:  # pragma: no cover - never called
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Keeps records in a list — the sink test suites use."""

    active = True

    def __init__(self) -> None:
        self.records: list[dict] = []

    def write(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def events(self, name: str | None = None) -> list[dict]:
        if name is None:
            return list(self.records)
        return [r for r in self.records if r.get("event") == name]


class JsonlSink:
    """Appends one JSON object per line to ``path`` (opened lazily).

    Every record is flushed immediately (crash-safe against process
    death); with ``fsync=True`` it is also fsync-ed to stable storage
    (crash-safe against OS/power failure, at ~one syscall per event).
    """

    active = True

    def __init__(self, path: str | Path, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle = None

    def write(self, record: dict) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        json.dump(record, self._handle, default=_json_fallback)
        self._handle.write("\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _json_fallback(value):
    """Serialize numpy scalars/arrays and other oddballs losslessly enough."""
    if hasattr(value, "item") and getattr(value, "size", None) == 1:
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return repr(value)


class RunLogger:
    """Structured event logger bound to one run id and one sink."""

    def __init__(self, sink=None, run_id: str | None = None) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex[:8]

    @property
    def active(self) -> bool:
        """False for the null sink — the cheap guard for costly field prep."""
        return self.sink.active

    def log(self, event: str, **fields) -> None:
        if not self.sink.active:
            return
        record = {"ts": time.time(), "run_id": self.run_id, "event": event}
        record.update(fields)
        self.sink.write(record)

    def close(self) -> None:
        self.sink.close()


_NULL_LOGGER = RunLogger()
_GLOBAL_LOGGER = _NULL_LOGGER


def get_run_logger() -> RunLogger:
    """The logger built-in instrumentation writes to (null by default)."""
    return _GLOBAL_LOGGER


def set_run_logger(logger: RunLogger | None) -> RunLogger:
    """Install ``logger`` globally (``None`` restores the silent default).

    Returns the previously installed logger so callers can restore it.
    """
    global _GLOBAL_LOGGER
    previous = _GLOBAL_LOGGER
    _GLOBAL_LOGGER = logger if logger is not None else _NULL_LOGGER
    return previous


def read_jsonl(path: str | Path, strict: bool = True) -> list[dict]:
    """Load every record of a JSONL run log.

    With ``strict=False`` a malformed **final** line — the torn tail a
    killed writer can leave behind — is silently dropped, so crash logs
    replay up to the last completed event.  Malformed lines anywhere else
    still raise: they indicate real corruption, not a torn append.
    """
    records = []
    with Path(path).open(encoding="utf-8") as handle:
        lines = [line.strip() for line in handle]
    lines = [line for line in lines if line]
    for index, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if strict or index != len(lines) - 1:
                raise
    return records
