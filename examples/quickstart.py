"""Quickstart: train RAPID and re-rank one request in ~30 seconds.

Builds a small Taobao-like world, trains a DIN initial ranker, simulates
clicks with the Dependent Click Model, trains RAPID end-to-end, and shows
how the re-ranked list differs from the initial one for a single user.

The whole run executes inside ``repro.obs.observed_run``, so it also
demonstrates the telemetry stack: a JSONL run log is written to
``quickstart_run.jsonl`` and summarized at the end (loss curve, slowest
spans, top autograd ops) — the same summary you get later from
``python -m repro.obs.report quickstart_run.jsonl``.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.trainer import TrainConfig
from repro.data import build_batch
from repro.eval import (
    ExperimentConfig,
    evaluate_reranker,
    make_reranker,
    prepare_bundle,
)
from repro.obs import observed_run, profile_ops
from repro.obs.report import report_path

RUN_LOG = Path("quickstart_run.jsonl")


def main() -> None:
    config = ExperimentConfig(
        dataset="taobao",
        scale="tiny",
        tradeoff=0.5,  # clicks depend on relevance AND personal diversity
        list_length=12,
        num_train_requests=400,
        num_test_requests=80,
        ranker_interactions=1500,
        hidden=8,
        train=TrainConfig(epochs=6, batch_size=32),
        seed=0,
    )

    print("1. Building the world, initial ranker, and click-labeled requests...")
    bundle = prepare_bundle(config)

    print("2. Training RAPID (probabilistic head, Bi-LSTM relevance)...")
    rapid = make_reranker("rapid-pro", bundle)
    with profile_ops(reset=False):  # autograd op profile lands in the run log
        rapid.fit(
            bundle.train_requests,
            bundle.world.catalog,
            bundle.world.population,
            bundle.histories,
        )
    print(f"   epoch losses: {[round(l, 4) for l in rapid.training_losses]}")

    print("3. Evaluating on held-out requests (DCM expected metrics)...")
    init_result = evaluate_reranker(None, bundle)
    rapid_result = evaluate_reranker(rapid, bundle)
    for metric in ("click@5", "ndcg@5", "div@5", "satis@5"):
        print(
            f"   {metric}: init {init_result[metric]:.4f}  ->  "
            f"rapid {rapid_result[metric]:.4f}"
        )

    print("4. Re-ranking a single request:")
    request = bundle.test_requests[0]
    batch = build_batch(
        [request],
        bundle.world.catalog,
        bundle.world.population,
        bundle.histories,
    )
    permutation = rapid.rerank(batch)[0]
    theta = rapid.model.preference_distribution(batch)[0]
    dominant = bundle.world.catalog.dominant_topics()
    print(f"   user {request.user_id} learned topic preference: {np.round(theta, 3)}")
    print(f"   initial order  (topics): {dominant[request.items].tolist()}")
    print(
        f"   re-ranked order (topics): "
        f"{dominant[request.items[permutation]].tolist()}"
    )


if __name__ == "__main__":
    RUN_LOG.unlink(missing_ok=True)  # JsonlSink appends; start fresh
    with observed_run(RUN_LOG, run_id="quickstart"):
        main()
    print(f"\n5. Telemetry summary (from {RUN_LOG}):\n")
    print(report_path(RUN_LOG))
    print(
        f"\n   Re-render any time with: python -m repro.obs.report {RUN_LOG}"
    )
