"""Regret analysis of linear RAPID (Theorem 5.1).

Runs the LinUCB-style linear RAPID bandit against the linear DCM
environment, printing the cumulative regret trajectory, its sqrt(n)
normalization, and the theoretical bound — an empirical check of the
paper's O~(q0 sqrt(n)) guarantee.

Run:  python examples/regret_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.theory import run_regret_experiment


def main() -> None:
    horizon = 3000
    print(f"Running linear RAPID-UCB for {horizon} rounds...")
    result = run_regret_experiment(horizon=horizon, seed=0, exploration=0.5)

    print(
        f"gamma = {result.gamma:.3f}, exploration width s = "
        f"{result.exploration:.2f}"
    )
    print()
    print(f"{'n':>6} {'raw regret':>12} {'raw/sqrt(n)':>12} {'Thm 5.1 bound':>14}")
    for n in (100, 300, 1000, 3000):
        raw = result.raw_regret[n - 1]
        print(
            f"{n:>6} {raw:>12.2f} {raw / np.sqrt(n):>12.3f} "
            f"{result.bound[n - 1]:>14.0f}"
        )

    print()
    ratio = result.sublinearity_ratio()
    print(f"sublinearity ratio (late avg regret / early): {ratio:.3f} (< 1 = sublinear)")
    below = bool((result.cumulative_regret <= result.bound).all())
    print(f"gamma-scaled regret below the Theorem 5.1 bound everywhere: {below}")

    gap = result.per_round_oracle - result.per_round_learner
    quarter = horizon // 4
    print(
        f"per-round utility gap vs greedy oracle: first quarter "
        f"{gap[:quarter].mean():.5f} -> last quarter {gap[-quarter:].mean():.5f}"
    )


if __name__ == "__main__":
    main()
