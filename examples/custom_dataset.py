"""Bring your own data: RAPID on a custom catalog, users, and click logs.

Everything else in this repository flows through the synthetic worlds; a
real deployment instead has arrays: item features + topic tags, user
features, behavior histories, and click-labeled impression lists.  This
example builds those objects directly (here from random numbers standing
in for your data warehouse) and runs RAPID on them — no SyntheticWorld,
no click model.

Run:  python examples/custom_dataset.py
"""

from __future__ import annotations

import numpy as np

from repro.core import RapidConfig, RapidReranker, TrainConfig
from repro.data import Catalog, Population, RankingRequest, build_batch

NUM_ITEMS = 300
NUM_USERS = 80
NUM_TOPICS = 6
ITEM_DIM = 10
USER_DIM = 6
LIST_LENGTH = 12


def load_your_data(rng: np.random.Generator):
    """Stand-in for reading from your feature store / logs.

    Replace each array with your own:
    - item_features: (num_items, q_v) dense item representation
    - topic_coverage: (num_items, m) probabilities (multi-hot tags / 1.0)
    - user_features: (num_users, q_u)
    - histories: per-user arrays of positively-interacted item ids,
      oldest first
    - impressions: logged lists with clicks, as RankingRequest objects
    """
    item_features = rng.normal(size=(NUM_ITEMS, ITEM_DIM))
    topics = rng.integers(0, NUM_TOPICS, size=NUM_ITEMS)
    topic_coverage = np.zeros((NUM_ITEMS, NUM_TOPICS))
    topic_coverage[np.arange(NUM_ITEMS), topics] = 1.0
    user_features = rng.normal(size=(NUM_USERS, USER_DIM))
    histories = [
        rng.choice(NUM_ITEMS, size=rng.integers(5, 30), replace=False)
        for _ in range(NUM_USERS)
    ]

    # Hidden "true" click behavior, standing in for your logged feedback.
    user_taste = rng.normal(size=(NUM_USERS, ITEM_DIM))

    def click_probability(user, items):
        logits = item_features[items] @ user_taste[user] / np.sqrt(ITEM_DIM)
        return 1.0 / (1.0 + np.exp(-logits))

    impressions = []
    for _ in range(600):
        user = int(rng.integers(NUM_USERS))
        items = rng.choice(NUM_ITEMS, size=LIST_LENGTH, replace=False)
        scores = rng.normal(size=LIST_LENGTH)  # your production ranker's scores
        order = np.argsort(-scores)
        items, scores = items[order], scores[order]
        clicks = (rng.random(LIST_LENGTH) < click_probability(user, items)).astype(
            float
        )
        impressions.append(
            RankingRequest(user, items, scores, clicks=clicks, fully_observed=True)
        )
    return item_features, topic_coverage, user_features, histories, impressions


def main() -> None:
    rng = np.random.default_rng(0)
    item_features, coverage, user_features, histories, impressions = load_your_data(
        rng
    )

    # 1. Wrap your arrays in the library's schema objects.  Population's
    #    hidden fields (topic_preference etc.) are only used by the
    #    synthetic evaluators — zero-fill them for real data.
    catalog = Catalog(features=item_features, coverage=coverage)
    placeholder = np.full((NUM_USERS, NUM_TOPICS), 1.0 / NUM_TOPICS)
    population = Population(
        features=user_features,
        topic_preference=placeholder,
        diversity_weight=placeholder.copy(),
        latent=np.zeros((NUM_USERS, 1)),
    )

    # 2. Train RAPID on the logged impressions.
    train, held_out = impressions[:500], impressions[500:]
    rapid = RapidReranker(
        RapidConfig(
            user_dim=USER_DIM,
            item_dim=ITEM_DIM,
            num_topics=NUM_TOPICS,
            hidden=16,
        ),
        variant="rapid-pro",
        train_config=TrainConfig(epochs=6, batch_size=64),
    )
    print("Training RAPID on 500 logged impression lists...")
    rapid.fit(train, catalog, population, histories)
    print(f"  epoch losses: {[round(l, 4) for l in rapid.training_losses]}")

    # 3. Re-rank new impression lists and replay the logged clicks.
    batch = build_batch(held_out, catalog, population, histories)
    permutations = rapid.rerank(batch)
    logged_top5 = np.mean([request.clicks[:5].sum() for request in held_out])
    reranked_top5 = np.mean(
        [
            request.clicks[permutations[i][:5]].sum()
            for i, request in enumerate(held_out)
        ]
    )
    print(f"\nlogged-order clicked items in top-5:   {logged_top5:.3f}")
    print(f"RAPID-order clicked items in top-5:    {reranked_top5:.3f}")
    theta = rapid.model.preference_distribution(batch)
    print(
        "\nPer-user learned topic preference (first 3 held-out users):\n"
        + "\n".join(str(np.round(theta[i], 3)) for i in range(3))
    )


if __name__ == "__main__":
    main()
