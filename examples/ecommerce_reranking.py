"""E-commerce re-ranking: the Taobao-like pipeline with a model comparison.

Reproduces the paper's motivating scenario (Sec. I): a purely
relevance-oriented re-ranker (PRM), a diversity-only re-ranker (DPP), and
RAPID's personalized diversification, compared on utility and diversity
under a click model where half of each click's probability comes from the
user's *personal* appetite for topical novelty.

Run:  python examples/ecommerce_reranking.py
"""

from __future__ import annotations

from repro.core.trainer import TrainConfig
from repro.eval import (
    ExperimentConfig,
    format_table,
    prepare_bundle,
    run_experiment,
)
from repro.metrics import is_significant_improvement


def main() -> None:
    config = ExperimentConfig(
        dataset="taobao",
        scale="small",
        tradeoff=0.5,
        list_length=15,
        num_train_requests=1000,
        num_test_requests=150,
        ranker_interactions=2000,
        hidden=16,
        train=TrainConfig(epochs=8, batch_size=64),
        seed=0,
    )
    print("Preparing the Taobao-like world (5 GMM topics, soft coverage)...")
    bundle = prepare_bundle(config)

    models = ["init", "prm", "mmr", "dpp", "adpmmr", "rapid-pro"]
    print(f"Training and evaluating: {', '.join(models)} ...")
    results = run_experiment(config, models, bundle=bundle)

    table = {name: result.metrics for name, result in results.items()}
    print()
    print(
        format_table(
            table,
            columns=["click@5", "ndcg@5", "div@5", "satis@5", "click@10", "div@10"],
            title="E-commerce re-ranking comparison (lambda = 0.5)",
        )
    )

    significant = is_significant_improvement(
        results["rapid-pro"].per_request_clicks[5],
        results["prm"].per_request_clicks[5],
    )
    print()
    print(
        "RAPID vs PRM click@5 improvement "
        f"{'IS' if significant else 'is NOT'} statistically significant "
        "(paired t-test, p < 0.05)."
    )
    print(
        "Expected shape: PRM lifts utility but not diversity; DPP lifts "
        "diversity at a utility cost; RAPID leads utility while staying "
        "more diverse than PRM."
    )


if __name__ == "__main__":
    main()
