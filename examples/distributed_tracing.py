"""Distributed tracing: one request, a 2-worker pool, one merged timeline.

A serving parent opens a request span, ships its ``TraceContext`` to two
``multiprocessing`` workers that each re-rank a shard of the request
batch, and merges everyone's span records into a single Chrome/Perfetto
trace (``distributed_trace.json`` — open it at https://ui.perfetto.dev
or chrome://tracing).  Parent/child linkage survives the process
boundary because span ids are pid-qualified and the trace id rides in
the propagated context (DESIGN.md §9).

Along the way the parent serves through a :class:`ResilientReranker`
wired to the default serving SLO, with windowed metrics enabled, and
prints the OpenMetrics exposition a ``GET /metrics`` endpoint would
return.

Run:  python examples/distributed_tracing.py
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path

import numpy as np

from repro.data import RankingRequest, build_batch, make_taobao_world
from repro.obs import (
    current_context,
    enable_windowed,
    merge_span_records,
    reset_tracer,
    serving_slo,
    span_records,
    trace,
    use_context,
    write_chrome_trace,
)
from repro.obs.context import TraceContext
from repro.obs.export import render_openmetrics
from repro.rerank import MMRReranker
from repro.resilience.degrade import ResilientReranker

TRACE_PATH = Path("distributed_trace.json")


def _requests(world, count: int, seed: int) -> list[RankingRequest]:
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        user = int(rng.integers(world.config.num_users))
        items = rng.choice(world.config.num_items, size=8, replace=False)
        out.append(RankingRequest(user, items, rng.normal(size=8)))
    return out


def rerank_shard(payload: dict) -> list[dict]:
    """Worker: adopt the parent's trace context, re-rank one shard."""
    reset_tracer()  # a spawned worker starts with a clean span buffer
    context = TraceContext.from_dict(payload["context"])
    world = make_taobao_world("tiny", seed=0)
    histories = world.sample_histories()
    with use_context(context):
        with trace(f"worker.shard-{payload['shard']}"):
            batch = build_batch(
                _requests(world, count=4, seed=payload["shard"]),
                world.catalog,
                world.population,
                histories,
            )
            with trace("worker.rerank"):
                MMRReranker().rerank(batch)
    return span_records()


def main() -> None:
    enable_windowed()
    world = make_taobao_world("tiny", seed=0)
    histories = world.sample_histories()
    serving = ResilientReranker(
        MMRReranker(),
        fallbacks=[],
        deadline_ms=None,
        slo_monitor=serving_slo(min_events=1),
    )

    with trace("serve.request") as root:
        context = current_context()
        # The parent serves its own slice while the pool handles two more.
        batch = build_batch(
            _requests(world, count=4, seed=99),
            world.catalog,
            world.population,
            histories,
        )
        serving.rerank(batch)
        jobs = [{"context": context.to_dict(), "shard": s} for s in (1, 2)]
        with multiprocessing.get_context("spawn").Pool(2) as pool:
            worker_buffers = pool.map(rerank_shard, jobs)

    merged = merge_span_records(span_records(), *worker_buffers)
    write_chrome_trace(TRACE_PATH, merged)

    pids = sorted({record["pid"] for record in merged})
    children = [r for r in merged if r["parent_id"] == root.span_id]
    print(f"trace id           : {root.trace_id}")
    print(f"spans merged       : {len(merged)} across {len(pids)} processes")
    print(f"children of root   : {[c['name'] for c in children]}")
    print(f"timeline written to: {TRACE_PATH} (open in Perfetto)")
    print()
    print("serving metrics (GET /metrics exposition, truncated):")
    for line in render_openmetrics().splitlines():
        if "slo" in line or "resilience" in line:
            print(f"  {line}")

    assert len(pids) == 3, "expected parent + 2 worker processes"
    assert all(r["trace_id"] == root.trace_id for r in merged)


if __name__ == "__main__":
    main()
