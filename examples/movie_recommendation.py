"""Movie recommendation with per-user diversity (the Figure 5 case study).

Trains RAPID on the MovieLens-like dataset (multi-hot genre coverage) and
then contrasts how it treats a *diverse-taste* user and a *focused-taste*
user: the learned preference distribution theta_hat, the genres in each
user's history, and the genres RAPID actually recommends.

Run:  python examples/movie_recommendation.py
"""

from __future__ import annotations

import numpy as np

from repro.core.trainer import TrainConfig
from repro.data import build_batch
from repro.eval import ExperimentConfig, make_reranker, prepare_bundle
from repro.metrics import topic_coverage


def _bar(weight: float, width: int = 30) -> str:
    filled = int(round(weight * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    config = ExperimentConfig(
        dataset="movielens",
        scale="small",
        tradeoff=0.5,
        list_length=15,
        num_train_requests=1000,
        num_test_requests=150,
        ranker_interactions=2000,
        hidden=16,
        train=TrainConfig(epochs=8, batch_size=64),
        seed=0,
    )
    print("Preparing the MovieLens-like world (multi-hot genres)...")
    bundle = prepare_bundle(config)
    world = bundle.world

    print("Training RAPID...")
    rapid = make_reranker("rapid-pro", bundle)
    rapid.fit(
        bundle.train_requests, world.catalog, world.population, bundle.histories
    )

    batch = build_batch(
        bundle.test_requests, world.catalog, world.population, bundle.histories
    )
    permutations = rapid.rerank(batch)
    theta = rapid.model.preference_distribution(batch)

    # Select users by the observable genre entropy of their history.
    entropies = []
    for request in bundle.test_requests:
        mass = world.catalog.coverage[bundle.histories[request.user_id]].sum(axis=0)
        dist = mass / mass.sum()
        entropies.append(float(-(dist * np.log(dist + 1e-12)).sum()))
    entropies = np.asarray(entropies)

    for label, row in (
        ("DIVERSE-TASTE USER", int(np.argmax(entropies))),
        ("FOCUSED-TASTE USER", int(np.argmin(entropies))),
    ):
        request = bundle.test_requests[row]
        history = bundle.histories[request.user_id]
        history_mass = world.catalog.coverage[history].sum(axis=0)
        history_dist = history_mass / history_mass.sum()
        top_items = request.items[permutations[row][:5]]
        recommended = topic_coverage(world.catalog.coverage[top_items])

        print()
        print(
            f"=== {label} (user {request.user_id}, history genre entropy "
            f"{entropies[row]:.2f}) ==="
        )
        print(f"{'genre':>8} {'history':>9}  {'theta_hat':>9}  profile")
        for genre in range(world.catalog.num_topics):
            print(
                f"{genre:>8} {history_dist[genre]:>9.3f}  "
                f"{theta[row][genre]:>9.3f}  {_bar(history_dist[genre])}"
            )
        print(
            f"RAPID top-5 covers {recommended.sum():.2f} genres "
            f"(per-genre coverage {np.round(recommended, 2)})"
        )

    print()
    print(
        "Expected shape: the diverse user's recommendations span many "
        "genres; the focused user's list concentrates on their dominant "
        "genre — diversification is personalized, not uniform."
    )


if __name__ == "__main__":
    main()
