"""Revenue-oriented re-ranking on the App Store-like dataset.

Apps carry bid prices and one-hot categories; clicks are logged by the
production-like behavior model and evaluation replays them (no click model
at eval time, matching the paper's Table III protocol).  The headline
metric is rev@k — bid-weighted clicks.

Run:  python examples/app_store_revenue.py
"""

from __future__ import annotations

from repro.core.trainer import TrainConfig
from repro.eval import (
    ExperimentConfig,
    format_table,
    prepare_bundle,
    run_experiment,
)


def main() -> None:
    config = ExperimentConfig(
        dataset="appstore",
        scale="small",
        list_length=15,
        num_train_requests=1000,
        num_test_requests=150,
        ranker_interactions=2000,
        hidden=16,
        eval_mode="logged",
        train=TrainConfig(epochs=8, batch_size=64),
        seed=0,
    )
    print("Preparing the App Store-like world (one-hot categories, bids)...")
    bundle = prepare_bundle(config)

    models = ["init", "prm", "dpp", "rapid-det", "rapid-pro"]
    print(f"Training and evaluating: {', '.join(models)} ...")
    results = run_experiment(config, models, bundle=bundle)
    table = {name: result.metrics for name, result in results.items()}

    print()
    print(
        format_table(
            table,
            columns=["click@5", "rev@5", "div@5", "click@10", "rev@10", "div@10"],
            title="App Store revenue comparison (logged-click replay)",
        )
    )
    init_rev = results["init"]["rev@5"]
    rapid_rev = results["rapid-pro"]["rev@5"]
    print()
    print(
        f"RAPID-pro lifts rev@5 by {100 * (rapid_rev / init_rev - 1):+.2f}% "
        "over the production initial ranking."
    )


if __name__ == "__main__":
    main()
