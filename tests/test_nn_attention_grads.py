"""Parameter-gradient checks for the attention stacks (finite differences).

These complement the forward-behavior tests: every learnable parameter of
the attention modules must receive a gradient that matches central finite
differences, guaranteeing the baselines built on them train correctly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


def _check_param_grads(module, forward, atol=1e-5, max_entries=6):
    """Compare autograd grads of sum(forward()) with finite differences on a
    subsample of each parameter's entries."""
    module.zero_grad()
    forward().sum().backward()
    rng = np.random.default_rng(0)
    for name, param in module.named_parameters():
        assert param.grad is not None, f"no grad for {name}"
        flat = param.data.ravel()
        flat_grad = param.grad.ravel()
        indices = rng.choice(
            param.data.size, size=min(max_entries, param.data.size), replace=False
        )
        for index in indices:
            original = flat[index]
            eps = 1e-6
            flat[index] = original + eps
            plus = forward().sum().item()
            flat[index] = original - eps
            minus = forward().sum().item()
            flat[index] = original
            numeric = (plus - minus) / (2 * eps)
            assert flat_grad[index] == pytest.approx(numeric, abs=atol), (
                f"{name}[{index}]"
            )


@pytest.fixture()
def inputs():
    rng = np.random.default_rng(1)
    return Tensor(rng.normal(size=(2, 4, 8)))


class TestAttentionParameterGradients:
    def test_multi_head_self_attention(self, inputs):
        module = nn.MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0))
        _check_param_grads(module, lambda: module(inputs))

    def test_transformer_encoder_layer(self, inputs):
        module = nn.TransformerEncoderLayer(8, 2, rng=np.random.default_rng(0))
        _check_param_grads(module, lambda: module(inputs))

    def test_induced_set_attention(self, inputs):
        module = nn.InducedSetAttention(8, 2, rng=np.random.default_rng(0))
        _check_param_grads(module, lambda: module(inputs))

    def test_gated_local_attention(self, inputs):
        module = nn.GatedLocalAttention(8, 2, rng=np.random.default_rng(0))
        _check_param_grads(module, lambda: module(inputs))


class TestRecurrentParameterGradients:
    def test_bilstm(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(2, 3, 4)))
        module = nn.BiLSTM(4, 3, rng=np.random.default_rng(0))
        _check_param_grads(module, lambda: module(x))

    def test_gru_sequence(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(2, 3, 4)))
        module = nn.GRU(4, 3, rng=np.random.default_rng(0))
        _check_param_grads(module, lambda: module(x)[0])

    def test_masked_lstm(self):
        rng = np.random.default_rng(4)
        x = Tensor(rng.normal(size=(2, 4, 3)))
        mask = np.array([[True, True, False, False], [True, True, True, True]])
        module = nn.LSTM(3, 2, rng=np.random.default_rng(0))
        _check_param_grads(module, lambda: module(x, mask=mask)[0])
