"""Tests for the alternative click models (cascade, position-based)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.click import CascadeClickModel, PositionBasedModel


class TestCascadeClickModel:
    @pytest.fixture(scope="class")
    def cascade(self, taobao_world):
        return CascadeClickModel(taobao_world, tradeoff=0.5)

    def test_at_most_one_click_per_session(self, cascade):
        rng = np.random.default_rng(0)
        items = np.arange(10)
        for _ in range(100):
            clicks = cascade.simulate(0, items, rng)
            assert clicks.sum() <= 1.0

    def test_click_is_first_attractive(self, cascade):
        """With full information, the realistic session's click (if any)
        must be the first attracted position."""
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        items = np.arange(10)
        full = cascade.simulate(0, items, rng_a, full_information=True)
        session = cascade.simulate(0, items, rng_b)
        attracted = np.flatnonzero(full)
        if attracted.size:
            assert session[attracted[0]] == 1.0
            assert session.sum() == 1.0
        else:
            assert session.sum() == 0.0

    def test_termination_always_one(self, cascade):
        assert np.allclose(cascade.termination_probabilities(6), 1.0)

    def test_expected_clicks_closed_form(self, cascade):
        items = np.arange(8)
        phi = cascade.attraction_probabilities(0, items)
        expected = 1.0 - np.prod(1.0 - phi[:5])
        assert cascade.expected_clicks(0, items, 5) == pytest.approx(expected)

    def test_shares_dcm_attraction(self, taobao_world):
        from repro.click import DependentClickModel

        cascade = CascadeClickModel(taobao_world, tradeoff=0.5)
        dcm = DependentClickModel(taobao_world, tradeoff=0.5)
        items = np.arange(10)
        assert np.allclose(
            cascade.attraction_probabilities(3, items),
            dcm.attraction_probabilities(3, items),
        )


class TestPositionBasedModel:
    @pytest.fixture(scope="class")
    def pbm(self, taobao_world):
        return PositionBasedModel(taobao_world, tradeoff=0.5)

    def test_examination_decays_with_rank(self, pbm):
        exam = pbm.examination_probabilities(8)
        assert exam[0] == pytest.approx(1.0)
        assert (np.diff(exam) < 0).all()

    def test_zero_decay_examines_everything(self, taobao_world):
        pbm = PositionBasedModel(taobao_world, examination_decay=0.0)
        assert np.allclose(pbm.examination_probabilities(5), 1.0)

    def test_expected_clicks_formula(self, pbm):
        items = np.arange(6)
        phi = pbm.attraction_probabilities(0, items)
        exam = pbm.examination_probabilities(6)
        assert pbm.expected_clicks(0, items, 6) == pytest.approx(
            float((phi * exam).sum())
        )

    def test_full_information_ignores_examination(self, pbm):
        rng = np.random.default_rng(0)
        items = np.arange(10)
        full = np.vstack(
            [pbm.simulate(0, items, rng, full_information=True) for _ in range(400)]
        )
        censored = np.vstack(
            [pbm.simulate(0, items, rng) for _ in range(400)]
        )
        # Late positions are examined rarely -> censored click rate lower.
        assert censored[:, -1].mean() < full[:, -1].mean()

    def test_invalid_parameters(self, taobao_world):
        with pytest.raises(ValueError):
            PositionBasedModel(taobao_world, tradeoff=2.0)
        with pytest.raises(ValueError):
            PositionBasedModel(taobao_world, examination_decay=-1.0)

    def test_clicks_independent_of_earlier_clicks(self, pbm):
        """Unlike the cascade, multiple clicks can occur."""
        rng = np.random.default_rng(1)
        items = np.arange(10)
        totals = [pbm.simulate(0, items, rng).sum() for _ in range(300)]
        assert max(totals) > 1.0
