"""RAPID model tests: components, variants, heads, training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    RAPID_VARIANTS,
    ListwiseRelevanceEstimator,
    PersonalizedDiversityEstimator,
    RapidConfig,
    RapidModel,
    RapidReranker,
    TrainConfig,
    make_rapid_variant,
    train_rapid,
)
from repro.data import RankingRequest, build_batch


@pytest.fixture(scope="module")
def world_and_batch(taobao_world):
    world = taobao_world
    histories = world.sample_histories()
    rng = np.random.default_rng(0)
    requests = []
    for _ in range(8):
        user = int(rng.integers(world.config.num_users))
        items = rng.choice(world.config.num_items, size=10, replace=False)
        clicks = (rng.random(10) < 0.3).astype(float)
        requests.append(
            RankingRequest(user, items, rng.normal(size=10), clicks=clicks)
        )
    batch = build_batch(requests, world.catalog, world.population, histories)
    return world, histories, requests, batch


def _config(world, **overrides):
    base = dict(
        user_dim=world.population.feature_dim,
        item_dim=world.catalog.feature_dim,
        num_topics=world.catalog.num_topics,
        hidden=8,
        seed=0,
    )
    base.update(overrides)
    return RapidConfig(**base)


class TestRelevanceEstimator:
    def test_bilstm_output_shape(self, world_and_batch):
        world, _, _, batch = world_and_batch
        est = ListwiseRelevanceEstimator(
            world.population.feature_dim,
            world.catalog.feature_dim,
            world.catalog.num_topics,
            hidden=8,
        )
        out = est(batch)
        assert out.shape == (batch.batch_size, batch.list_length, 16)

    def test_transformer_output_shape(self, world_and_batch):
        world, _, _, batch = world_and_batch
        est = ListwiseRelevanceEstimator(
            world.population.feature_dim,
            world.catalog.feature_dim,
            world.catalog.num_topics,
            hidden=8,
            encoder="transformer",
        )
        assert est(batch).shape == (batch.batch_size, batch.list_length, 16)

    def test_unknown_encoder_raises(self):
        with pytest.raises(ValueError):
            ListwiseRelevanceEstimator(4, 4, 3, encoder="mamba")


class TestDiversityEstimator:
    def test_preference_distribution_is_distribution(self, world_and_batch):
        world, _, _, batch = world_and_batch
        est = PersonalizedDiversityEstimator(
            world.population.feature_dim,
            world.catalog.feature_dim,
            world.catalog.num_topics,
            hidden=8,
        )
        theta = est.preference_distribution(batch).numpy()
        assert theta.shape == (batch.batch_size, world.catalog.num_topics)
        assert np.allclose(theta.sum(axis=1), 1.0)
        assert (theta >= 0).all()

    def test_delta_shape_and_bounds(self, world_and_batch):
        world, _, _, batch = world_and_batch
        est = PersonalizedDiversityEstimator(
            world.population.feature_dim,
            world.catalog.feature_dim,
            world.catalog.num_topics,
            hidden=8,
        )
        delta = est(batch).numpy()
        assert delta.shape == (
            batch.batch_size,
            batch.list_length,
            world.catalog.num_topics,
        )
        assert (delta >= 0).all() and (delta <= 1).all()

    def test_mean_aggregator(self, world_and_batch):
        world, _, _, batch = world_and_batch
        est = PersonalizedDiversityEstimator(
            world.population.feature_dim,
            world.catalog.feature_dim,
            world.catalog.num_topics,
            hidden=8,
            aggregator="mean",
        )
        assert est(batch).shape[0] == batch.batch_size

    def test_invalid_options_raise(self):
        with pytest.raises(ValueError):
            PersonalizedDiversityEstimator(4, 4, 3, aggregator="sum")
        with pytest.raises(ValueError):
            PersonalizedDiversityEstimator(4, 4, 3, marginal_mode="windowed")


class TestRapidModel:
    def test_forward_probabilities(self, world_and_batch):
        world, _, _, batch = world_and_batch
        model = RapidModel(_config(world))
        probs = model(batch, rng=np.random.default_rng(0)).numpy()
        assert probs.shape == (batch.batch_size, batch.list_length)
        assert ((probs > 0) & (probs < 1)).all()

    def test_inference_scores_deterministic_in_eval(self, world_and_batch):
        world, _, _, batch = world_and_batch
        model = RapidModel(_config(world))
        a = model.inference_scores(batch)
        b = model.inference_scores(batch)
        assert np.array_equal(a, b)

    def test_probabilistic_ucb_exceeds_mean(self, world_and_batch):
        """UCB = sigmoid(mu + sigma) must be >= sigmoid(mu) elementwise."""
        world, _, _, batch = world_and_batch
        model = RapidModel(_config(world, probabilistic=True))
        model.eval()
        mean_scores = model(batch).numpy()
        ucb_scores = model.inference_scores(batch)
        assert (ucb_scores >= mean_scores - 1e-12).all()

    def test_all_variants_build_and_run(self, world_and_batch):
        world, _, _, batch = world_and_batch
        for name in RAPID_VARIANTS:
            model = make_rapid_variant(name, _config(world))
            scores = model.inference_scores(batch)
            assert scores.shape == (batch.batch_size, batch.list_length)

    def test_variant_flags(self, world_and_batch):
        world, _, _, _ = world_and_batch
        rnn = make_rapid_variant("rapid-rnn", _config(world))
        assert rnn.diversity is None
        det = make_rapid_variant("rapid-det", _config(world))
        assert type(det.head).__name__ == "DeterministicHead"
        trans = make_rapid_variant("rapid-trans", _config(world))
        assert trans.relevance.encoder_kind == "transformer"

    def test_unknown_variant_raises(self, world_and_batch):
        world, _, _, _ = world_and_batch
        with pytest.raises(ValueError):
            make_rapid_variant("rapid-quantum", _config(world))

    def test_preference_distribution_unavailable_without_diversity(
        self, world_and_batch
    ):
        world, _, _, batch = world_and_batch
        model = make_rapid_variant("rapid-rnn", _config(world))
        with pytest.raises(RuntimeError):
            model.preference_distribution(batch)


class TestTraining:
    def test_loss_decreases(self, world_and_batch):
        world, histories, requests, _ = world_and_batch
        model = RapidModel(_config(world))
        losses = train_rapid(
            model,
            requests * 4,
            world.catalog,
            world.population,
            histories,
            config=TrainConfig(epochs=5, batch_size=8, lr=0.02),
        )
        assert len(losses) == 5
        assert losses[-1] < losses[0]

    def test_empty_requests_raise(self, world_and_batch):
        world, histories, _, _ = world_and_batch
        model = RapidModel(_config(world))
        with pytest.raises(ValueError):
            train_rapid(model, [], world.catalog, world.population, histories)

    def test_reranker_interface(self, world_and_batch):
        world, histories, requests, batch = world_and_batch
        reranker = RapidReranker(
            _config(world), "rapid-det", TrainConfig(epochs=1, batch_size=8)
        )
        reranker.fit(requests, world.catalog, world.population, histories)
        perm = reranker.rerank(batch)
        assert perm.shape == (batch.batch_size, batch.list_length)
        for row in perm:
            assert sorted(row) == list(range(batch.list_length))
