"""Tests for the alternative exploration policies (extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.theory import (
    EpsilonGreedyLinearRapid,
    LinearDCMEnvironment,
    ThompsonLinearRapid,
    compare_explorers,
    run_regret_experiment,
)


@pytest.fixture(scope="module")
def env():
    return LinearDCMEnvironment.create(seed=0)


class TestEpsilonGreedy:
    def test_epsilon_one_is_always_random(self, env):
        learner = EpsilonGreedyLinearRapid(env, epsilon=1.0, seed=0)
        rng = np.random.default_rng(1)
        features, coverage = env.sample_candidates(15, rng)
        orders = {tuple(learner.select(features, coverage)) for _ in range(10)}
        assert len(orders) > 1  # random rounds differ

    def test_epsilon_zero_is_deterministic(self, env):
        learner = EpsilonGreedyLinearRapid(env, epsilon=0.0, seed=0)
        rng = np.random.default_rng(1)
        features, coverage = env.sample_candidates(15, rng)
        a = learner.select(features, coverage)
        b = learner.select(features, coverage)
        assert np.array_equal(a, b)

    def test_invalid_epsilon(self, env):
        with pytest.raises(ValueError):
            EpsilonGreedyLinearRapid(env, epsilon=1.5)

    def test_valid_selection(self, env):
        learner = EpsilonGreedyLinearRapid(env, epsilon=0.5, seed=0)
        rng = np.random.default_rng(2)
        features, coverage = env.sample_candidates(12, rng)
        order = learner.select(features, coverage)
        assert len(order) == env.k
        assert len(set(order.tolist())) == env.k


class TestThompson:
    def test_sampling_varies_across_rounds(self, env):
        learner = ThompsonLinearRapid(env, posterior_scale=2.0, seed=0)
        rng = np.random.default_rng(3)
        features, coverage = env.sample_candidates(15, rng)
        orders = {tuple(learner.select(features, coverage)) for _ in range(10)}
        assert len(orders) > 1

    def test_zero_scale_matches_greedy(self, env):
        thompson = ThompsonLinearRapid(env, posterior_scale=0.0, seed=0)
        greedy = EpsilonGreedyLinearRapid(env, epsilon=0.0, seed=0)
        rng = np.random.default_rng(4)
        features, coverage = env.sample_candidates(12, rng)
        assert np.array_equal(
            thompson.select(features, coverage),
            greedy.select(features, coverage),
        )

    def test_invalid_scale(self, env):
        with pytest.raises(ValueError):
            ThompsonLinearRapid(env, posterior_scale=-0.1)


class TestCompareExplorers:
    def test_all_policies_learn(self):
        results = compare_explorers(horizon=400, seed=0)
        assert set(results) == {"ucb", "epsilon-greedy", "thompson"}
        for name, result in results.items():
            gap = result.per_round_oracle - result.per_round_learner
            quarter = len(gap) // 4
            assert gap[-quarter:].mean() < gap[:quarter].mean() + 0.02, name

    def test_custom_learner_injection(self):
        env = LinearDCMEnvironment.create(seed=5)
        learner = ThompsonLinearRapid(env, posterior_scale=0.3, seed=5)
        result = run_regret_experiment(
            horizon=200, seed=5, learner=learner, env=env
        )
        assert result.horizon == 200
        assert np.isfinite(result.raw_regret).all()
