"""Property-based tests for history splitting and batch assembly."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import split_history_by_topic


@st.composite
def history_and_coverage(draw):
    num_items = draw(st.integers(5, 40))
    num_topics = draw(st.integers(1, 6))
    history_len = draw(st.integers(0, 25))
    max_length = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    coverage = rng.random((num_items, num_topics))
    history = rng.integers(0, num_items, size=history_len)
    return history, coverage, num_topics, max_length


class TestSplitHistoryProperties:
    @given(history_and_coverage())
    @settings(max_examples=50, deadline=None)
    def test_output_shapes_and_padding(self, data):
        history, coverage, num_topics, max_length = data
        ids, mask = split_history_by_topic(history, coverage, num_topics, max_length)
        assert ids.shape == (num_topics, max_length)
        assert mask.shape == (num_topics, max_length)
        # padding id -1 exactly where mask is False
        assert ((ids == -1) == ~mask).all()
        # masks are prefixes (valid entries come first)
        for row in mask:
            if row.any():
                last_valid = np.flatnonzero(row)[-1]
                assert row[: last_valid + 1].all()

    @given(history_and_coverage())
    @settings(max_examples=50, deadline=None)
    def test_members_come_from_history(self, data):
        history, coverage, num_topics, max_length = data
        ids, mask = split_history_by_topic(history, coverage, num_topics, max_length)
        history_set = set(history.tolist())
        for topic in range(num_topics):
            for item in ids[topic][mask[topic]]:
                assert int(item) in history_set

    @given(history_and_coverage())
    @settings(max_examples=50, deadline=None)
    def test_every_history_item_lands_somewhere(self, data):
        """Each history item has a dominant topic, so each of the most
        recent items must appear in at least one topical sequence."""
        history, coverage, num_topics, max_length = data
        if len(history) == 0:
            return
        ids, mask = split_history_by_topic(history, coverage, num_topics, max_length)
        collected = set(ids[mask].tolist())
        # the single most recent item always fits in its dominant sequence
        assert int(history[-1]) in collected

    @given(history_and_coverage())
    @settings(max_examples=50, deadline=None)
    def test_respects_max_length(self, data):
        history, coverage, num_topics, max_length = data
        _, mask = split_history_by_topic(history, coverage, num_topics, max_length)
        assert mask.sum(axis=1).max(initial=0) <= max_length
