"""Benchmark-regression sentinel tests, plus the tier-1 trajectory gate.

``TestCheckedInTrajectory`` is the CI wiring: it runs the real sentinel
CLI over the repo's committed ``benchmarks/results/trajectory.jsonl`` on
every test run, so a regression recorded by ``publish_benchmark`` cannot
land silently.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.regress import (
    DEFAULT_BAND,
    Regression,
    check_trajectory,
    compare_records,
    find_trajectory,
    flatten_metrics,
    main,
    _direction,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _write_trajectory(path: Path, records: list[dict]) -> Path:
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


class TestDirection:
    @pytest.mark.parametrize(
        "key",
        ["median_ms", "train_baseline_ms_per_batch", "p95_ms", "step.ms"],
    )
    def test_ms_components_are_lower_is_better(self, key):
        assert _direction(key) == "lower_is_better"

    @pytest.mark.parametrize(
        "key",
        ["speedup_vs_unfused", "ops_per_sec", "throughput", "qps_served"],
    )
    def test_rate_components_are_higher_is_better(self, key):
        assert _direction(key) == "higher_is_better"

    @pytest.mark.parametrize(
        "key",
        [
            "disabled_overhead_fraction",  # gated by the bench itself
            "count",
            "notes",
            "milliseconds",  # "ms" must match a whole component, not a substring
        ],
    )
    def test_untracked_keys(self, key):
        assert _direction(key) is None


class TestFlatten:
    def test_pr2_style_ops_list(self):
        record = {
            "tag": "pr2",
            "ops": [
                {"op": "lstm_step", "median_ms": 1.5, "speedup_vs_unfused": 4.0},
                {"op": "gru_step", "median_ms": 1.2},
            ],
            "total_ms": 10.0,
            "overhead_fraction": 0.01,
            "nested": {"inner_ms": 2.0},
        }
        flat = flatten_metrics(record)
        assert flat == {
            "ops.lstm_step.median_ms": 1.5,
            "ops.lstm_step.speedup_vs_unfused": 4.0,
            "ops.gru_step.median_ms": 1.2,
            "total_ms": 10.0,
            "nested.inner_ms": 2.0,
        }

    def test_rows_without_labels_and_bools_skipped(self):
        record = {"ops": [{"median_ms": 1.0}], "flag_ms": True}
        assert flatten_metrics(record) == {}


class TestCompareRecords:
    def test_within_band_is_quiet(self):
        worse, better = compare_records({"a_ms": 10.0}, {"a_ms": 10.9})
        assert worse == [] and better == []

    def test_slower_ms_beyond_band_regresses(self):
        worse, _ = compare_records(
            {"tag": "t", "a_ms": 10.0}, {"tag": "t", "a_ms": 12.0}
        )
        assert len(worse) == 1
        assert worse[0].metric == "a_ms"
        assert worse[0].change_fraction == pytest.approx(0.2)
        assert "↑" in worse[0].describe()

    def test_faster_ms_is_an_improvement(self):
        _, better = compare_records({"a_ms": 10.0}, {"a_ms": 5.0})
        assert [r.metric for r in better] == ["a_ms"]

    def test_floor_absorbs_tiny_absolute_changes(self):
        # 0.01 -> 0.05 ms is +400% but under the 0.05 ms floor: noise.
        worse, _ = compare_records({"a_ms": 0.01}, {"a_ms": 0.05})
        assert worse == []

    def test_speedup_drop_regresses(self):
        worse, _ = compare_records({"speedup": 4.0}, {"speedup": 3.0})
        assert len(worse) == 1
        assert worse[0].direction == "higher_is_better"
        assert "↓" in worse[0].describe()

    def test_fields_in_only_one_record_are_skipped(self):
        worse, better = compare_records({"a_ms": 1.0}, {"b_ms": 99.0})
        assert worse == [] and better == []


class TestCheckTrajectory:
    def test_compares_last_two_entries_per_tag(self, tmp_path):
        path = _write_trajectory(
            tmp_path / "t.jsonl",
            [
                {"tag": "x", "a_ms": 30.0},  # old history: must be ignored
                {"tag": "x", "a_ms": 10.0},
                {"tag": "x", "a_ms": 20.0},
                {"tag": "lonely", "a_ms": 1.0},
            ],
        )
        report = check_trajectory(path)
        assert not report.ok
        assert report.compared_tags == ["x"]
        assert report.skipped_tags == ["lonely"]
        assert report.regressions[0].prior == 10.0
        assert report.regressions[0].current == 20.0

    def test_tag_filter(self, tmp_path):
        path = _write_trajectory(
            tmp_path / "t.jsonl",
            [
                {"tag": "bad", "a_ms": 10.0},
                {"tag": "bad", "a_ms": 20.0},
                {"tag": "good", "a_ms": 10.0},
                {"tag": "good", "a_ms": 10.0},
            ],
        )
        assert not check_trajectory(path).ok
        assert check_trajectory(path, tags=["good"]).ok

    def test_report_format_mentions_verdict(self, tmp_path):
        path = _write_trajectory(
            tmp_path / "t.jsonl",
            [{"tag": "x", "a_ms": 10.0}, {"tag": "x", "a_ms": 10.0}],
        )
        text = check_trajectory(path).format()
        assert "OK — no regressions" in text


class TestCli:
    def test_exit_1_on_regression_and_0_when_clean(self, tmp_path, capsys):
        path = _write_trajectory(
            tmp_path / "t.jsonl",
            [{"tag": "x", "a_ms": 10.0}, {"tag": "x", "a_ms": 20.0}],
        )
        assert main([str(path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # A wide band declares the same delta noise.
        assert main([str(path), "--band", "2.0"]) == 0

    def test_exit_2_on_missing_and_corrupt_files(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.jsonl")]) == 2
        broken = tmp_path / "broken.jsonl"
        broken.write_text("{not json\n")
        assert main([str(broken)]) == 2
        assert "error" in capsys.readouterr().err

    def test_find_trajectory_walks_up(self, tmp_path, tmp_path_factory):
        results = tmp_path / "benchmarks" / "results"
        results.mkdir(parents=True)
        (results / "trajectory.jsonl").write_text("")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_trajectory(nested) == results / "trajectory.jsonl"
        # A tree with no trajectory anywhere above it finds nothing.
        assert find_trajectory(tmp_path_factory.mktemp("bare")) is None


class TestCheckedInTrajectory:
    """Tier-1 gate: the committed trajectory must pass the sentinel."""

    def test_real_trajectory_is_clean(self, capsys):
        trajectory = REPO_ROOT / "benchmarks" / "results" / "trajectory.jsonl"
        assert trajectory.exists(), "committed benchmark trajectory missing"
        assert main([str(trajectory), "--band", str(DEFAULT_BAND)]) == 0
        assert "verdict: OK" in capsys.readouterr().out
