"""Instrumented training/eval: event sequences, spans, profiler, latency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rapid import RapidConfig, make_rapid_variant
from repro.core.trainer import TrainConfig, train_rapid
from repro.eval import ExperimentConfig, evaluate_reranker, prepare_bundle
from repro.obs import (
    MemorySink,
    RunLogger,
    Tracer,
    get_registry,
    get_tracer,
    observed_run,
    op_stats,
    profile_ops,
    reset_registry,
    reset_tracer,
    set_run_logger,
)
from repro.obs.report import render_report


@pytest.fixture(scope="module")
def obs_bundle():
    config = ExperimentConfig(
        dataset="taobao",
        scale="tiny",
        list_length=8,
        num_train_requests=40,
        num_test_requests=10,
        ranker_interactions=300,
        hidden=4,
        train=TrainConfig(epochs=2, batch_size=16),
        seed=0,
    )
    return prepare_bundle(config)


def _make_model(bundle):
    rapid_config = RapidConfig(
        user_dim=bundle.world.population.feature_dim,
        item_dim=bundle.world.catalog.feature_dim,
        num_topics=bundle.world.catalog.num_topics,
        hidden=4,
        seed=0,
    )
    return make_rapid_variant("rapid-det", rapid_config)


def _train(bundle, logger=None, **kwargs):
    return train_rapid(
        _make_model(bundle),
        bundle.train_requests,
        bundle.world.catalog,
        bundle.world.population,
        bundle.histories,
        config=bundle.config.train,
        run_logger=logger,
        **kwargs,
    )


class TestTrainerEvents:
    def test_two_epoch_event_sequence(self, obs_bundle):
        sink = MemorySink()
        losses = _train(obs_bundle, RunLogger(sink, run_id="test-run"))

        events = [r["event"] for r in sink.records]
        assert events[0] == "train.start"
        assert events[-1] == "train.end"
        assert events.count("train.epoch") == 2
        # Per-epoch layout: batches then the epoch summary, twice over.
        batches_per_epoch = events.count("train.batch") // 2
        assert batches_per_epoch >= 1
        expected = (
            ["train.start"]
            + (["train.batch"] * batches_per_epoch + ["train.epoch"]) * 2
            + ["train.end"]
        )
        assert events == expected

        for record in sink.records:
            assert record["run_id"] == "test-run"
            assert isinstance(record["ts"], float)

        epochs = sink.events("train.epoch")
        assert [e["epoch"] for e in epochs] == [0, 1]
        assert [e["loss"] for e in epochs] == pytest.approx(losses)
        for e in epochs:
            assert e["grad_norm"] > 0.0
            assert e["lists_per_sec"] > 0.0
            assert e["lr"] == obs_bundle.config.train.lr
        end = sink.events("train.end")[0]
        assert end["epochs_run"] == 2
        assert end["final_loss"] == pytest.approx(losses[-1])

    def test_batch_events_carry_loss_and_latency(self, obs_bundle):
        sink = MemorySink()
        _train(obs_bundle, RunLogger(sink))
        for record in sink.events("train.batch"):
            assert np.isfinite(record["loss"])
            assert record["batch_ms"] > 0.0
            assert record["grad_norm"] >= 0.0

    def test_silent_by_default(self, obs_bundle):
        previous = set_run_logger(None)
        try:
            losses = _train(obs_bundle)
        finally:
            set_run_logger(previous)
        assert len(losses) == 2  # no sink, no events, training unaffected

    def test_on_epoch_end_early_stop(self, obs_bundle):
        sink = MemorySink()
        seen = []

        def stop_after_first(epoch, loss):
            seen.append((epoch, loss))
            return epoch == 0

        losses = _train(
            obs_bundle, RunLogger(sink), on_epoch_end=stop_after_first
        )
        assert len(losses) == 1
        assert seen == [(0, losses[0])]
        assert len(sink.events("train.early_stop")) == 1
        assert sink.events("train.end")[0]["epochs_run"] == 1

    def test_on_epoch_end_none_return_runs_all_epochs(self, obs_bundle):
        calls = []
        losses = _train(obs_bundle, on_epoch_end=lambda e, l: calls.append(e))
        assert len(losses) == 2
        assert calls == [0, 1]

    def test_train_spans_recorded(self, obs_bundle):
        reset_tracer()
        _train(obs_bundle)
        paths = {path for _, _, path in get_tracer().walk()}
        assert "train.run" in paths
        assert "train.run/train.epoch" in paths
        assert "train.run/train.epoch/train.batch" in paths
        reset_tracer()

    def test_train_batch_histogram_populated(self, obs_bundle):
        reset_registry()
        _train(obs_bundle)
        hist = get_registry().histogram("train.batch_ms")
        assert hist.count >= 2
        assert hist.p95 >= hist.p50 > 0.0
        reset_registry()


class TestEvalInstrumentation:
    def test_rerank_latency_histogram_uniform(self, obs_bundle):
        reset_registry()
        evaluate_reranker(None, obs_bundle)  # identity / init path
        from repro.rerank import MMRReranker

        evaluate_reranker(MMRReranker(), obs_bundle)
        registry = get_registry()
        mmr = registry.histogram("rerank.latency_ms", reranker="mmr")
        assert mmr.count == 1
        assert mmr.sum > 0.0
        gauges = {
            (s["name"], s["labels"].get("model"))
            for s in registry.collect()
            if s["kind"] == "gauge"
        }
        assert ("eval.click@5", "init") in gauges
        assert ("eval.click@5", "mmr") in gauges
        reset_registry()

    def test_eval_result_event(self, obs_bundle):
        sink = MemorySink()
        previous = set_run_logger(RunLogger(sink))
        try:
            evaluate_reranker(None, obs_bundle)
        finally:
            set_run_logger(previous)
        (result,) = sink.events("eval.result")
        assert result["model"] == "init"
        assert result["rerank_ms_per_list"] >= 0.0
        assert "click@5" in result


class TestOpProfiler:
    def test_forward_backward_counts_and_times(self):
        from repro.nn.tensor import Tensor

        with profile_ops():
            a = Tensor(np.ones((4, 4)), requires_grad=True)
            ((a @ a).relu().sum()).backward()
        stats = {row["op"]: row for row in op_stats()}
        for op in ("matmul", "relu", "sum"):
            assert stats[op]["forward_calls"] == 1
            assert stats[op]["backward_calls"] == 1
            assert stats[op]["forward_ms"] >= 0.0
            assert stats[op]["backward_ms"] >= 0.0

    def test_ops_restored_after_profiling(self):
        from repro.nn.tensor import Tensor

        with profile_ops():
            pass
        assert not hasattr(Tensor.__add__, "_obs_profiled_op")
        assert not hasattr(Tensor.__dict__["concatenate"].__func__, "_obs_profiled_op")

    def test_gradients_identical_under_profiler(self):
        from repro.nn.tensor import Tensor

        rng = np.random.default_rng(0)
        data = rng.normal(size=(5, 3))

        def run():
            t = Tensor(data, requires_grad=True)
            ((t * 2.0).sigmoid().mean()).backward()
            return t.grad.copy()

        plain = run()
        with profile_ops():
            profiled = run()
        np.testing.assert_allclose(plain, profiled)

    def test_mirrored_into_registry_as_gauges(self):
        from repro.nn.tensor import Tensor

        reset_registry()
        with profile_ops():
            (Tensor(np.ones(3), requires_grad=True).sum()).backward()
        op_stats()
        names = {s["name"] for s in get_registry().collect()}
        assert "autograd.op.forward_calls" in names
        assert "autograd.op.backward_ms" in names
        reset_registry()


class TestObservedRunReport:
    def test_run_log_reconstructs_summary(self, obs_bundle, tmp_path):
        path = tmp_path / "run.jsonl"
        with observed_run(path, run_id="e2e"):
            with profile_ops(reset=False):
                _train(obs_bundle)
            evaluate_reranker(None, obs_bundle)
        from repro.obs import read_jsonl

        records = read_jsonl(path)
        events = {r["event"] for r in records}
        assert {"train.start", "train.epoch", "span", "autograd.op",
                "metric", "eval.result"} <= events
        report = render_report(records)
        assert "Training loss curve" in report
        assert "Slowest spans" in report
        assert "Top autograd ops" in report
        assert "train.run/train.epoch" in report
        assert "Evaluation results" in report
        reset_registry()
        reset_tracer()
