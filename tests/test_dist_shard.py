"""Sharded generation tests: determinism, durability, resume, repair."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.synthetic import WorldConfig
from repro.dist import DistError, ShardPlan, generate_shard, generate_shards, load_population
from repro.dist.shard import manifest_path, shard_path
from repro.obs import get_registry
from repro.resilience import FaultSpec, chaos
from repro.utils.atomicio import checksum_sidecar_path, verify_checksum_sidecar

pytestmark = pytest.mark.dist


@pytest.fixture(scope="module")
def plan():
    return ShardPlan(
        world=WorldConfig(num_users=50, num_items=40, num_topics=4, seed=3),
        num_shards=3,
    )


class TestShardPlan:
    def test_validation(self):
        world = WorldConfig(num_users=2, num_items=10, num_topics=3, seed=0)
        with pytest.raises(ValueError):
            ShardPlan(world=world, num_shards=0)
        with pytest.raises(ValueError):
            ShardPlan(world=world, num_shards=3)  # more shards than users

    def test_sizes_and_offsets_partition_the_population(self, plan):
        sizes = plan.shard_sizes()
        offsets = plan.shard_offsets()
        assert sum(sizes) == plan.world.num_users
        assert sizes == [17, 17, 16]  # first num_users % S shards one larger
        assert offsets == [0, 17, 34]


class TestGenerate:
    def test_index_bounds(self, plan, tmp_path):
        with pytest.raises(ValueError):
            generate_shard(plan, 3, tmp_path)

    def test_shards_are_deterministic_and_checksummed(self, plan, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        generate_shards(a, plan)
        generate_shards(b, plan)
        for index in range(plan.num_shards):
            path_a, path_b = shard_path(a, index), shard_path(b, index)
            assert verify_checksum_sidecar(path_a) is True
            assert path_a.read_bytes() == path_b.read_bytes()

    def test_concat_matches_plan_layout(self, plan, tmp_path):
        generate_shards(tmp_path, plan)
        population = load_population(tmp_path)
        assert population.num_users == plan.world.num_users
        # rows of theta are probability distributions, the hidden rho in [0,1]
        assert np.allclose(population.topic_preference.sum(axis=1), 1.0)
        assert (population.diversity_weight >= 0).all()
        assert (population.diversity_weight <= 1).all()
        # a single shard re-generated standalone lands at its plan offset
        single = tmp_path / "single"
        generate_shard(plan, 1, single)
        with np.load(shard_path(single, 1)) as archive:
            offset = plan.shard_offsets()[1]
            size = plan.shard_sizes()[1]
            assert np.array_equal(
                archive["features"],
                population.features[offset : offset + size],
            )

    def test_resume_regenerates_only_missing_or_corrupt(self, plan, tmp_path):
        first = generate_shards(tmp_path, plan)
        assert first["generated"] == plan.num_shards
        reference = load_population(tmp_path)
        shard_path(tmp_path, 0).unlink()  # lost
        shard_path(tmp_path, 2).write_bytes(b"torn write")  # corrupt
        second = generate_shards(tmp_path, plan)
        assert second["generated"] == 2
        repaired = load_population(tmp_path)
        assert np.array_equal(reference.features, repaired.features)
        assert np.array_equal(reference.latent, repaired.latent)

    def test_manifest_records_every_shard_with_digest(self, plan, tmp_path):
        manifest = generate_shards(tmp_path, plan)
        on_disk = json.loads(manifest_path(tmp_path).read_text())
        assert on_disk == manifest
        assert [entry["index"] for entry in manifest["shards"]] == [0, 1, 2]
        for entry in manifest["shards"]:
            sidecar = checksum_sidecar_path(tmp_path / entry["path"])
            assert entry["sha256"] == sidecar.read_text().split()[0]

    def test_write_faultpoint_is_retried(self, plan, tmp_path):
        retries = get_registry().counter(
            "resilience.retries", site="dist.shard.write"
        )
        before = retries.value
        slept = []
        with chaos(FaultSpec("dist.shard.write", times=2)) as chaos_plan:
            generate_shard(plan, 0, tmp_path, sleep=slept.append)
            assert chaos_plan.fires("dist.shard.write") == 2
        assert verify_checksum_sidecar(shard_path(tmp_path, 0)) is True
        assert retries.value - before == 2
        assert len(slept) == 2  # backoff went through the injectable sleeper


class TestLoad:
    def test_missing_manifest_is_classified(self, tmp_path):
        with pytest.raises(DistError, match="manifest"):
            load_population(tmp_path)

    def test_corrupt_shard_is_refused_by_name(self, plan, tmp_path):
        generate_shards(tmp_path, plan)
        shard_path(tmp_path, 1).write_bytes(b"bitrot")
        with pytest.raises(DistError, match="shard 1"):
            load_population(tmp_path)

    def test_missing_shard_is_refused(self, plan, tmp_path):
        generate_shards(tmp_path, plan)
        shard_path(tmp_path, 2).unlink()
        with pytest.raises(DistError, match="shard 2"):
            load_population(tmp_path)
