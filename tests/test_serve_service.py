"""Serving-tier tests: the asyncio service end to end, deterministically.

Everything runs on a :class:`~repro.serve.clock.ManualClock` driven
loopback asyncio loop — no dispatcher task, no timers, no sleeps — per
the serving test contract in TESTING.md.  The headline guarantees:

- every served slate is **bitwise-identical** to calling the tenant's
  ``Reranker.rerank`` directly on that request alone;
- N concurrent tasks hammering overlapping users produce the same slate
  multiset as serial execution;
- a 500-request seeded chaos sweep through the service returns 100%
  valid slates with every breaker/fallback accounted for.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import RapidConfig, RapidReranker, TrainConfig
from repro.data import RankingRequest, build_batch
from repro.obs import get_registry
from repro.obs.slo import serving_slo
from repro.rerank import MMRReranker
from repro.resilience import FaultSpec, chaos
from repro.resilience.degrade import ResilientReranker, default_fallback_chain
from repro.serve import (
    LoadGenerator,
    ManualClock,
    RerankService,
    ServeRequest,
    ServiceOverloaded,
    ServingTenant,
    SlateCache,
    ZipfianWorkload,
)

pytestmark = pytest.mark.serve


def _rapid(world, seed: int = 0) -> RapidReranker:
    config = RapidConfig(
        user_dim=world.population.feature_dim,
        item_dim=world.catalog.feature_dim,
        num_topics=world.catalog.num_topics,
        hidden=4,
        seed=seed,
    )
    return RapidReranker(config, train_config=TrainConfig(epochs=1, batch_size=8))


def _requests(world, count: int, list_length: int = 8, seed: int = 0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        items = rng.choice(world.config.num_items, size=list_length, replace=False)
        out.append(
            ServeRequest(
                int(rng.integers(world.config.num_users)),
                items,
                rng.normal(size=list_length),
            )
        )
    return out


def _service(world, histories, reranker, clock, **kwargs):
    tenant = ServingTenant(
        reranker, world.catalog, world.population, list(histories)
    )
    kwargs.setdefault("cache", SlateCache(clock=clock))
    return RerankService(tenant, clock=clock, **kwargs)


def _direct_slate(world, histories, reranker, request: ServeRequest):
    """The oracle: rerank this request alone, no batching, no cache."""
    batch = build_batch(
        [RankingRequest(request.user_id, request.items, request.initial_scores)],
        world.catalog,
        world.population,
        histories,
    )
    return reranker.rerank(batch)[0]


async def _serve_all(service, requests):
    tasks = [asyncio.create_task(service.rerank(r)) for r in requests]
    while not all(t.done() for t in tasks):
        await service.drain()
    return await asyncio.gather(*tasks)


def _run(coro):
    return asyncio.run(coro)


class TestServedVsDirect:
    @pytest.mark.parametrize("model", ["mmr", "rapid"])
    def test_served_slates_bitwise_equal_direct(self, taobao_world, model):
        world = taobao_world
        histories = world.sample_histories()
        reranker = MMRReranker() if model == "mmr" else _rapid(world)
        clock = ManualClock()
        service = _service(
            world, histories, reranker, clock, max_batch_size=8, cache=None
        )
        requests = _requests(world, 13, seed=3)

        results = _run(_serve_all(service, requests))
        batch_sizes = {r.batch_size for r in results}
        assert max(batch_sizes) > 1, "no coalescing happened"
        for request, result in zip(requests, results):
            direct = _direct_slate(world, histories, reranker, request)
            np.testing.assert_array_equal(result.permutation, direct)
            np.testing.assert_array_equal(
                result.ranked_items, request.items[direct]
            )

    def test_mixed_lengths_group_separately(self, taobao_world):
        """Unequal-length requests never share a forward batch (padding
        would change the rows relative to serving each alone)."""
        world = taobao_world
        histories = world.sample_histories()
        clock = ManualClock()
        service = _service(
            world, histories, MMRReranker(), clock, max_batch_size=16, cache=None
        )
        short = _requests(world, 3, list_length=6, seed=0)
        long = _requests(world, 3, list_length=9, seed=1)
        results = _run(_serve_all(service, short + long))
        assert [r.batch_size for r in results] == [3, 3, 3, 3, 3, 3]
        for request, result in zip(short + long, results):
            assert result.permutation.size == request.list_length


class TestCacheIntegration:
    def test_repeat_request_hits_cache_with_same_slate(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        clock = ManualClock()
        service = _service(world, histories, MMRReranker(), clock)
        [request] = _requests(world, 1, seed=5)

        async def scenario():
            first, _ = await asyncio.gather(
                service.rerank(request), service.drain()
            )
            second = await service.rerank(request)
            return first, second

        first, second = _run(scenario())
        assert first.source == "batched" and second.source == "cache"
        np.testing.assert_array_equal(first.permutation, second.permutation)

    def test_history_update_invalidates_and_reserves_fresh(self, taobao_world):
        """Invalidation-on-history-update never serves a stale slate."""
        world = taobao_world
        histories = world.sample_histories()
        rapid = _rapid(world)
        clock = ManualClock()
        service = _service(world, histories, rapid, clock)
        [request] = _requests(world, 1, seed=7)

        async def scenario():
            before, _ = await asyncio.gather(
                service.rerank(request), service.drain()
            )
            # New feedback arrives for this user: drop their slates.
            service.update_history(
                request.user_id, world.config.num_items - 1 - np.arange(6)
            )
            after, _ = await asyncio.gather(
                service.rerank(request), service.drain()
            )
            return before, after

        before, after = _run(scenario())
        assert after.source == "batched", "stale slate served from cache"
        tenant = service.tenants["default"]
        np.testing.assert_array_equal(
            after.permutation,
            _direct_slate(world, tenant.histories, rapid, request),
        )

    def test_ttl_expiry_forces_recompute(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        clock = ManualClock()
        service = _service(
            world,
            histories,
            MMRReranker(),
            clock,
            cache=SlateCache(clock=clock, ttl_s=10.0),
        )
        [request] = _requests(world, 1, seed=9)

        async def scenario():
            first, _ = await asyncio.gather(
                service.rerank(request), service.drain()
            )
            clock.advance(11.0)
            second, _ = await asyncio.gather(
                service.rerank(request), service.drain()
            )
            return first, second

        first, second = _run(scenario())
        assert (first.source, second.source) == ("batched", "batched")
        np.testing.assert_array_equal(first.permutation, second.permutation)


class TestAdmissionControl:
    def test_reject_policy_raises_overloaded(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        clock = ManualClock()
        service = _service(
            world,
            histories,
            MMRReranker(),
            clock,
            max_batch_size=100,
            max_pending=2,
            cache=None,
        )
        requests = _requests(world, 4, seed=11)

        async def scenario():
            get_registry().reset()
            tasks = [asyncio.create_task(service.rerank(r)) for r in requests]
            await asyncio.sleep(0)  # all four submit before any drain
            await service.drain()
            return await asyncio.gather(*tasks, return_exceptions=True)

        outcomes = _run(scenario())
        shed = [o for o in outcomes if isinstance(o, ServiceOverloaded)]
        served = [o for o in outcomes if not isinstance(o, Exception)]
        assert len(shed) == 2 and len(served) == 2
        assert (
            get_registry()
            .counter("serve.requests", tenant="default", source="shed")
            .value
            == 2
        )

    def test_passthrough_policy_serves_initial_order(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        clock = ManualClock()
        service = _service(
            world,
            histories,
            MMRReranker(),
            clock,
            max_batch_size=100,
            max_pending=1,
            shed_policy="passthrough",
            cache=None,
        )
        requests = _requests(world, 3, seed=13)

        async def scenario():
            tasks = [asyncio.create_task(service.rerank(r)) for r in requests]
            await asyncio.sleep(0)
            await service.drain()
            return await asyncio.gather(*tasks)

        results = _run(scenario())
        sheds = [r for r in results if r.source == "shed"]
        assert len(sheds) == 2
        for result in sheds:
            np.testing.assert_array_equal(
                result.permutation, np.arange(requests[0].list_length)
            )


class TestConcurrencyRace:
    def test_concurrent_equals_serial_slate_multiset(self, taobao_world):
        """N tasks with overlapping users == serial execution, as multisets."""
        world = taobao_world
        histories = world.sample_histories()
        rapid = _rapid(world)
        rng = np.random.default_rng(17)
        base = _requests(world, 10, seed=17)
        # Overlap: duplicate several requests verbatim and shuffle arrival.
        requests = base + [base[i] for i in rng.integers(0, 10, size=6)]
        order = rng.permutation(len(requests))

        serial = [
            tuple(_direct_slate(world, histories, rapid, r)) for r in requests
        ]

        clock = ManualClock()
        service = _service(
            world, histories, rapid, clock, max_batch_size=5
        )
        results = _run(_serve_all(service, [requests[i] for i in order]))
        concurrent = [tuple(r.permutation) for r in results]

        assert sorted(serial) == sorted(concurrent)
        assert {r.source for r in results} <= {"batched", "cache"}

    def test_virtual_loadgen_replays_bitwise(self, taobao_world):
        """Same workload seed -> identical report and served traffic."""
        world = taobao_world
        histories = world.sample_histories()

        def one_run():
            get_registry().reset()
            clock = ManualClock()
            service = _service(
                world,
                histories,
                MMRReranker(),
                clock,
                max_batch_size=4,
                max_wait_ms=2.0,
            )
            workload = ZipfianWorkload(
                world.catalog,
                world.population,
                num_virtual_users=100_000,
                list_length=8,
                seed=23,
            )
            generator = LoadGenerator(service, workload, concurrency=8)
            report = _run(generator.run_virtual(150, clock))
            return report.summary()

        first, second = one_run(), one_run()
        assert first == second
        assert first["requests"] == 150
        assert first["cache_hit_rate"] > 0.05  # Zipf head repeats


class TestChaosSweep:
    def test_500_request_sweep_all_valid_with_accounting(self, taobao_world):
        """Chaos through the *service*: valid slates + fallback accounting."""
        world = taobao_world
        histories = world.sample_histories()
        rapid = _rapid(world)
        resilient = ResilientReranker(
            rapid,
            fallbacks=default_fallback_chain(tradeoff=0.8),
            deadline_ms=None,
        )
        clock = ManualClock()
        service = _service(
            world, histories, resilient, clock, max_batch_size=8, cache=None
        )
        requests = _requests(world, 500, seed=29)
        get_registry().reset()

        with chaos(
            FaultSpec(
                "rerank.score.rapid-pro",
                kind="error",
                probability=0.25,
                times=None,
            ),
            seed=31,
        ) as plan:
            results = _run(_serve_all(service, requests))

        length = requests[0].list_length
        assert len(results) == 500
        for result in results:
            assert result.permutation.shape == (length,)
            assert (np.sort(result.permutation) == np.arange(length)).all()

        # Accounting: every injected fault became exactly one MMR fallback.
        assert plan.fires() > 0
        fallback = get_registry().counter(
            "resilience.fallbacks",
            reranker=resilient.name,
            to="mmr",
            reason="InjectedFault",
        )
        assert fallback.value == plan.fires()
        served = get_registry().counter(
            "serve.requests", tenant="default", source="batched"
        )
        assert served.value == 500


class TestControlPlane:
    def test_swap_model_clears_tenant_cache(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        clock = ManualClock()
        service = _service(world, histories, MMRReranker(tradeoff=0.8), clock)
        [request] = _requests(world, 1, seed=37)

        async def scenario():
            first, _ = await asyncio.gather(
                service.rerank(request), service.drain()
            )
            old = service.swap_model(MMRReranker(tradeoff=0.0))
            second, _ = await asyncio.gather(
                service.rerank(request), service.drain()
            )
            return first, old, second

        first, old, second = _run(scenario())
        assert old.tradeoff == 0.8
        assert second.source == "batched", "cache survived a model swap"
        tenant = service.tenants["default"]
        np.testing.assert_array_equal(
            second.permutation,
            _direct_slate(world, tenant.histories, tenant.reranker, request),
        )

    def test_unknown_tenant_rejected(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        clock = ManualClock()
        service = _service(world, histories, MMRReranker(), clock)
        [request] = _requests(world, 1)
        request.tenant = "nope"
        with pytest.raises(KeyError):
            _run(service.rerank(request))

    def test_multi_tenant_routing_and_isolation(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        clock = ManualClock()
        tenants = {
            "sharp": ServingTenant(
                MMRReranker(tradeoff=1.0),
                world.catalog,
                world.population,
                list(histories),
                name="sharp",
            ),
            "diverse": ServingTenant(
                MMRReranker(tradeoff=0.0),
                world.catalog,
                world.population,
                list(histories),
                name="diverse",
            ),
        }
        service = RerankService(
            tenants, cache=SlateCache(clock=clock), clock=clock
        )
        [base] = _requests(world, 1, seed=41)
        sharp = ServeRequest(
            base.user_id, base.items, base.initial_scores, tenant="sharp"
        )
        diverse = ServeRequest(
            base.user_id, base.items, base.initial_scores, tenant="diverse"
        )

        async def scenario():
            results, _ = await asyncio.gather(
                asyncio.gather(service.rerank(sharp), service.rerank(diverse)),
                service.drain(),
            )
            return results

        result_sharp, result_diverse = _run(scenario())
        for tenant_name, result in (
            ("sharp", result_sharp),
            ("diverse", result_diverse),
        ):
            tenant = service.tenants[tenant_name]
            np.testing.assert_array_equal(
                result.permutation,
                _direct_slate(
                    world,
                    tenant.histories,
                    tenant.reranker,
                    ServeRequest(base.user_id, base.items, base.initial_scores),
                ),
            )
        # tradeoff=1.0 vs 0.0 rank differently on this world
        assert not np.array_equal(
            result_sharp.permutation, result_diverse.permutation
        )


class TestSLOIntegration:
    def test_shed_storm_pages_the_slo(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        clock = ManualClock()
        monitor = serving_slo(min_events=1, clock=clock)
        service = _service(
            world,
            histories,
            MMRReranker(),
            clock,
            max_batch_size=100,
            max_pending=1,
            shed_policy="passthrough",
            slo_monitor=monitor,
            cache=None,
        )
        requests = _requests(world, 12, seed=43)

        async def scenario():
            tasks = [asyncio.create_task(service.rerank(r)) for r in requests]
            await asyncio.sleep(0)
            await service.drain()
            await asyncio.gather(*tasks)

        _run(scenario())
        # 11 of 12 requests shed: burn rate is far beyond the page rule.
        assert monitor.state == "page"


class TestDispatcherMode:
    def test_background_dispatcher_serves_without_manual_drain(
        self, taobao_world
    ):
        """Production mode: start() serves full batches with no drain calls.

        Uses a full-size batch so release is submission-triggered (the
        wake event), not timer-triggered — still no wall-clock waiting.
        """
        world = taobao_world
        histories = world.sample_histories()
        service = _service(
            world,
            histories,
            MMRReranker(),
            ManualClock(),
            max_batch_size=4,
            max_wait_ms=10_000.0,
            cache=None,
        )
        requests = _requests(world, 8, seed=47)

        async def scenario():
            await service.start()
            try:
                results = await asyncio.gather(
                    *(service.rerank(r) for r in requests)
                )
            finally:
                await service.stop()
            return results

        results = _run(scenario())
        assert [r.batch_size for r in results] == [4] * 8
        for request, result in zip(requests, results):
            assert (np.sort(result.permutation) == np.arange(8)).all()
