"""Schema datatype validation tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Catalog, Population, RankingRequest, RerankDataset


def _population(n=3, q=2, m=4):
    theta = np.full((n, m), 1.0 / m)
    return Population(
        features=np.zeros((n, q)),
        topic_preference=theta,
        diversity_weight=theta.copy(),
        latent=np.zeros((n, 5)),
    )


class TestCatalog:
    def test_basic_properties(self):
        catalog = Catalog(features=np.zeros((4, 3)), coverage=np.eye(4))
        assert catalog.num_items == 4
        assert catalog.num_topics == 4
        assert catalog.feature_dim == 3

    def test_coverage_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Catalog(features=np.zeros((2, 2)), coverage=np.full((2, 2), 1.5))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Catalog(features=np.zeros((3, 2)), coverage=np.zeros((2, 2)))

    def test_bids_length_checked(self):
        with pytest.raises(ValueError):
            Catalog(
                features=np.zeros((3, 2)),
                coverage=np.zeros((3, 2)),
                bids=np.ones(2),
            )

    def test_dominant_topics(self):
        coverage = np.array([[0.9, 0.1], [0.2, 0.8]])
        catalog = Catalog(features=np.zeros((2, 1)), coverage=coverage)
        assert np.array_equal(catalog.dominant_topics(), [0, 1])

    def test_tiny_negative_coverage_clipped(self):
        coverage = np.array([[-1e-12, 1.0]])
        catalog = Catalog(features=np.zeros((1, 1)), coverage=coverage)
        assert catalog.coverage.min() >= 0.0


class TestPopulation:
    def test_num_users(self):
        assert _population(5).num_users == 5

    def test_misaligned_arrays_raise(self):
        with pytest.raises(ValueError):
            Population(
                features=np.zeros((3, 2)),
                topic_preference=np.zeros((2, 4)),
                diversity_weight=np.zeros((3, 4)),
                latent=np.zeros((3, 5)),
            )


class TestRankingRequest:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            RankingRequest(0, np.array([1, 2, 3]), np.array([0.1, 0.2]))

    def test_clicks_alignment_enforced(self):
        with pytest.raises(ValueError):
            RankingRequest(
                0, np.array([1, 2]), np.array([0.1, 0.2]), clicks=np.array([1.0])
            )

    def test_list_length(self):
        request = RankingRequest(0, np.array([5, 6]), np.array([0.5, 0.1]))
        assert request.list_length == 2

    def test_rejects_2d_items(self):
        with pytest.raises(ValueError):
            RankingRequest(0, np.zeros((2, 2)), np.zeros((2, 2)))


class TestRerankDataset:
    def test_history_count_enforced(self):
        catalog = Catalog(features=np.zeros((2, 2)), coverage=np.zeros((2, 3)))
        with pytest.raises(ValueError):
            RerankDataset(
                catalog=catalog,
                population=_population(3),
                histories=[np.array([0])],  # only one history for 3 users
                ranker_train=np.zeros((0, 3)),
            )

    def test_history_lookup(self):
        catalog = Catalog(features=np.zeros((2, 2)), coverage=np.zeros((2, 3)))
        dataset = RerankDataset(
            catalog=catalog,
            population=_population(2),
            histories=[np.array([0]), np.array([1, 0])],
            ranker_train=np.zeros((0, 3)),
        )
        assert np.array_equal(dataset.history_of(1), [1, 0])
