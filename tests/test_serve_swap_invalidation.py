"""Regression: model swaps must invalidate tape-free weight-cast caches.

PR 8 documented the staleness window: :mod:`repro.nn.inference` keys its
float32 weight casts on parameter-array *identity*, so in-place mutation
of ``param.data`` serves stale casts until :func:`invalidate_caches` is
called.  Serving exposes exactly that window — a mid-flight model swap
can reinstate a module whose weights were updated in place.  The fix:
:meth:`ResilientReranker.swap_primary` fires the invalidation on both the
outgoing and incoming primary automatically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RapidConfig, RapidReranker, TrainConfig
from repro.data import RankingRequest, build_batch
from repro.nn import inference
from repro.resilience.degrade import ResilientReranker, _invalidate_stage_caches
from repro.serve import ManualClock, RerankService, ServeRequest, ServingTenant

pytestmark = pytest.mark.serve


def _rapid(world, seed: int = 0) -> RapidReranker:
    config = RapidConfig(
        user_dim=world.population.feature_dim,
        item_dim=world.catalog.feature_dim,
        num_topics=world.catalog.num_topics,
        hidden=4,
        seed=seed,
    )
    return RapidReranker(config, train_config=TrainConfig(epochs=1, batch_size=8))


def _batch(world, histories, count: int = 6, seed: int = 0):
    rng = np.random.default_rng(seed)
    requests = []
    for _ in range(count):
        items = rng.choice(world.config.num_items, size=8, replace=False)
        requests.append(
            RankingRequest(
                int(rng.integers(world.config.num_users)),
                items,
                rng.normal(size=8),
            )
        )
    return build_batch(requests, world.catalog, world.population, histories)


def _mutate_in_place(rapid: RapidReranker) -> None:
    """Flip every weight's sign without rebinding any array."""
    for param in rapid.model.parameters():
        param.data *= -1.0


def test_in_place_mutation_is_stale_without_invalidation(taobao_world):
    """The documented PR 8 window really exists (guards the fixture)."""
    world = taobao_world
    histories = world.sample_histories()
    rapid = _rapid(world)
    batch = _batch(world, histories)
    with inference.use_infer(True):
        before = rapid.score_batch(batch)
        _mutate_in_place(rapid)
        stale = rapid.score_batch(batch)  # identity-keyed caches: unchanged
        np.testing.assert_array_equal(stale, before)
        inference.invalidate_caches(rapid.model)
        fresh = rapid.score_batch(batch)
    assert not np.allclose(fresh, before), "mutation had no effect at all"


def test_swap_primary_invalidates_incoming_model(taobao_world):
    """Swapping in a model mutated in place must serve its NEW weights."""
    world = taobao_world
    histories = world.sample_histories()
    rapid = _rapid(world)
    standby = _rapid(world, seed=1)
    batch = _batch(world, histories)
    wrapped = ResilientReranker(rapid, fallbacks=[], deadline_ms=None)
    with inference.use_infer(True):
        wrapped.rerank(batch)  # build rapid's weight-cast caches
        wrapped.swap_primary(standby)
        assert wrapped.name == "resilient-rapid-pro"
        # While offline, the original model's weights are updated IN PLACE
        # (the exact shape of a hot-reload that reuses buffers).
        _mutate_in_place(rapid)
        wrapped.swap_primary(rapid)
        served = wrapped.score_batch(batch)
        inference.invalidate_caches(rapid.model)  # belt-and-braces oracle
        oracle = rapid.score_batch(batch)
    np.testing.assert_array_equal(served, oracle)


def test_swap_primary_invalidates_outgoing_model(taobao_world):
    """The outgoing primary's caches die too: re-swapping it later cannot
    resurrect casts from before any interim in-place update."""
    world = taobao_world
    histories = world.sample_histories()
    rapid = _rapid(world)
    batch = _batch(world, histories)
    wrapped = ResilientReranker(rapid, fallbacks=[], deadline_ms=None)
    with inference.use_infer(True):
        wrapped.rerank(batch)
    assert any(
        key.startswith("_infer_cache_")
        for module in _walk(rapid.model)
        for key in module.__dict__
    )
    wrapped.swap_primary(_rapid(world, seed=2))
    assert not any(
        key.startswith("_infer_cache_")
        for module in _walk(rapid.model)
        for key in module.__dict__
    )


def _walk(module):
    yield module
    for child in module.children():
        yield from _walk(child)


def test_invalidate_stage_caches_finds_nested_modules(taobao_world):
    """The sweep covers RapidReranker.model-style nesting."""
    world = taobao_world
    histories = world.sample_histories()
    rapid = _rapid(world)
    batch = _batch(world, histories)
    with inference.use_infer(True):
        rapid.score_batch(batch)
    assert any(
        key.startswith("_infer_cache_")
        for module in _walk(rapid.model)
        for key in module.__dict__
    )
    _invalidate_stage_caches(rapid)
    assert not any(
        key.startswith("_infer_cache_")
        for module in _walk(rapid.model)
        for key in module.__dict__
    )


def test_service_swap_model_serves_fresh_weights(taobao_world):
    """End to end through the service: swap + in-place mutation + cache."""
    import asyncio

    world = taobao_world
    histories = world.sample_histories()
    rapid = _rapid(world)
    wrapped = ResilientReranker(rapid, fallbacks=[], deadline_ms=None)
    clock = ManualClock()
    tenant = ServingTenant(wrapped, world.catalog, world.population, list(histories))
    from repro.serve import SlateCache

    service = RerankService(tenant, cache=SlateCache(clock=clock), clock=clock)
    rng = np.random.default_rng(51)
    items = rng.choice(world.config.num_items, size=8, replace=False)
    request = ServeRequest(
        int(rng.integers(world.config.num_users)), items, rng.normal(size=8)
    )

    async def scenario():
        before, _ = await asyncio.gather(service.rerank(request), service.drain())
        _mutate_in_place(rapid)
        service.swap_model(rapid)  # same wrapper, same (mutated) model
        after, _ = await asyncio.gather(service.rerank(request), service.drain())
        return before, after

    with inference.use_infer(True):
        before, after = asyncio.run(scenario())
        assert after.source == "batched"  # slate cache cleared by the swap
        single = build_batch(
            [RankingRequest(request.user_id, request.items, request.initial_scores)],
            world.catalog,
            world.population,
            histories,
        )
        inference.invalidate_caches(rapid.model)
        oracle = wrapped.rerank(single)[0]
    np.testing.assert_array_equal(after.permutation, oracle)
