"""Run-log crash safety: kill-mid-run replayability and torn-tail handling.

The contract (documented in ``repro.obs.runlog``): JsonlSink flushes after
every record, so a process killed at an arbitrary point leaves a log whose
complete lines replay exactly the events that finished — at worst the
final line is torn, and ``read_jsonl(strict=False)`` drops only that.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import JsonlSink, RunLogger, read_jsonl

KILLED_WRITER = """
import os, sys
sys.path.insert(0, {src!r})
from repro.obs import JsonlSink, RunLogger

logger = RunLogger(JsonlSink({path!r}, fsync={fsync}), run_id="killed")
for step in range({events}):
    logger.log("step", step=step)
# Die without closing, flushing, or unwinding anything: the hardest exit
# available to a process short of SIGKILL.
os._exit(1)
"""


def _run_killed_writer(tmp_path, events: int = 25, fsync: bool = False) -> Path:
    src = str(Path(__file__).resolve().parents[1] / "src")
    path = tmp_path / "run.jsonl"
    script = KILLED_WRITER.format(
        src=src, path=str(path), fsync=fsync, events=events
    )
    proc = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True
    )
    assert proc.returncode == 1, proc.stderr
    return path


class TestKillMidRun:
    @pytest.mark.parametrize("fsync", [False, True])
    def test_all_logged_events_survive_hard_exit(self, tmp_path, fsync):
        path = _run_killed_writer(tmp_path, events=25, fsync=fsync)
        records = read_jsonl(path)
        assert [r["step"] for r in records] == list(range(25))
        assert all(r["run_id"] == "killed" for r in records)

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = _run_killed_writer(tmp_path, events=10)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"ts": 1.0, "event": "torn", "ste')  # no newline
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path)  # strict default refuses silent data loss
        records = read_jsonl(path, strict=False)
        assert [r["step"] for r in records] == list(range(10))

    def test_torn_middle_line_still_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"event": "a"}\n{"torn\n{"event": "b"}\n')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path, strict=False)  # mid-file corruption is real


class TestJsonlSink:
    def test_append_preserves_previous_runs(self, tmp_path):
        path = tmp_path / "run.jsonl"
        for run in range(2):
            logger = RunLogger(JsonlSink(path), run_id=f"run{run}")
            logger.log("start")
            logger.close()
        records = read_jsonl(path)
        assert [r["run_id"] for r in records] == ["run0", "run1"]

    def test_fsync_sink_round_trips(self, tmp_path):
        path = tmp_path / "run.jsonl"
        logger = RunLogger(JsonlSink(path, fsync=True), run_id="durable")
        logger.log("only", value=7)
        # Readable *before* close: the flush+fsync already landed it.
        assert read_jsonl(path)[0]["value"] == 7
        logger.close()


class TestMultiProcessSafety:
    """One JsonlSink, many pids: refuse to share a file, or fan out per pid."""

    def test_per_pid_path_inserts_suffix_before_extension(self):
        from repro.obs.runlog import per_pid_path

        assert per_pid_path("log.jsonl", 42) == Path("log.pid42.jsonl")
        assert per_pid_path(Path("d/log"), 7) == Path("d/log.pid7")

    def test_foreign_pid_write_is_refused_without_per_pid(self, tmp_path):
        sink = JsonlSink(tmp_path / "run.jsonl")
        sink.write({"event": "ok"})
        sink._owner_pid += 1  # what a forked child would observe
        with pytest.raises(RuntimeError, match="per_pid=True"):
            sink.write({"event": "torn"})

    def test_per_pid_sink_rebinds_in_a_real_forked_child(self, tmp_path):
        import multiprocessing as mp

        from repro.obs.runlog import per_pid_path

        sink = JsonlSink(tmp_path / "run.jsonl", per_pid=True)
        sink.write({"event": "parent"})

        def child() -> None:
            sink.write({"event": "child"})  # inherited object, new pid
            sink.close()

        proc = mp.get_context("fork").Process(target=child)
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == 0
        files = sorted(tmp_path.glob("run.pid*.jsonl"))
        assert len(files) == 2  # one physical file per process
        assert per_pid_path(tmp_path / "run.jsonl") in files
        events = {
            record["event"]
            for file in files
            for record in read_jsonl(file)
        }
        assert events == {"parent", "child"}
