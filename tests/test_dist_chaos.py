"""The dist chaos kill matrix (DESIGN.md §12, TESTING.md).

Headline guarantee: SIGKILLing workers mid-epoch at ``dist.worker.step``
leaves the training run **bit-identical** — same loss curve, same final
parameters — because replacements adopt the parent replica's state and
all per-step randomness is stateless.  Three delivery modes:

- **worker-side kill** (the chaos spec armed inside the worker's first
  incarnation): the worker dies *before* contributing; the replacement
  recomputes that step;
- **parent-side kill** (plan armed in the test process, delivered by the
  parent per gradient message): the contribution is banked first, the
  replacement resumes one step later — and ``plan.fires()`` stays
  auditable against ``resilience``/``dist`` counters;
- **degradation** (budget exhausted): the run *completes* on the
  survivors with a ``dist.degraded`` event — arithmetic changes, and
  that is announced, never silent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RapidConfig, TrainConfig, make_rapid_variant
from repro.data import RankingRequest
from repro.dist import DistTrainConfig, RestartPolicy, train_dist
from repro.obs import MemorySink, RunLogger, get_registry, set_run_logger
from repro.resilience import FaultSpec, chaos

pytestmark = [pytest.mark.dist, pytest.mark.slow]


@pytest.fixture(scope="module")
def training_setup(taobao_world):
    world = taobao_world
    histories = world.sample_histories()
    rng = np.random.default_rng(0)
    requests = []
    for _ in range(16):
        user = int(rng.integers(world.config.num_users))
        items = rng.choice(world.config.num_items, size=10, replace=False)
        clicks = (rng.random(10) < 0.3).astype(float)
        requests.append(
            RankingRequest(user, items, rng.normal(size=10), clicks=clicks)
        )
    config = RapidConfig(
        user_dim=world.population.feature_dim,
        item_dim=world.catalog.feature_dim,
        num_topics=world.catalog.num_topics,
        hidden=4,
        seed=0,
    )
    return world, histories, requests, config


def _train(training_setup, dist):
    world, histories, requests, rapid_config = training_setup
    model = make_rapid_variant("rapid-det", rapid_config)
    result = train_dist(
        model,
        requests,
        world.catalog,
        world.population,
        histories,
        config=TrainConfig(epochs=2, batch_size=4, seed=0),
        dist=dist,
    )
    return model, result


@pytest.fixture(scope="module")
def baseline(training_setup):
    """The uninterrupted multi-worker run every chaos run must reproduce."""
    model, result = _train(
        training_setup, DistTrainConfig(world_size=2, backend="process")
    )
    return [p.data.copy() for p in model.parameters()], result.losses


def _params_match(reference, model, atol=0.0):
    return all(
        np.allclose(ref, p.data, rtol=0.0, atol=atol)
        for ref, p in zip(reference, model.parameters())
    )


class TestKillRejoin:
    def test_two_workers_sigkilled_mid_epoch_rejoin_bit_identically(
        self, training_setup, baseline
    ):
        """The acceptance scenario: both ranks die mid-epoch, curve unchanged."""
        reference_params, reference_losses = baseline
        worker_chaos = (
            # rank 0 dies at its 2nd step (mid-epoch 0), rank 1 at its 3rd
            # (first step of epoch 1) — both before contributing
            (0, FaultSpec("dist.worker.step", kind="kill", after=1, times=1)),
            (1, FaultSpec("dist.worker.step", kind="kill", after=2, times=1)),
        )
        model, result = _train(
            training_setup,
            DistTrainConfig(world_size=2, backend="process", worker_chaos=worker_chaos),
        )
        assert result.restarts == 2
        assert result.degraded == []
        assert result.losses == reference_losses
        assert _params_match(reference_params, model)  # bitwise

    def test_chaos_curve_within_1e9_of_single_process(
        self, training_setup, baseline
    ):
        """The killed run also sits on the single-process (inline) curve."""
        _, reference_losses = baseline
        inline_model, inline = _train(
            training_setup, DistTrainConfig(world_size=2, backend="inline")
        )
        assert np.allclose(inline.losses, reference_losses, rtol=0.0, atol=1e-9)
        worker_chaos = (
            (0, FaultSpec("dist.worker.step", kind="kill", after=1, times=1)),
        )
        model, result = _train(
            training_setup,
            DistTrainConfig(world_size=2, backend="process", worker_chaos=worker_chaos),
        )
        assert np.allclose(result.losses, inline.losses, rtol=0.0, atol=1e-9)
        assert _params_match(
            [p.data for p in inline_model.parameters()], model, atol=1e-9
        )


class TestAccounting:
    def test_parent_side_kills_account_exactly(self, training_setup, baseline):
        """plan.fires() == dist.worker_restarts delta == result.restarts."""
        reference_params, reference_losses = baseline
        restarts_counter = get_registry().counter("dist.worker_restarts")
        before = restarts_counter.value
        with chaos(
            FaultSpec("dist.worker.step", kind="kill", after=1, times=2)
        ) as plan:
            model, result = _train(
                training_setup, DistTrainConfig(world_size=2, backend="process")
            )
            fires = plan.fires("dist.worker.step")
        assert fires == 2
        assert result.restarts == fires
        assert restarts_counter.value - before == fires
        # contribution was banked before each kill: arithmetic untouched
        assert result.losses == reference_losses
        assert _params_match(reference_params, model)


class TestDegradation:
    def test_exhausted_budget_completes_on_survivors(self, training_setup):
        sink = MemorySink()
        previous = set_run_logger(RunLogger(sink))
        try:
            worker_chaos = (
                (1, FaultSpec("dist.worker.step", kind="kill", after=1, times=1)),
            )
            model, result = _train(
                training_setup,
                DistTrainConfig(
                    world_size=2,
                    backend="process",
                    worker_chaos=worker_chaos,
                    restart=RestartPolicy(max_restarts=0),
                ),
            )
        finally:
            set_run_logger(previous)
        assert len(result.losses) == 2  # the run completed
        assert result.degraded == [1]
        assert result.restarts == 0
        assert get_registry().gauge("dist.live_workers").value == 1.0
        degraded_events = [
            r for r in sink.records if r["event"] == "dist.degraded"
        ]
        assert len(degraded_events) == 1
        assert degraded_events[0]["rank"] == 1
        done = [r for r in sink.records if r["event"] == "dist.done"]
        assert done and done[0]["degraded"] == [1]

    def test_fleet_spans_cover_workers_and_parent(self, training_setup):
        _, result = _train(
            training_setup, DistTrainConfig(world_size=2, backend="process")
        )
        names = {record["name"] for record in result.span_records}
        assert "dist.train" in names
        assert {"dist.worker:0", "dist.worker:1"} <= names
