"""Smoke-test wiring for ``benchmarks/bench_obs_overhead.py``.

Runs the microbenchmark's machinery at reduced scale and checks structure
only — no wall-clock assertions, so the suite stays deterministic on busy
machines.  The real <5% overhead gate runs via
``python benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import numpy as np
import pytest

_BENCH_PATH = (
    Path(__file__).resolve().parents[1] / "benchmarks" / "bench_obs_overhead.py"
)


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location(
        "bench_obs_overhead", _BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_instrumentation_cost_is_measurable(bench):
    cost = bench.instrumentation_cost_per_batch(iterations=2000)
    assert np.isfinite(cost)
    assert 0.0 < cost < 1.0  # sane per-batch seconds, not a timing gate


def test_measure_reports_structure(bench):
    result = bench.measure(iterations=2000)
    assert set(result) == {
        "obs_us_per_batch",
        "train_ms_per_batch",
        "overhead_fraction",
    }
    assert result["train_ms_per_batch"] > 0.0
    assert result["overhead_fraction"] >= 0.0
    assert np.isfinite(result["overhead_fraction"])


def test_budget_constant_is_five_percent(bench):
    assert bench.MAX_DISABLED_OVERHEAD == pytest.approx(0.05)
