"""Smoke-test wiring for ``benchmarks/bench_obs_overhead.py`` (obs v2).

Runs the microbenchmark's machinery at reduced scale and checks structure
only — no wall-clock assertions, so the suite stays deterministic on busy
machines.  The real <5% overhead gates run via
``python benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.obs import windows
from repro.obs.profiler import get_profiler

_BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"


@pytest.fixture(scope="module")
def bench():
    sys.path.insert(0, str(_BENCH_DIR))  # for its `from bench_utils import ...`
    try:
        spec = importlib.util.spec_from_file_location(
            "bench_obs_overhead", _BENCH_DIR / "bench_obs_overhead.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    finally:
        sys.path.remove(str(_BENCH_DIR))


def test_disabled_call_cost_is_measurable(bench):
    cost = bench.disabled_call_seconds(iterations=5000)
    assert np.isfinite(cost)
    assert 0.0 < cost < 1.0  # sane per-call seconds, not a timing gate


def test_cycle_obs_leaves_everything_off(bench):
    bench._cycle_obs()
    assert not windows.windowed_enabled()
    profiler = get_profiler()
    assert profiler is None or not profiler.running


@pytest.mark.bench
@pytest.mark.slow
def test_measure_reports_structure_and_restores_state(bench, monkeypatch, tmp_path):
    result = bench.measure()
    assert set(result) == {
        "train_baseline_ms_per_batch",
        "train_disabled_ms_per_batch",
        "train_disabled_overhead_fraction",
        "rerank_baseline_ms_per_request",
        "rerank_disabled_ms_per_request",
        "rerank_disabled_overhead_fraction",
        "infer_baseline_ms_per_request",
        "infer_disabled_ms_per_request",
        "infer_disabled_overhead_fraction",
        "rerank_windowed_ms_per_request",
        "windowed_enabled_overhead_fraction",
        "disabled_call_us",
    }
    assert result["train_baseline_ms_per_batch"] > 0.0
    assert result["rerank_baseline_ms_per_request"] > 0.0
    assert result["infer_baseline_ms_per_request"] > 0.0
    assert np.isfinite(result["train_disabled_overhead_fraction"])
    assert np.isfinite(result["rerank_disabled_overhead_fraction"])
    assert np.isfinite(result["infer_disabled_overhead_fraction"])
    # The bench must leave every opt-in surface off for the rest of the suite.
    assert not windows.windowed_enabled()


def test_budget_constant_is_five_percent(bench):
    assert bench.MAX_DISABLED_OVERHEAD == pytest.approx(0.05)
