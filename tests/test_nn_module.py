"""Module / Parameter / serialization tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Module, Parameter, Tensor, load_module, save_module


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 3, rng=np.random.default_rng(0))
        self.fc2 = nn.Linear(3, 1, rng=np.random.default_rng(1))
        self.scale = Parameter(np.array([2.0]))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestModule:
    def test_named_parameters_are_prefixed(self):
        names = dict(TinyNet().named_parameters())
        assert "fc1.weight" in names
        assert "fc1.bias" in names
        assert "fc2.weight" in names
        assert "scale" in names

    def test_parameters_unique(self):
        net = TinyNet()
        params = list(net.parameters())
        assert len(params) == len({id(p) for p in params}) == 5

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 4 * 3 + 3 + 3 * 1 + 1 + 1

    def test_train_eval_propagates(self):
        net = TinyNet()
        net.eval()
        assert not net.training
        assert not net.fc1.training
        net.train()
        assert net.fc2.training

    def test_zero_grad(self):
        net = TinyNet()
        out = net(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_state_dict_roundtrip(self):
        net_a, net_b = TinyNet(), TinyNet()
        net_b.fc1.weight.data += 1.0
        net_b.load_state_dict(net_a.state_dict())
        x = Tensor(np.ones((2, 4)))
        assert np.allclose(net_a(x).numpy(), net_b(x).numpy())

    def test_load_state_dict_rejects_mismatched_keys(self):
        net = TinyNet()
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self):
        net = TinyNet()
        state = net.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestSerialization:
    def test_save_and_load(self, tmp_path):
        net_a, net_b = TinyNet(), TinyNet()
        net_a.fc1.weight.data += 0.5
        path = save_module(net_a, tmp_path / "model")
        assert path.suffix == ".npz"
        load_module(net_b, path)
        x = Tensor(np.ones((1, 4)))
        assert np.allclose(net_a(x).numpy(), net_b(x).numpy())

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_module(TinyNet(), tmp_path / "missing.npz")
