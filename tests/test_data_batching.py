"""Batch assembly tests: padding, masks, topic-split histories, observation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    RankingRequest,
    build_batch,
    iterate_batches,
    split_history_by_topic,
)


def _requests(world, n=6, length=8, clicks=True, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    requests = []
    for _ in range(n):
        user = int(rng.integers(world.config.num_users))
        items = rng.choice(world.config.num_items, size=length, replace=False)
        scores = rng.normal(size=length)
        y = (rng.random(length) < 0.3).astype(float) if clicks else None
        requests.append(RankingRequest(user, items, scores, clicks=y))
    return requests


class TestSplitHistoryByTopic:
    def test_dominant_topic_membership(self, taobao_world):
        history = np.arange(20)
        ids, mask = split_history_by_topic(
            history, taobao_world.catalog.coverage, 5, max_length=5
        )
        assert ids.shape == (5, 5)
        dominant = taobao_world.catalog.coverage[:20].argmax(axis=1)
        for topic in range(5):
            members = ids[topic][mask[topic]]
            own = history[dominant == topic]
            # every dominant-topic item in the last window must appear
            for item in own[-5:]:
                assert item in members

    def test_keeps_most_recent(self):
        coverage = np.ones((30, 1))  # single topic, everything belongs
        ids, mask = split_history_by_topic(np.arange(30), coverage, 1, max_length=5)
        assert np.array_equal(ids[0][mask[0]], [25, 26, 27, 28, 29])

    def test_empty_history(self):
        ids, mask = split_history_by_topic(np.array([]), np.ones((5, 2)), 2, 4)
        assert not mask.any()
        assert (ids == -1).all()

    def test_time_order_preserved(self):
        coverage = np.ones((10, 1))
        ids, mask = split_history_by_topic(
            np.array([3, 9, 1, 7]), coverage, 1, max_length=10
        )
        assert np.array_equal(ids[0][mask[0]], [3, 9, 1, 7])


class TestBuildBatch:
    def test_shapes(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        requests = _requests(world)
        batch = build_batch(requests, world.catalog, world.population, histories)
        assert batch.batch_size == 6
        assert batch.list_length == 8
        assert batch.item_features.shape == (6, 8, world.catalog.feature_dim)
        assert batch.coverage.shape == (6, 8, 5)
        assert batch.topic_history_features.shape[:3] == (6, 5, 5)
        assert batch.mask.all()

    def test_variable_lengths_padded_and_masked(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        short = RankingRequest(0, np.array([1, 2]), np.array([0.5, 0.1]))
        longer = RankingRequest(1, np.array([3, 4, 5]), np.array([3.0, 2.0, 1.0]))
        batch = build_batch([short, longer], world.catalog, world.population, histories)
        assert batch.list_length == 3
        assert batch.mask[0, 2] == False  # noqa: E712
        assert np.allclose(batch.item_features[0, 2], 0.0)

    def test_features_match_catalog(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        requests = _requests(world, n=2)
        batch = build_batch(requests, world.catalog, world.population, histories)
        item = requests[0].items[3]
        assert np.allclose(
            batch.item_features[0, 3], world.catalog.features[item]
        )
        assert np.allclose(
            batch.user_features[1],
            world.population.features[requests[1].user_id],
        )

    def test_observed_prefix_censoring(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        clicks = np.array([0.0, 1.0, 0.0, 1.0, 0.0, 0.0])
        request = RankingRequest(
            0, np.arange(6), np.zeros(6), clicks=clicks, fully_observed=False
        )
        batch = build_batch([request], world.catalog, world.population, histories)
        # observed up to the last click (index 3), censored after
        assert batch.observed[0, :4].all()
        assert not batch.observed[0, 4:].any()
        assert np.array_equal(batch.training_mask[0], batch.observed[0])

    def test_fully_observed_request_not_censored(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        clicks = np.array([0.0, 1.0, 0.0])
        request = RankingRequest(
            0, np.arange(3), np.zeros(3), clicks=clicks, fully_observed=True
        )
        batch = build_batch([request], world.catalog, world.population, histories)
        assert batch.observed[0].all()

    def test_no_clicks_means_all_observed(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        request = RankingRequest(0, np.arange(4), np.zeros(4), clicks=np.zeros(4))
        batch = build_batch([request], world.catalog, world.population, histories)
        assert batch.observed[0].all()

    def test_bids_populated_for_appstore(self, appstore_world):
        world = appstore_world
        histories = world.sample_histories()
        requests = _requests(world, n=3)
        batch = build_batch(requests, world.catalog, world.population, histories)
        assert batch.bids is not None
        assert np.allclose(batch.bids[0], world.catalog.bids[requests[0].items])

    def test_empty_request_list_raises(self, taobao_world):
        with pytest.raises(ValueError):
            build_batch([], taobao_world.catalog, taobao_world.population, [])


class TestIterateBatches:
    def test_covers_all_requests_once(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        requests = _requests(world, n=10)
        batches = list(
            iterate_batches(
                requests, world.catalog, world.population, histories, batch_size=4
            )
        )
        assert [b.batch_size for b in batches] == [4, 4, 2]
        seen = np.concatenate([b.user_ids for b in batches])
        assert sorted(seen) == sorted(r.user_id for r in requests)

    def test_shuffle_reproducible_by_seed(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        requests = _requests(world, n=10)
        a = next(
            iterate_batches(
                requests, world.catalog, world.population, histories, 4, seed=3
            )
        )
        b = next(
            iterate_batches(
                requests, world.catalog, world.population, histories, 4, seed=3
            )
        )
        assert np.array_equal(a.user_ids, b.user_ids)

    def test_invalid_batch_size(self, taobao_world):
        with pytest.raises(ValueError):
            list(
                iterate_batches(
                    [], taobao_world.catalog, taobao_world.population, [], 0
                )
            )
