"""Autograd engine tests: every op gradient-checked against finite differences."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor, as_tensor, is_grad_enabled, no_grad


def numeric_grad(fn, x, eps=1e-6):
    """Central finite differences of a scalar-valued fn at x."""
    grad = np.zeros_like(x)
    flat = grad.ravel()
    x_flat = x.ravel()
    for i in range(x.size):
        orig = x_flat[i]
        x_flat[i] = orig + eps
        plus = fn(x)
        x_flat[i] = orig - eps
        minus = fn(x)
        x_flat[i] = orig
        flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(op, x_data, tol=1e-6):
    """Compare autograd gradient of sum(op(x)) with finite differences."""
    x = Tensor(x_data.copy(), requires_grad=True)
    op(x).sum().backward()
    expected = numeric_grad(lambda arr: op(Tensor(arr)).sum().item(), x_data.copy())
    assert np.allclose(x.grad, expected, atol=tol), (
        f"max err {np.abs(x.grad - expected).max()}"
    )


class TestElementwiseGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(42)
        self.x = self.rng.normal(size=(3, 4))

    def test_add_scalar(self):
        check_gradient(lambda t: t + 2.5, self.x)

    def test_mul(self):
        check_gradient(lambda t: t * t, self.x)

    def test_sub(self):
        check_gradient(lambda t: 3.0 - t, self.x)

    def test_div(self):
        check_gradient(lambda t: 1.0 / (t + 10.0), self.x)

    def test_pow(self):
        check_gradient(lambda t: (t * t + 1.0) ** 1.5, self.x)

    def test_exp(self):
        check_gradient(lambda t: t.exp(), self.x)

    def test_log(self):
        check_gradient(lambda t: (t * t + 1.0).log(), self.x)

    def test_tanh(self):
        check_gradient(lambda t: t.tanh(), self.x)

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid(), self.x)

    def test_relu(self):
        # shift away from the kink for clean finite differences
        check_gradient(lambda t: (t + 0.1).relu(), self.x)

    def test_sqrt(self):
        check_gradient(lambda t: (t * t + 1.0).sqrt(), self.x)

    def test_abs(self):
        check_gradient(lambda t: (t + 5.0).abs(), self.x)

    def test_clip(self):
        check_gradient(lambda t: (t * 3.0).clip(-1.0, 1.0), self.x + 0.31)

    def test_neg(self):
        check_gradient(lambda t: -t, self.x)


class TestMatmulGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(7)

    def test_matrix_matrix(self):
        b = self.rng.normal(size=(4, 5))
        check_gradient(lambda t: t @ Tensor(b), self.rng.normal(size=(3, 4)))

    def test_matrix_matrix_right(self):
        a = self.rng.normal(size=(3, 4))
        check_gradient(lambda t: Tensor(a) @ t, self.rng.normal(size=(4, 5)))

    def test_batched(self):
        b = self.rng.normal(size=(2, 4, 5))
        check_gradient(lambda t: t @ Tensor(b), self.rng.normal(size=(2, 3, 4)))

    def test_batched_broadcast(self):
        b = self.rng.normal(size=(4, 5))
        check_gradient(lambda t: t @ Tensor(b), self.rng.normal(size=(2, 3, 4)))

    def test_vector_vector(self):
        b = self.rng.normal(size=5)
        check_gradient(lambda t: (t @ Tensor(b)).reshape(1), self.rng.normal(size=5))

    def test_matrix_vector(self):
        b = self.rng.normal(size=4)
        check_gradient(lambda t: t @ Tensor(b), self.rng.normal(size=(3, 4)))

    def test_vector_matrix(self):
        b = self.rng.normal(size=(4, 3))
        check_gradient(lambda t: t @ Tensor(b), self.rng.normal(size=4))


class TestReductionsAndShapes:
    def setup_method(self):
        self.rng = np.random.default_rng(3)
        self.x = self.rng.normal(size=(3, 4, 5))

    def test_sum_all(self):
        check_gradient(lambda t: t.sum(), self.x)

    def test_sum_axis(self):
        check_gradient(lambda t: t.sum(axis=1), self.x)

    def test_sum_keepdims(self):
        check_gradient(lambda t: t.sum(axis=2, keepdims=True), self.x)

    def test_mean(self):
        check_gradient(lambda t: t.mean(axis=(0, 2)), self.x)

    def test_max(self):
        check_gradient(lambda t: t.max(axis=1), self.x)

    def test_reshape(self):
        check_gradient(lambda t: t.reshape(12, 5) @ Tensor(np.ones((5, 2))), self.x)

    def test_transpose(self):
        check_gradient(lambda t: t.transpose(2, 0, 1) * 2.0, self.x)

    def test_swapaxes(self):
        check_gradient(lambda t: t.swapaxes(0, 2), self.x)

    def test_getitem_slice(self):
        check_gradient(lambda t: t[:, 1:3, :], self.x)

    def test_getitem_reverse(self):
        check_gradient(lambda t: t[:, ::-1, :] * 2.0, self.x)

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])  # duplicate index accumulates
        check_gradient(lambda t: t[idx], self.x)

    def test_concatenate(self):
        other = Tensor(self.rng.normal(size=(3, 2, 5)))
        check_gradient(lambda t: Tensor.concatenate([t, other], axis=1), self.x)

    def test_stack(self):
        check_gradient(lambda t: Tensor.stack([t, t * 2.0], axis=0), self.x)

    def test_where(self):
        cond = self.x > 0
        check_gradient(lambda t: Tensor.where(cond, t * 2.0, t * -1.0), self.x)

    def test_softmax(self):
        check_gradient(lambda t: t.softmax(axis=-1), self.x)

    def test_log_softmax(self):
        check_gradient(lambda t: t.log_softmax(axis=-1), self.x)


class TestBroadcastGradients:
    def test_add_broadcast(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_mul_broadcast_keepdim(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 1)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (3, 1)
        assert np.allclose(b.grad[:, 0], a.data.sum(axis=1))


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            t.backward()

    def test_grad_accumulates_across_backwards(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2.0).sum().backward()
        (t * 2.0).sum().backward()
        assert np.allclose(t.grad, 4.0)

    def test_reused_node_accumulates(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        y = t * t + t  # t used three times
        y.sum().backward()
        assert np.allclose(t.grad, 2 * 2.0 + 1.0)

    def test_zero_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_detach_cuts_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t.detach() * 5.0).sum().backward()
        assert t.grad is None

    def test_no_grad_context(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = t * 2.0
        assert is_grad_enabled()
        assert not out.requires_grad

    def test_no_requires_grad_means_no_graph(self):
        t = Tensor(np.ones(3))
        out = (t * 2.0).sum()
        assert not out.requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(3))
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_item_and_len(self):
        assert Tensor(np.array([3.5])).item() == 3.5
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(np.ones(1), requires_grad=True))


class TestTensorProperties:
    @given(
        arrays(
            np.float64,
            array_shapes(min_dims=1, max_dims=3, max_side=5),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_softmax_rows_sum_to_one(self, data):
        out = Tensor(data).softmax(axis=-1).numpy()
        assert np.allclose(out.sum(axis=-1), 1.0)
        assert (out >= 0).all()

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 4), st.integers(1, 4)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_sigmoid_tanh_identity(self, data):
        # tanh(x) = 2*sigmoid(2x) - 1
        t = Tensor(data)
        lhs = t.tanh().numpy()
        rhs = 2.0 * (t * 2.0).sigmoid().numpy() - 1.0
        assert np.allclose(lhs, rhs, atol=1e-10)

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 5), st.integers(1, 5)),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_transpose_involution(self, data):
        t = Tensor(data)
        assert np.array_equal(t.T.T.numpy(), data)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_matmul_matches_numpy(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        assert np.allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b)
