"""Size-based rotation tests for ``JsonlSink`` + rotated-set reading."""

from __future__ import annotations

import json

import pytest

from repro.obs.runlog import JsonlSink, read_jsonl, read_jsonl_rotated


def _write_events(sink: JsonlSink, count: int, start: int = 0) -> None:
    for index in range(start, start + count):
        sink.write({"n": index, "pad": "x" * 40})
    sink.close()


class TestRotation:
    def test_rotates_at_size_cap_without_splitting_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path, max_bytes=200)
        _write_events(sink, 12)
        assert sink.rotations > 0
        # Every file in the set — live and archived — is valid JSONL on
        # its own: rotation only ever happens between records.
        seen = []
        for file in [path, *path.parent.glob("run.jsonl.*")]:
            for line in file.read_text().splitlines():
                seen.append(json.loads(line)["n"])
        # Retained records are the contiguous most-recent suffix.
        assert sorted(seen) == list(range(12 - len(seen), 12))

    def test_keep_last_prunes_oldest(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path, max_bytes=120, keep_last=2)
        _write_events(sink, 40)
        archives = sorted(p.name for p in path.parent.glob("run.jsonl.*"))
        assert archives == ["run.jsonl.1", "run.jsonl.2"]

    def test_archive_chain_is_chronological(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path, max_bytes=120, keep_last=3)
        _write_events(sink, 20)
        # .1 is the most recent archive; higher indexes are older.
        first_of = {}
        for index in (1, 2):
            archive = path.with_name(f"run.jsonl.{index}")
            first_of[index] = json.loads(archive.read_text().splitlines()[0])["n"]
        assert first_of[2] < first_of[1]
        live_first = json.loads(path.read_text().splitlines()[0])["n"]
        assert first_of[1] < live_first

    def test_single_oversized_record_still_lands(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path, max_bytes=10)
        sink.write({"big": "y" * 100})  # larger than the whole cap
        sink.close()
        assert json.loads(path.read_text())["big"] == "y" * 100

    def test_no_rotation_without_cap(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path)
        _write_events(sink, 50)
        assert sink.rotations == 0
        assert list(path.parent.glob("run.jsonl.*")) == []

    def test_size_resumes_from_existing_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_events(JsonlSink(path, max_bytes=10_000), 3)
        # A new sink over the same file must count its existing bytes.
        sink = JsonlSink(path, max_bytes=path.stat().st_size + 10)
        sink.write({"n": 3, "pad": "x" * 40})
        sink.close()
        assert sink.rotations == 1

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "x.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "x.jsonl", max_bytes=10, keep_last=0)


class TestReadRotated:
    def test_reads_archives_then_live_in_order(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path, max_bytes=150, keep_last=5)
        _write_events(sink, 20)
        records = read_jsonl_rotated(path)
        numbers = [r["n"] for r in records]
        assert numbers == sorted(numbers)
        assert numbers[-1] == 19
        # More history than the live file alone, in one contiguous run.
        assert len(numbers) > len(read_jsonl(path))
        assert numbers == list(range(numbers[0], 20))

    def test_plain_file_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_events(JsonlSink(path), 5)
        assert read_jsonl_rotated(path) == read_jsonl(path)

    def test_missing_file_is_empty(self, tmp_path):
        assert read_jsonl_rotated(tmp_path / "absent.jsonl") == []
