"""Tests for the alternative submodular coverage functions (extension)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    incremental_coverage,
    incremental_gain,
    log_coverage,
    saturating_coverage,
)

coverage_matrices = arrays(
    np.float64,
    st.tuples(st.integers(1, 7), st.integers(1, 4)),
    elements=st.floats(0.0, 1.0, allow_nan=False),
)


class TestSaturatingCoverage:
    def test_empty_ish_item_contributes_nothing(self):
        tau = np.array([[0.0, 0.0]])
        assert np.allclose(saturating_coverage(tau), 0.0)

    @given(coverage_matrices)
    @settings(max_examples=40, deadline=None)
    def test_monotone(self, tau):
        if len(tau) < 2:
            return
        assert (
            saturating_coverage(tau) >= saturating_coverage(tau[:-1]) - 1e-12
        ).all()

    @given(coverage_matrices)
    @settings(max_examples=40, deadline=None)
    def test_submodular(self, tau):
        if len(tau) < 3:
            return
        item = tau[-1:]
        gain_small = saturating_coverage(np.vstack([tau[:1], item])) - (
            saturating_coverage(tau[:1])
        )
        gain_big = saturating_coverage(np.vstack([tau[:-1], item])) - (
            saturating_coverage(tau[:-1])
        )
        assert (gain_small >= gain_big - 1e-12).all()

    def test_bounded_by_one(self):
        tau = np.ones((50, 3))
        assert (saturating_coverage(tau) <= 1.0).all()
        # a modest sum stays strictly below saturation
        assert (saturating_coverage(np.full((2, 3), 0.5)) < 1.0).all()


class TestLogCoverage:
    @given(coverage_matrices)
    @settings(max_examples=40, deadline=None)
    def test_monotone(self, tau):
        if len(tau) < 2:
            return
        assert (log_coverage(tau) >= log_coverage(tau[:-1]) - 1e-12).all()

    @given(coverage_matrices)
    @settings(max_examples=40, deadline=None)
    def test_submodular(self, tau):
        if len(tau) < 3:
            return
        item = tau[-1:]
        gain_small = log_coverage(np.vstack([tau[:1], item])) - log_coverage(tau[:1])
        gain_big = log_coverage(np.vstack([tau[:-1], item])) - log_coverage(tau[:-1])
        assert (gain_small >= gain_big - 1e-12).all()


class TestIncrementalGain:
    def test_probabilistic_dispatch(self):
        tau = np.random.default_rng(0).random((5, 3))
        assert np.allclose(
            incremental_gain(tau, "probabilistic"), incremental_coverage(tau)
        )

    @pytest.mark.parametrize("kind", ["saturating", "log"])
    def test_gains_telescoping(self, kind):
        tau = np.random.default_rng(1).random((6, 3))
        gains = incremental_gain(tau, kind)
        function = saturating_coverage if kind == "saturating" else log_coverage
        assert np.allclose(gains.sum(axis=0), function(tau))

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            incremental_gain(np.zeros((2, 2)), "linear")

    def test_batched(self):
        tau = np.random.default_rng(2).random((3, 4, 2))
        gains = incremental_gain(tau, "saturating")
        assert gains.shape == tau.shape
        assert np.allclose(gains[1], incremental_gain(tau[1], "saturating"))

    @pytest.mark.parametrize("kind", ["saturating", "log"])
    @given(coverage_matrices)
    @settings(max_examples=40, deadline=None)
    def test_matches_prefix_reevaluation_loop(self, kind, tau):
        """The cumsum closed form equals the literal per-prefix definition."""
        function = saturating_coverage if kind == "saturating" else log_coverage
        expected = np.empty_like(tau)
        previous = np.zeros(tau.shape[-1])
        for position in range(tau.shape[0]):
            current = function(tau[: position + 1])
            expected[position] = current - previous
            previous = current
        assert np.allclose(incremental_gain(tau, kind), expected, atol=1e-10)


class TestRapidWithAlternativeCoverage:
    def test_variant_builds_and_scores(self, taobao_world):
        from repro.core import RapidConfig, RapidModel
        from repro.data import RankingRequest, build_batch

        world = taobao_world
        histories = world.sample_histories()
        rng = np.random.default_rng(0)
        requests = [
            RankingRequest(
                0,
                rng.choice(world.config.num_items, size=6, replace=False),
                rng.normal(size=6),
            )
        ]
        batch = build_batch(requests, world.catalog, world.population, histories)
        config = RapidConfig(
            user_dim=world.population.feature_dim,
            item_dim=world.catalog.feature_dim,
            num_topics=5,
            hidden=8,
            coverage_kind="saturating",
        )
        scores = RapidModel(config).inference_scores(batch)
        assert scores.shape == (1, 6)

    def test_leave_one_out_rejects_alternative_kind(self):
        from repro.core import RapidConfig, RapidModel

        config = RapidConfig(
            user_dim=4,
            item_dim=4,
            num_topics=3,
            marginal_mode="leave_one_out",
            coverage_kind="log",
        )
        with pytest.raises(ValueError):
            RapidModel(config)
