"""Additional autograd edge cases: boolean masks, deep graphs, dtype."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor


class TestIndexingEdgeCases:
    def test_boolean_mask_forward_backward(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        mask = np.array([[True, False, True], [False, True, False]])
        out = x[mask]
        assert out.shape == (3,)
        out.sum().backward()
        assert np.array_equal(x.grad, mask.astype(float))

    def test_integer_array_pair_indexing(self):
        x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        rows = np.array([0, 2])
        cols = np.array([1, 3])
        out = x[rows, cols]
        assert np.allclose(out.numpy(), [1.0, 11.0])
        out.sum().backward()
        expected = np.zeros((3, 4))
        expected[0, 1] = 1.0
        expected[2, 3] = 1.0
        assert np.array_equal(x.grad, expected)

    def test_scalar_index(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        x[1].reshape(1).sum().backward()
        assert np.array_equal(x.grad, [0.0, 1.0, 0.0])


class TestGraphDepth:
    def test_deep_chain_backward_is_iterative(self):
        """A 3000-op chain must not hit Python's recursion limit (the
        topological sort is iterative)."""
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y * 1.0001
        y.sum().backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2.0
        b = x * 5.0
        (a + b).sum().backward()
        assert np.allclose(x.grad, 7.0)


class TestDtypeAndCoercion:
    def test_integer_input_promoted_to_float64(self):
        t = Tensor(np.array([1, 2, 3], dtype=np.int32))
        assert t.data.dtype == np.float64

    def test_python_list_accepted(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)

    def test_tensor_from_tensor_shares_data(self):
        a = Tensor(np.ones(3))
        b = Tensor(a)
        assert b.data is a.data


class TestPowAndDivEdge:
    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** Tensor(np.ones(2))

    def test_rtruediv(self):
        x = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        y = 8.0 / x
        assert np.allclose(y.numpy(), [4.0, 2.0])
        y.sum().backward()
        assert np.allclose(x.grad, [-2.0, -0.5])

    def test_rsub(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (10.0 - x).sum().backward()
        assert np.allclose(x.grad, -1.0)
