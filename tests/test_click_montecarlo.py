"""Monte Carlo agreement tests: simulated DCM sessions vs closed forms.

The expected-clicks and satisfaction formulas drive all `expected`-mode
evaluation, so they must agree with the empirical averages of the actual
session simulator — this is the evaluator's ground-truth contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.click import DependentClickModel
from repro.click.dcm import expected_clicks_curve, satisfaction_probability


@pytest.fixture(scope="module")
def scenario(taobao_world):
    dcm = DependentClickModel(taobao_world, tradeoff=0.5)
    items = np.arange(10)
    user = 3
    return dcm, user, items


NUM_SESSIONS = 4000


class TestMonteCarloAgreement:
    def test_expected_clicks_matches_simulation(self, scenario):
        dcm, user, items = scenario
        rng = np.random.default_rng(0)
        totals = np.zeros(len(items))
        for _ in range(NUM_SESSIONS):
            totals += dcm.simulate(user, items, rng)
        empirical = np.cumsum(totals) / NUM_SESSIONS
        phi = dcm.attraction_probabilities(user, items)
        eps = dcm.termination_probabilities(len(items))
        theoretical = expected_clicks_curve(phi, eps)
        assert np.allclose(empirical, theoretical, atol=0.05)

    def test_satisfaction_matches_simulation(self, scenario):
        """satis@k = P(a click followed by satisfied exit within top-k).

        Simulate sessions and record whether the user terminated (exited
        satisfied) at a position <= k.
        """
        dcm, user, items = scenario
        phi = dcm.attraction_probabilities(user, items)
        eps = dcm.termination_probabilities(len(items))
        rng = np.random.default_rng(1)
        k = 5
        satisfied = 0
        for _ in range(NUM_SESSIONS):
            for position in range(k):
                if rng.random() < phi[position]:
                    if rng.random() < eps[position]:
                        satisfied += 1
                        break
        empirical = satisfied / NUM_SESSIONS
        theoretical = satisfaction_probability(phi, eps)[k - 1]
        assert empirical == pytest.approx(theoretical, abs=0.03)

    def test_full_information_click_rate_equals_phi(self, scenario):
        dcm, user, items = scenario
        rng = np.random.default_rng(2)
        totals = np.zeros(len(items))
        for _ in range(NUM_SESSIONS):
            totals += dcm.simulate(user, items, rng, full_information=True)
        empirical = totals / NUM_SESSIONS
        phi = dcm.attraction_probabilities(user, items)
        assert np.allclose(empirical, phi, atol=0.05)

    def test_censored_click_rate_below_full_information(self, scenario):
        dcm, user, items = scenario
        rng = np.random.default_rng(3)
        censored = np.zeros(len(items))
        full = np.zeros(len(items))
        for _ in range(1500):
            censored += dcm.simulate(user, items, rng)
            full += dcm.simulate(user, items, rng, full_information=True)
        # Equality can hold at position 0; deeper positions must be censored.
        assert censored[3:].sum() < full[3:].sum()
