"""Serialization round-trips for every nn.Module subclass in the codebase.

Each registry entry builds a module and a deterministic forward thunk; the
test saves the module, reloads it into a freshly built twin, and requires
*bit-identical* outputs.  A companion test walks the real Module subclass
tree, so adding a module without a registry entry fails the suite — new
modules are auto-covered or loudly missing.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core  # noqa: F401  (populate the Module subclass tree)
import repro.eval  # noqa: F401
import repro.nn as nn
import repro.rankers  # noqa: F401
import repro.rerank  # noqa: F401
from repro.core import RapidConfig, RapidModel
from repro.core.diversity import PersonalizedDiversityEstimator
from repro.core.heads import DeterministicHead, ProbabilisticHead
from repro.core.relevance import ListwiseRelevanceEstimator
from repro.data import RankingRequest, build_batch
from repro.nn import Module, Tensor, load_module, save_module
from repro.rankers.din import _DINNetwork
from repro.rerank.desa import _DESANetwork
from repro.rerank.dlcm import _DLCMNetwork
from repro.rerank.prm import _PRMNetwork
from repro.rerank.seq2slate import _PointerNetwork
from repro.rerank.setrank import _SetRankNetwork
from repro.rerank.srga import _SRGANetwork


@pytest.fixture(scope="module")
def batch(taobao_world):
    world = taobao_world
    histories = world.sample_histories()
    rng = np.random.default_rng(0)
    requests = [
        RankingRequest(
            int(rng.integers(world.config.num_users)),
            rng.choice(world.config.num_items, size=6, replace=False),
            rng.normal(size=6),
        )
        for _ in range(3)
    ]
    return build_batch(requests, world.catalog, world.population, histories)


def _rng():
    return np.random.default_rng(123)


def _data(*shape):
    return np.random.default_rng(7).normal(size=shape)


def _as_array(out) -> np.ndarray:
    if isinstance(out, tuple):
        return np.concatenate([np.asarray(o.data).reshape(-1) for o in out])
    return np.asarray(out.data)


def _list_input_dim(batch) -> int:
    from repro.rerank.neural import list_input_features

    return list_input_features(batch).shape[-1]


# name -> (build(batch), run(module, batch)); ``build`` must be
# deterministic so save/load pairs start from identically shaped twins.
MODULE_REGISTRY = {
    "Linear": (
        lambda b: nn.Linear(5, 4, rng=_rng()),
        lambda m, b: _as_array(m(Tensor(_data(3, 5)))),
    ),
    "Embedding": (
        lambda b: nn.Embedding(11, 4, padding_idx=0, rng=_rng()),
        lambda m, b: _as_array(m(np.array([[1, 2, 0], [4, 10, 3]]))),
    ),
    "LayerNorm": (
        lambda b: nn.LayerNorm(6),
        lambda m, b: _as_array(m(Tensor(_data(4, 6)))),
    ),
    "MLP": (
        lambda b: nn.MLP([5, 8, 3], rng=_rng()),
        lambda m, b: _as_array(m(Tensor(_data(3, 5)))),
    ),
    "Dropout": (
        lambda b: nn.Dropout(p=0.5, seed=3),
        lambda m, b: _as_array(m(Tensor(_data(3, 5)))),
    ),
    "Sequential": (
        lambda b: nn.Sequential(nn.Linear(5, 6, rng=_rng()), nn.LayerNorm(6)),
        lambda m, b: _as_array(m(Tensor(_data(3, 5)))),
    ),
    "ModuleList": (
        lambda b: nn.ModuleList([nn.Linear(5, 5, rng=_rng()),
                                 nn.Linear(5, 2, rng=_rng())]),
        lambda m, b: _as_array(m[1](m[0](Tensor(_data(3, 5))))),
    ),
    "SelfAttention": (
        lambda b: nn.SelfAttention(),
        lambda m, b: _as_array(m(Tensor(_data(2, 5, 6)))),
    ),
    "MultiHeadSelfAttention": (
        lambda b: nn.MultiHeadSelfAttention(8, 2, rng=_rng()),
        lambda m, b: _as_array(m(Tensor(_data(2, 5, 8)))),
    ),
    "TransformerEncoderLayer": (
        lambda b: nn.TransformerEncoderLayer(8, 2, rng=_rng()),
        lambda m, b: _as_array(m(Tensor(_data(2, 5, 8)))),
    ),
    "InducedSetAttention": (
        lambda b: nn.InducedSetAttention(8, 2, rng=_rng()),
        lambda m, b: _as_array(m(Tensor(_data(2, 5, 8)))),
    ),
    "GatedLocalAttention": (
        lambda b: nn.GatedLocalAttention(8, 2, rng=_rng()),
        lambda m, b: _as_array(m(Tensor(_data(2, 5, 8)))),
    ),
    "LSTMCell": (
        lambda b: nn.LSTMCell(5, 4, rng=_rng()),
        lambda m, b: _as_array(m(Tensor(_data(3, 5)))),
    ),
    "GRUCell": (
        lambda b: nn.GRUCell(5, 4, rng=_rng()),
        lambda m, b: _as_array(m(Tensor(_data(3, 5)))),
    ),
    "LSTM": (
        lambda b: nn.LSTM(5, 4, rng=_rng()),
        lambda m, b: _as_array(m(Tensor(_data(2, 6, 5)))),
    ),
    "GRU": (
        lambda b: nn.GRU(5, 4, rng=_rng()),
        lambda m, b: _as_array(m(Tensor(_data(2, 6, 5)))),
    ),
    "BiLSTM": (
        lambda b: nn.BiLSTM(5, 4, rng=_rng()),
        lambda m, b: _as_array(m(Tensor(_data(2, 6, 5)))),
    ),
    "_DLCMNetwork": (
        lambda b: _DLCMNetwork(_list_input_dim(b), 8, _rng()),
        lambda m, b: _as_array(m(b)),
    ),
    "_PRMNetwork": (
        lambda b: _PRMNetwork(_list_input_dim(b), 8, 2, 2, _rng()),
        lambda m, b: _as_array(m(b)),
    ),
    "_SetRankNetwork": (
        lambda b: _SetRankNetwork(_list_input_dim(b), 8, 2, 2, 4, _rng()),
        lambda m, b: _as_array(m(b)),
    ),
    "_SRGANetwork": (
        lambda b: _SRGANetwork(_list_input_dim(b), 8, 2, 2, 2, _rng()),
        lambda m, b: _as_array(m(b)),
    ),
    "_DESANetwork": (
        lambda b: _DESANetwork(
            _list_input_dim(b), b.coverage.shape[-1], 8, 2, _rng()
        ),
        lambda m, b: _as_array(m(b)),
    ),
    "_PointerNetwork": (
        lambda b: _PointerNetwork(_list_input_dim(b), 8, _rng()),
        lambda m, b: _as_array(m(b)),
    ),
    "_DINNetwork": (
        lambda b: _DINNetwork(
            b.user_features.shape[-1],
            b.item_features.shape[-1],
            b.coverage.shape[-1],
            8,
            _rng(),
        ),
        lambda m, b: _as_array(
            m(
                b.user_features,
                b.item_features[:, 0, :],
                b.coverage[:, 0, :],
                b.history_features,
                b.history_mask,
            )
        ),
    ),
    "PersonalizedDiversityEstimator": (
        lambda b: PersonalizedDiversityEstimator(
            b.user_features.shape[-1],
            b.item_features.shape[-1],
            b.coverage.shape[-1],
            hidden=8,
            rng=_rng(),
        ),
        lambda m, b: _as_array(m(b)),
    ),
    "DeterministicHead": (
        lambda b: DeterministicHead(7, hidden=8, rng=_rng()),
        lambda m, b: _as_array(m(Tensor(_data(2, 5, 7)))),
    ),
    "ProbabilisticHead": (
        lambda b: ProbabilisticHead(7, hidden=8, rng=_rng()),
        lambda m, b: _as_array(m(Tensor(_data(2, 5, 7)))),
    ),
    "ListwiseRelevanceEstimator": (
        lambda b: ListwiseRelevanceEstimator(
            b.user_features.shape[-1],
            b.item_features.shape[-1],
            b.coverage.shape[-1],
            hidden=8,
            rng=_rng(),
        ),
        lambda m, b: _as_array(m(b)),
    ),
    "RapidModel": (
        lambda b: RapidModel(
            RapidConfig(
                user_dim=b.user_features.shape[-1],
                item_dim=b.item_features.shape[-1],
                num_topics=b.coverage.shape[-1],
                hidden=8,
                seed=0,
            )
        ),
        lambda m, b: _as_array(m(b)),
    ),
}


def _all_module_subclasses() -> set[type]:
    found: set[type] = set()

    def walk(cls: type) -> None:
        for sub in cls.__subclasses__():
            if sub not in found:
                found.add(sub)
                walk(sub)

    walk(Module)
    # Only library classes count: tests and examples define throwaway
    # Module subclasses that must not demand registry entries.
    return {cls for cls in found if cls.__module__.startswith("repro.")}


class TestRegistryCoverage:
    def test_every_module_subclass_has_a_registry_entry(self):
        names = {cls.__name__ for cls in _all_module_subclasses()}
        missing = sorted(names - set(MODULE_REGISTRY))
        assert not missing, (
            f"Module subclasses without a serialization round-trip entry: "
            f"{missing}; add them to MODULE_REGISTRY in {__file__}"
        )

    def test_registry_has_no_stale_entries(self):
        names = {cls.__name__ for cls in _all_module_subclasses()}
        stale = sorted(set(MODULE_REGISTRY) - names)
        assert not stale, f"registry entries without a Module subclass: {stale}"


@pytest.mark.parametrize("name", sorted(MODULE_REGISTRY))
def test_roundtrip_is_bit_identical(name, batch, tmp_path):
    build, run = MODULE_REGISTRY[name]
    module = build(batch).eval()
    reference = run(module, batch)

    path = save_module(module, tmp_path / f"{name}.npz")
    twin = build(batch).eval()
    # The twin starts from the same deterministic init, so perturb it first:
    # a successful load must overwrite every parameter, not rely on equality.
    for parameter in twin.parameters():
        parameter.data = parameter.data + 1.0
    load_module(twin, path)

    restored = run(twin, batch)
    assert reference.shape == restored.shape
    assert (reference == restored).all(), (
        f"{name}: reloaded forward differs "
        f"(max abs err {np.max(np.abs(reference - restored)):.3e})"
    )
