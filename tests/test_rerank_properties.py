"""Property-based tests for the heuristic re-rankers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rerank.dpp import build_dpp_kernel, fast_greedy_map
from repro.rerank.mmr import coverage_cosine, greedy_mmr


@st.composite
def relevance_and_coverage(draw):
    length = draw(st.integers(2, 10))
    topics = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return rng.normal(size=length), rng.random((length, topics))


class TestGreedyMMRProperties:
    @given(relevance_and_coverage())
    @settings(max_examples=40, deadline=None)
    def test_output_is_permutation(self, data):
        relevance, coverage = data
        order = greedy_mmr(relevance, coverage_cosine(coverage), tradeoff=0.5)
        assert sorted(order.tolist()) == list(range(len(relevance)))

    @given(relevance_and_coverage())
    @settings(max_examples=40, deadline=None)
    def test_tradeoff_one_equals_argsort(self, data):
        relevance, coverage = data
        order = greedy_mmr(relevance, coverage_cosine(coverage), tradeoff=1.0)
        # Stable w.r.t. ties is not guaranteed; compare achieved relevance.
        assert np.allclose(
            relevance[order], np.sort(relevance)[::-1]
        )

    @given(relevance_and_coverage())
    @settings(max_examples=30, deadline=None)
    def test_stepwise_local_optimality(self, data):
        """Greedy guarantee: each selected item maximizes the MMR objective
        among the items still available at that step."""
        relevance, coverage = data
        similarity = coverage_cosine(coverage)
        tradeoff = 0.5
        order = greedy_mmr(relevance, similarity, tradeoff)
        span = relevance.max() - relevance.min()
        rel = (
            (relevance - relevance.min()) / span
            if span > 0
            else np.zeros_like(relevance)
        )
        remaining = list(range(len(relevance)))
        for step, pick in enumerate(order):
            if step == 0:
                max_sim = np.zeros(len(remaining))
            else:
                max_sim = similarity[np.ix_(remaining, order[:step])].max(axis=1)
            objective = tradeoff * rel[remaining] - (1 - tradeoff) * max_sim
            best = objective.max()
            pick_value = objective[remaining.index(pick)]
            assert pick_value == pytest.approx(best, abs=1e-9)
            remaining.remove(pick)


class TestDPPProperties:
    @given(relevance_and_coverage())
    @settings(max_examples=40, deadline=None)
    def test_greedy_map_unique_indices(self, data):
        relevance, coverage = data
        kernel = build_dpp_kernel(relevance, coverage)
        order = fast_greedy_map(kernel)
        assert len(set(order.tolist())) == len(order)

    @given(relevance_and_coverage())
    @settings(max_examples=40, deadline=None)
    def test_first_pick_is_max_quality_diagonal(self, data):
        relevance, coverage = data
        kernel = build_dpp_kernel(relevance, coverage)
        order = fast_greedy_map(kernel, max_items=1)
        if len(order):
            assert order[0] == int(np.argmax(np.diag(kernel)))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_kernel_symmetric_psd(self, seed):
        rng = np.random.default_rng(seed)
        kernel = build_dpp_kernel(rng.normal(size=6), rng.random((6, 3)))
        assert np.allclose(kernel, kernel.T)
        assert np.linalg.eigvalsh(kernel).min() >= -1e-8

    def test_greedy_map_max_items_respected(self):
        rng = np.random.default_rng(0)
        kernel = build_dpp_kernel(rng.normal(size=8), rng.random((8, 3)))
        assert len(fast_greedy_map(kernel, max_items=3)) <= 3
