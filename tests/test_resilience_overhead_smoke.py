"""Smoke-test wiring for ``benchmarks/bench_resilience_overhead.py``.

Runs the microbenchmark's machinery and checks structure only — no
wall-clock assertions, so the suite stays deterministic on busy machines.
The real <5% disabled-residue gates run via
``python benchmarks/bench_resilience_overhead.py``.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.resilience import chaos_active

_BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"


@pytest.fixture(scope="module")
def bench():
    sys.path.insert(0, str(_BENCH_DIR))  # for its `from bench_utils import ...`
    try:
        spec = importlib.util.spec_from_file_location(
            "bench_resilience_overhead", _BENCH_DIR / "bench_resilience_overhead.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    finally:
        sys.path.remove(str(_BENCH_DIR))


@pytest.mark.bench
@pytest.mark.slow
def test_measure_reports_structure_and_restores_state(bench):
    result = bench.measure()
    assert set(result) == {
        "train_baseline_ms_per_batch",
        "train_disarmed_ms_per_batch",
        "train_disabled_overhead_fraction",
        "rerank_baseline_ms_per_request",
        "rerank_disarmed_ms_per_request",
        "rerank_disabled_overhead_fraction",
        "rerank_wrapped_ms_per_request",
        "wrapper_overhead_fraction",
    }
    assert result["train_baseline_ms_per_batch"] > 0.0
    assert result["rerank_baseline_ms_per_request"] > 0.0
    assert np.isfinite(result["wrapper_overhead_fraction"])
    # The bench must leave the process disarmed for the rest of the suite.
    assert not chaos_active()


def test_budget_constants_are_five_percent(bench):
    assert bench.MAX_DISABLED_OVERHEAD == pytest.approx(0.05)
    assert bench.MAX_WRAPPER_OVERHEAD == pytest.approx(0.05)
