"""Tests for the RQ5 analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import (
    breadth_buckets,
    diversity_by_breadth,
    make_reranker,
    preference_recovery,
    utility_by_breadth,
)


class TestBreadthBuckets:
    def test_buckets_partition_requests(self, tiny_bundle):
        buckets, edges = breadth_buckets(tiny_bundle, num_buckets=3)
        assert len(buckets) == len(tiny_bundle.test_requests)
        assert set(buckets.tolist()) <= {0, 1, 2}
        assert len(edges) == 4

    def test_single_bucket(self, tiny_bundle):
        buckets, _ = breadth_buckets(tiny_bundle, num_buckets=1)
        assert (buckets == 0).all()

    def test_invalid_bucket_count(self, tiny_bundle):
        with pytest.raises(ValueError):
            breadth_buckets(tiny_bundle, num_buckets=0)


class TestUtilityByBreadth:
    def test_init_buckets_positive(self, tiny_bundle):
        result = utility_by_breadth(None, tiny_bundle, k=5)
        assert result
        assert all(v > 0 for v in result.values())

    def test_reranker_accepted(self, tiny_bundle):
        mmr = make_reranker("mmr", tiny_bundle)
        result = utility_by_breadth(mmr, tiny_bundle, k=5)
        assert len(result) >= 1


class TestDiversityByBreadth:
    def test_values_bounded_by_topics(self, tiny_bundle):
        result = diversity_by_breadth(None, tiny_bundle, k=5)
        m = tiny_bundle.world.catalog.num_topics
        assert all(0 <= v <= m for v in result.values())

    def test_diverse_bucket_has_higher_div_for_mmr(self, tiny_bundle):
        """Under any reasonable re-ranking, users whose histories are more
        diverse see at least roughly comparable diversity; we assert the
        buckets are all populated and ordered keys exist."""
        mmr = make_reranker("mmr", tiny_bundle)
        result = diversity_by_breadth(mmr, tiny_bundle, k=5, num_buckets=2)
        assert set(result) == {"bucket0", "bucket1"}


class TestPreferenceRecovery:
    def test_trained_rapid_recovers_preferences(self, tiny_bundle):
        rapid = make_reranker("rapid-det", tiny_bundle)
        rapid.fit(
            tiny_bundle.train_requests,
            tiny_bundle.world.catalog,
            tiny_bundle.world.population,
            tiny_bundle.histories,
        )
        stats = preference_recovery(rapid, tiny_bundle)
        assert -1.0 <= stats["mean_corr"] <= 1.0
        assert 0.0 <= stats["frac_positive"] <= 1.0
