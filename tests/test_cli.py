"""Tests for the ``python -m repro.eval`` command-line runner."""

from __future__ import annotations

import pytest

from repro.eval.__main__ import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.dataset == "taobao"
        assert args.tradeoff == 0.5
        assert "rapid-pro" in args.models

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "netflix"])

    def test_model_subset(self):
        args = build_parser().parse_args(["--models", "init", "mmr"])
        assert args.models == ["init", "mmr"]


class TestMain:
    def test_tiny_run(self, capsys):
        code = main(
            [
                "--dataset",
                "taobao",
                "--scale",
                "tiny",
                "--models",
                "init",
                "mmr",
                "--list-length",
                "8",
                "--train-requests",
                "40",
                "--test-requests",
                "20",
                "--ranker-interactions",
                "300",
                "--epochs",
                "1",
                "--hidden",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "click@5" in out
        assert "mmr" in out

    def test_appstore_uses_logged_mode(self, capsys):
        code = main(
            [
                "--dataset",
                "appstore",
                "--scale",
                "tiny",
                "--models",
                "init",
                "--list-length",
                "8",
                "--train-requests",
                "30",
                "--test-requests",
                "15",
                "--ranker-interactions",
                "200",
                "--epochs",
                "1",
            ]
        )
        assert code == 0
        assert "rev@5" in capsys.readouterr().out
