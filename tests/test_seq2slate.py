"""Tests for the Seq2Slate pointer-network baseline (extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import RankingRequest, build_batch
from repro.rerank import Seq2SlateReranker


@pytest.fixture(scope="module")
def setup(taobao_world):
    world = taobao_world
    histories = world.sample_histories()
    rng = np.random.default_rng(0)
    rel = world.relevance_matrix()
    requests = []
    for _ in range(50):
        user = int(rng.integers(world.config.num_users))
        items = rng.choice(world.config.num_items, size=8, replace=False)
        clicks = (rng.random(8) < rel[user, items]).astype(float)
        requests.append(
            RankingRequest(
                user, items, rng.normal(size=8), clicks=clicks, fully_observed=True
            )
        )
    batch = build_batch(requests[:8], world.catalog, world.population, histories)
    return world, histories, requests, batch


class TestSeq2Slate:
    def test_training_reduces_loss(self, setup):
        world, histories, requests, _ = setup
        model = Seq2SlateReranker(hidden=8, epochs=3, batch_size=16, lr=0.02, seed=0)
        model.fit(requests, world.catalog, world.population, histories)
        assert len(model.training_losses) == 3
        assert model.training_losses[-1] < model.training_losses[0]

    def test_rerank_valid_permutations(self, setup):
        world, histories, requests, batch = setup
        model = Seq2SlateReranker(hidden=8, epochs=1, batch_size=16, seed=0)
        model.fit(requests, world.catalog, world.population, histories)
        perm = model.rerank(batch)
        for row in perm:
            assert sorted(row.tolist()) == list(range(batch.list_length))

    def test_pointer_prefers_clicked_items_after_training(self, setup):
        """The one-step pointer should score clicked items above unclicked
        ones on the training distribution."""
        world, histories, requests, _ = setup
        model = Seq2SlateReranker(hidden=8, epochs=5, batch_size=16, lr=0.02, seed=0)
        model.fit(requests, world.catalog, world.population, histories)
        batch = build_batch(requests, world.catalog, world.population, histories)
        scores = model.score_batch(batch)
        clicked = scores[batch.clicks > 0.5]
        unclicked = scores[(batch.clicks <= 0.5) & batch.mask]
        assert clicked.mean() > unclicked.mean()

    def test_score_before_fit_raises(self, setup):
        _, _, _, batch = setup
        with pytest.raises(RuntimeError):
            Seq2SlateReranker(hidden=8).score_batch(batch)

    def test_factory_integration(self, tiny_bundle):
        from repro.eval import make_reranker

        model = make_reranker("seq2slate", tiny_bundle)
        assert model.name == "seq2slate"

    def test_handles_all_zero_click_lists(self, setup):
        """Lists without any click contribute no pointer steps but must not
        crash training."""
        world, histories, _, _ = setup
        rng = np.random.default_rng(1)
        requests = [
            RankingRequest(
                0,
                rng.choice(world.config.num_items, size=6, replace=False),
                rng.normal(size=6),
                clicks=np.zeros(6),
                fully_observed=True,
            )
            for _ in range(8)
        ]
        model = Seq2SlateReranker(hidden=8, epochs=1, batch_size=4, seed=0)
        model.fit(requests, world.catalog, world.population, histories)
        assert np.isfinite(model.training_losses).all()
